//! Quickstart: describe a controller as a table, generate flexible and
//! specialized hardware, synthesize both, and verify the specialization.
//!
//! Run with `cargo run --example quickstart`.

use synthir::core::pe::evaluate_pair;
use synthir::core::random::random_fsm;
use synthir::netlist::Library;
use synthir::rtl::elaborate;
use synthir::sim::{check_seq_equiv, EquivOptions};
use synthir::synth::SynthOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A controller specification. Here: a random 6-state FSM with two
    //    input bits and four outputs, standing in for generator output.
    let spec = random_fsm(2, 4, 6, 2024);
    println!(
        "controller: {} states, {} inputs, {} outputs",
        spec.state_count(),
        spec.num_inputs(),
        spec.num_outputs()
    );

    // 2. Lower it twice: as the flexible (runtime-programmable) design and
    //    as the specialized table-bound design.
    let flexible = spec.to_programmable_module();
    let bound = spec.to_table_module(false);

    // 3. Synthesize both with the partial-evaluating flow and compare.
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let cmp = evaluate_pair(&flexible, &bound, &lib, &opts)?;
    println!("flexible   : {}", cmp.flexible.area);
    println!("specialized: {}", cmp.specialized.area);
    println!("savings    : {:.1}%", 100.0 * cmp.savings());

    // 4. Soundness: the specialized netlist must behave exactly like the
    //    table-based RTL it came from.
    let golden = elaborate(&bound)?;
    let verdict = check_seq_equiv(
        &golden.netlist,
        &cmp.specialized.netlist,
        &EquivOptions::new(),
    )?;
    println!("equivalence: {verdict:?}");
    assert!(verdict.is_equivalent());

    // 5. Timing: both meet the paper's 5 ns clock comfortably.
    println!(
        "critical paths: flexible {:.3} ns, specialized {:.3} ns",
        cmp.flexible.timing.critical_delay, cmp.specialized.timing.critical_delay
    );
    Ok(())
}
