//! A microcoded DMA engine controller: microprogram IR → sequencer
//! hardware → partial evaluation.
//!
//! The controller runs a classic descriptor loop: fetch descriptor, copy
//! burst-by-burst (conditional on `more`), raise an interrupt, wait. Its
//! microinstruction format is horizontal, with a one-hot engine-select
//! field — the non-optimally encoded signal the paper's state-folding
//! machinery targets.
//!
//! Run with `cargo run --example microcoded_dma`.

use std::collections::HashMap;
use synthir::core::microcode::{Field, MicroProgram, MicrocodeFormat, NextCtl};
use synthir::core::pe::compile_module;
use synthir::core::sequencer::{generate, SequencerOptions};
use synthir::netlist::Library;
use synthir::rtl::elaborate;
use synthir::sim::SeqSim;
use synthir::synth::SynthOptions;

const COND_START: usize = 0;
const COND_MORE: usize = 1;

fn dma_program() -> MicroProgram {
    let fmt = MicrocodeFormat::new(vec![
        Field::one_hot("engine", 4), // which copy engine fires
        Field::binary("burst", 3),   // burst length - 1
        Field::binary("fetch", 1),   // descriptor fetch strobe
        Field::binary("irq", 1),     // completion interrupt
    ]);
    let mut p = MicroProgram::new("dma", fmt, 2);
    // 0: wait for start.
    p.must_emit(
        &[],
        NextCtl::CondJump {
            cond: COND_START,
            target: 2,
        },
    );
    p.must_emit(&[], NextCtl::Jump(0));
    // 2: fetch the descriptor.
    p.must_emit(&[("fetch", 1)], NextCtl::Seq);
    // 3-4: copy loop: engine 0 reads, engine 1 writes.
    p.must_emit(&[("engine", 0b0001), ("burst", 7)], NextCtl::Seq);
    p.must_emit(
        &[("engine", 0b0010), ("burst", 7)],
        NextCtl::CondJump {
            cond: COND_MORE,
            target: 3,
        },
    );
    // 5: interrupt, back to idle.
    p.must_emit(&[("irq", 1)], NextCtl::Jump(0));
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = dma_program();
    program.validate()?;
    println!(
        "dma microprogram: {} instructions, {} reachable, control word fields: {:?}",
        program.instrs().len(),
        program.reachable_addresses().len(),
        program
            .format()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>()
    );

    // Flexible vs bound sequencer hardware.
    let full = generate(
        &program,
        SequencerOptions {
            flexible: true,
            register_outputs: true,
            ..Default::default()
        },
    )?;
    let bound = generate(
        &program,
        SequencerOptions {
            register_outputs: true,
            annotate_fsm: true,
            annotate_fields: true,
            ..Default::default()
        },
    )?;
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let r_full = compile_module(&full, &lib, &opts)?;
    let r_bound = compile_module(&bound, &lib, &opts)?;
    println!("flexible sequencer : {}", r_full.area);
    println!("specialized        : {}", r_bound.area);
    println!(
        "savings            : {:.1}%",
        100.0 * (1.0 - r_bound.area.total() / r_full.area.total())
    );

    // Drive the specialized hardware through one descriptor with two
    // bursts and watch the engines fire.
    let elab = elaborate(&bound)?;
    let mut sim = SeqSim::new(&elab.netlist)?;
    let cond = |v: u128| {
        let mut m = HashMap::new();
        m.insert("cond".to_string(), v);
        m
    };
    let start = cond(1 << COND_START);
    let more = cond(1 << COND_MORE);
    let idle = cond(0);
    sim.step(&start);
    let mut engines = Vec::new();
    for inputs in [&idle, &idle, &more, &idle, &idle, &idle, &idle] {
        let out = sim.step(inputs);
        engines.push(out["engine"]);
    }
    println!("engine trace       : {engines:?}");
    assert!(engines.contains(&0b0001) && engines.contains(&0b0010));
    Ok(())
}
