//! The paper's headline experiment end-to-end: the Smart Memories protocol
//! controller in both memory modes, under all three synthesis flavours.
//!
//! Run with `cargo run --release --example pctrl_modes`.

use synthir::netlist::Library;
use synthir::pctrl::{synthesize, Flavor, MemoryConfig};
use synthir::synth::SynthOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    println!(
        "{:<14} {:<7} {:>12} {:>12} {:>12}",
        "config", "flavor", "comb µm²", "seq µm²", "total µm²"
    );
    for cfg in [MemoryConfig::cached(), MemoryConfig::uncached()] {
        let mut auto_total = 0.0;
        for flavor in Flavor::all() {
            let r = synthesize(&cfg, flavor, &lib, &opts)?;
            println!(
                "{:<14} {:<7} {:>12.1} {:>12.1} {:>12.1}",
                cfg.tag(),
                flavor.to_string(),
                r.area.combinational,
                r.area.sequential,
                r.area.total()
            );
            if flavor == Flavor::Auto {
                auto_total = r.area.total();
            }
            if flavor == Flavor::Manual {
                println!(
                    "{:<14} {:<7} {:>38}",
                    "",
                    "",
                    format!(
                        "manual saves {:.1}% over auto",
                        100.0 * (1.0 - r.area.total() / auto_total)
                    )
                );
            }
        }
    }
    println!();
    println!("expected shape (paper Fig. 9): Auto halves Full in both components;");
    println!("Manual ≈ Auto when cached; Manual saves noticeably more when uncached.");
    Ok(())
}
