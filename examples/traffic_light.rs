//! A hand-written FSM in all three coding styles of the paper.
//!
//! A traffic-light controller with a pedestrian request: four states, two
//! inputs (timer-expired, walk-request), five outputs (three lamps + walk
//! lamps). The example lowers it to the table-based, annotated-table and
//! direct styles, synthesizes each, and prints the areas — Fig. 6 for one
//! concrete, human-auditable controller.
//!
//! Run with `cargo run --example traffic_light`.

use synthir::core::fsm::FsmSpec;
use synthir::core::pe::compile_module;
use synthir::logic::Cube;
use synthir::netlist::Library;
use synthir::synth::SynthOptions;

fn build_controller() -> FsmSpec {
    // Inputs: bit 0 = timer expired, bit 1 = pedestrian request.
    // Outputs: bit 0 = green, 1 = yellow, 2 = red, 3 = walk, 4 = flash.
    let mut f = FsmSpec::new("traffic", 2, 5);
    let green = f.add_state("green");
    let yellow = f.add_state("yellow");
    let red = f.add_state("red");
    let walk = f.add_state("walk");
    f.set_reset(green);

    let expired = Cube::new(2, 0b01, 0b01);
    let expired_with_ped = Cube::new(2, 0b11, 0b11);

    f.set_default(green, green, 0b00001);
    f.add_rule(green, expired, yellow, 0b00001);

    f.set_default(yellow, yellow, 0b00010);
    f.add_rule(yellow, expired, red, 0b00010);

    f.set_default(red, red, 0b00100);
    // Pedestrian phase only if requested when the timer expires.
    f.add_rule(red, expired_with_ped, walk, 0b00100);
    f.add_rule(red, expired, green, 0b00100);

    f.set_default(walk, walk, 0b01100);
    f.add_rule(walk, expired, green, 0b10100);
    f
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = build_controller();
    println!(
        "traffic-light controller: {} states ({} reachable)",
        spec.state_count(),
        spec.reachable_states().len()
    );

    // Walk the specification in software.
    let mut state = spec.reset_state();
    print!("walk-through:");
    for input in [0b01, 0b01, 0b11, 0b01, 0b01] {
        let (next, out) = spec.eval(state, input);
        print!(" {}→{:05b}", spec.state_name(state), out);
        state = next;
    }
    println!();

    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let table = compile_module(&spec.to_table_module(false), &lib, &opts)?;
    let annotated = compile_module(&spec.to_table_module(true), &lib, &opts)?;
    let case = compile_module(&spec.to_case_module(), &lib, &opts)?;
    println!("table style     : {}", table.area);
    println!("annotated table : {}", annotated.area);
    println!("direct (case)   : {}", case.area);
    println!(
        "annotated/direct ratio: {:.3} (the paper's Fig. 6 claim: ~1.0)",
        annotated.area.total() / case.area.total()
    );
    Ok(())
}
