//! # synthir
//!
//! Microcode and FSM-table **intermediate representations for controllers
//! in chip generators**, together with the partial-evaluating logic
//! synthesis engine needed to specialize them — a from-scratch Rust
//! reproduction of *Kelley, Wachs, Danowitz, Stevenson, Richardson,
//! Horowitz: "Intermediate Representations for Controllers in Chip
//! Generators", DATE 2011*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`logic`] — boolean kernel (truth tables, covers, espresso, BDDs,
//!   value sets);
//! * [`netlist`] — gate-level IR and the synthetic `vt90` cell library;
//! * [`rtl`] — RTL IR, elaboration, and the paper's coding styles;
//! * [`synth`] — the synthesis flow: constant folding, state propagation
//!   and folding, resynthesis, FSM re-encoding, retiming, techmap, STA;
//! * [`sim`] — simulation and equivalence checking;
//! * [`core`] — the paper's contribution: controller IRs (FSM specs,
//!   microprograms, sequencers), annotation derivation, the PE driver;
//! * [`pctrl`] — the Smart Memories protocol-controller model.
//!
//! ## Quickstart
//!
//! ```
//! use synthir::core::random::random_fsm;
//! use synthir::core::pe::evaluate_pair;
//! use synthir::netlist::Library;
//! use synthir::synth::SynthOptions;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A random 5-state controller, as a flexible (programmable) design and
//! // as a table-specialized instance.
//! let spec = random_fsm(2, 4, 5, 42);
//! let cmp = evaluate_pair(
//!     &spec.to_programmable_module(),
//!     &spec.to_table_module(false),
//!     &Library::vt90(),
//!     &SynthOptions::default(),
//! )?;
//! assert!(cmp.savings() > 0.5); // PE removes most of the flexible area
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use smpctrl as pctrl;
pub use synthir_core as core;
pub use synthir_logic as logic;
pub use synthir_netlist as netlist;
pub use synthir_rtl as rtl;
pub use synthir_sim as sim;
pub use synthir_synth as synth;
