//! Fig. 9: the Smart Memories PCtrl under Full / Auto / Manual flows.

use smpctrl::{synthesize, Flavor, MemoryConfig};
use synthir_netlist::power::{estimate_power, PowerReport};
use synthir_netlist::{AreaReport, Library};
use synthir_synth::SynthOptions;

/// Default switching activity used for the power estimate.
pub const ACTIVITY: f64 = 0.15;

/// One bar group of Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Configuration tag (cached / uncached).
    pub config: String,
    /// Design flavour.
    pub flavor: Flavor,
    /// Synthesized area.
    pub area: AreaReport,
    /// Estimated power at [`ACTIVITY`] switching activity.
    pub power: PowerReport,
}

/// Runs the full Fig. 9 experiment: both memory configurations, all three
/// flavours.
pub fn run() -> Vec<Fig9Row> {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let mut rows = Vec::new();
    for cfg in [MemoryConfig::cached(), MemoryConfig::uncached()] {
        for flavor in Flavor::all() {
            let r = synthesize(&cfg, flavor, &lib, &opts).expect("pctrl synthesizes");
            let power = estimate_power(&r.netlist, &lib, ACTIVITY);
            rows.push(Fig9Row {
                config: cfg.tag(),
                flavor,
                area: r.area,
                power,
            });
        }
    }
    rows
}

/// Formats the rows as the paper's bar-chart data (comb and seq columns).
pub fn to_table(rows: &[Fig9Row]) -> String {
    let mut s = String::from("config,flavor,comb_um2,seq_um2,total_um2,power_uw\n");
    for r in rows {
        s.push_str(&format!(
            "{},{},{:.1},{:.1},{:.1},{:.1}\n",
            r.config,
            r.flavor,
            r.area.combinational,
            r.area.sequential,
            r.area.total(),
            r.power.total()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows() {
        // Smoke-level: the full experiment is covered by smpctrl's tests;
        // here we only exercise the harness glue on one flavour.
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let r = synthesize(&MemoryConfig::uncached(), Flavor::Auto, &lib, &opts).unwrap();
        let power = estimate_power(&r.netlist, &lib, ACTIVITY);
        let rows = vec![Fig9Row {
            config: "uncached".into(),
            flavor: Flavor::Auto,
            area: r.area,
            power,
        }];
        let t = to_table(&rows);
        assert!(t.contains("uncached,Auto"));
    }
}
