//! Fig. 8: state propagation and folding across flop boundaries.
//!
//! The design of the paper's Fig. 7: a one-hot decoder feeding (optionally
//! through a flop bank) a mask-and-mux consumer that is entirely redundant
//! when the bus is truly one-hot. The experiment sweeps the bus width
//! n ∈ {2, 4, 8, 16, 32, 64, 128}, the flop flavour, and three tool
//! configurations (regular, retimed, state-annotated), comparing each
//! generic design against its hand-specialized direct version.

use crate::AreaPoint;
use synthir_logic::ValueSet;
use synthir_netlist::Library;
use synthir_rtl::{elaborate, Expr, Module, RegReset, Register, ResetKind};
use synthir_synth::{compile, SynthOptions};

/// Flop flavour between the decoder and the consumer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlopVariant {
    /// Purely combinational (the control case that always optimizes).
    NoFlop,
    /// Flop without reset.
    Plain,
    /// Flop with synchronous reset.
    SyncReset,
    /// Flop with asynchronous reset.
    AsyncReset,
}

impl FlopVariant {
    /// All variants, in the paper's legend order.
    pub fn all() -> [FlopVariant; 4] {
        [
            FlopVariant::NoFlop,
            FlopVariant::Plain,
            FlopVariant::SyncReset,
            FlopVariant::AsyncReset,
        ]
    }
}

/// Tool configuration series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig8Series {
    /// Default compile.
    Regular,
    /// Compile with retiming enabled.
    Retimed,
    /// Generic design carries a generator-derived one-hot annotation on the
    /// flopped bus.
    StateAnnotated,
}

/// Builds the Fig. 7 design.
///
/// Interface: `sel` (log2 n bits), `a`, `b` (1 bit each); outputs `r`
/// (the one-hot bus, the design's payload) and `z` (the consumer output
/// whose mux is redundant under the one-hot invariant).
pub fn fig8_module(n: usize, flop: FlopVariant, generic: bool) -> Module {
    assert!(n.is_power_of_two() && (2..=128).contains(&n));
    let sel_bits = n.trailing_zeros() as usize;
    let mut m = Module::new(format!(
        "fig8_n{n}_{flop:?}_{}",
        if generic { "gen" } else { "dir" }
    ));
    m.add_input("sel", sel_bits);
    m.add_input("a", 1);
    m.add_input("b", 1);
    // One-hot decoder.
    let dec_bits: Vec<Expr> = (0..n)
        .map(|i| Expr::reference("sel").eq_const(sel_bits, i as u128))
        .collect();
    m.add_wire("y", n, Expr::concat(dec_bits));
    let bus = match flop {
        FlopVariant::NoFlop => "y".to_string(),
        _ => {
            let kind = match flop {
                FlopVariant::Plain => ResetKind::None,
                FlopVariant::SyncReset => ResetKind::Sync,
                FlopVariant::AsyncReset => ResetKind::Async,
                FlopVariant::NoFlop => unreachable!(),
            };
            m.add_register(Register {
                name: "r".into(),
                width: n,
                next: Expr::reference("y"),
                reset: RegReset { kind, value: 0 },
            });
            "r".to_string()
        }
    };
    m.add_output("bus", n, Expr::reference(&bus));
    if generic {
        // any = |(bus & (bus << 1)) — always 0 on a one-hot bus.
        let shifted = Expr::reference(&bus).shl_const(n, 1);
        let masked = Expr::reference(&bus).and(shifted);
        m.add_wire("any_adjacent", 1, masked.reduce_or());
        m.add_output(
            "z",
            1,
            Expr::reference("any_adjacent").mux(Expr::reference("a"), Expr::reference("b")),
        );
    } else {
        // The direct designer knows the invariant: the mux is gone.
        m.add_output("z", 1, Expr::reference("a"));
    }
    m
}

/// Runs one (n, flop, series) sample: x = direct area (default compile),
/// y = generic area under the series' tool configuration.
pub fn sample(n: usize, flop: FlopVariant, series: Fig8Series) -> AreaPoint {
    let lib = Library::vt90();
    let direct = fig8_module(n, flop, false);
    let base_opts = SynthOptions::default();
    let r_direct =
        compile(&elaborate(&direct).expect("elaborates"), &lib, &base_opts).expect("compiles");

    let mut generic = fig8_module(n, flop, true);
    let opts = match series {
        Fig8Series::Regular => base_opts.clone(),
        Fig8Series::Retimed => SynthOptions::default().with_retime(),
        Fig8Series::StateAnnotated => base_opts.clone(),
    };
    if series == Fig8Series::StateAnnotated && flop != FlopVariant::NoFlop {
        generic.annotate("r", ValueSet::one_hot(n as u32));
    }
    let r_generic =
        compile(&elaborate(&generic).expect("elaborates"), &lib, &opts).expect("compiles");
    AreaPoint {
        label: format!("n{n}_{flop:?}_{series:?}"),
        x: r_direct.area.total(),
        y: r_generic.area.total(),
    }
}

/// The paper's width sweep.
pub fn paper_widths() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64, 128]
}

/// Runs a full series over the width sweep and flop variants.
pub fn run(widths: &[usize], series: Fig8Series) -> Vec<AreaPoint> {
    let mut out = Vec::new();
    for &n in widths {
        for flop in FlopVariant::all() {
            out.push(sample(n, flop, series));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flop_always_ideal() {
        for series in [Fig8Series::Regular, Fig8Series::StateAnnotated] {
            let p = sample(8, FlopVariant::NoFlop, series);
            assert!(
                (p.ratio() - 1.0).abs() < 0.05,
                "{}: ratio {:.3}",
                p.label,
                p.ratio()
            );
        }
    }

    #[test]
    fn flops_block_propagation_until_annotated() {
        let regular = sample(8, FlopVariant::SyncReset, Fig8Series::Regular);
        assert!(
            regular.ratio() > 1.1,
            "regular ratio {:.3}",
            regular.ratio()
        );
        let anno = sample(8, FlopVariant::SyncReset, Fig8Series::StateAnnotated);
        assert!(
            (anno.ratio() - 1.0).abs() < 0.05,
            "annotated ratio {:.3}",
            anno.ratio()
        );
    }

    #[test]
    fn annotation_stops_helping_past_32() {
        let anno64 = sample(64, FlopVariant::SyncReset, Fig8Series::StateAnnotated);
        assert!(anno64.ratio() > 1.05, "n=64 ratio {:.3}", anno64.ratio());
    }

    #[test]
    fn retiming_depends_on_flop_type() {
        let plain = sample(8, FlopVariant::Plain, Fig8Series::Retimed);
        let asyncr = sample(8, FlopVariant::AsyncReset, Fig8Series::Retimed);
        // Reset-less flops retime (and may beat the direct baseline, which
        // keeps its n flops); async-reset flops do not.
        assert!(
            plain.ratio() < 1.0,
            "plain retimed ratio {:.3}",
            plain.ratio()
        );
        assert!(
            asyncr.ratio() > 1.1,
            "async retimed ratio {:.3}",
            asyncr.ratio()
        );
    }
}
