//! # synthir-bench
//!
//! The experiment harness: one module per figure of the paper's evaluation,
//! each able to regenerate the figure's data as CSV rows plus a textual
//! summary of the expected *shape* (who wins, by roughly what factor).
//!
//! | module | paper figure | experiment |
//! |--------|--------------|------------|
//! | [`fig5`] | Fig. 5 | table-based vs sum-of-products combinational logic |
//! | [`fig6`] | Fig. 6 | table-based vs case-style FSMs, with/without annotation |
//! | [`fig8`] | Fig. 8 | state propagation across flop boundaries |
//! | [`fig9`] | Fig. 9 | Smart Memories PCtrl: Full / Auto / Manual |
//!
//! Binaries `fig5`..`fig9` print the rows; `all_figures` runs everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;

/// A generic experiment data point: a labelled (x, y) area pair in µm².
#[derive(Clone, Debug, PartialEq)]
pub struct AreaPoint {
    /// Point label (parameters).
    pub label: String,
    /// Reference (direct / baseline) area.
    pub x: f64,
    /// Measured (flexible / optimized) area.
    pub y: f64,
}

impl AreaPoint {
    /// `y / x`, the area ratio the paper's scatter plots visualize.
    pub fn ratio(&self) -> f64 {
        if self.x == 0.0 {
            f64::NAN
        } else {
            self.y / self.x
        }
    }
}

/// Formats points as a CSV table with the given column names.
pub fn to_csv(points: &[AreaPoint], xname: &str, yname: &str) -> String {
    let mut s = format!("label,{xname},{yname},ratio\n");
    for p in points {
        s.push_str(&format!(
            "{},{:.1},{:.1},{:.3}\n",
            p.label,
            p.x,
            p.y,
            p.ratio()
        ));
    }
    s
}

/// Geometric mean of the y/x ratios (summary statistic for scatter plots).
pub fn geomean_ratio(points: &[AreaPoint]) -> f64 {
    let logs: Vec<f64> = points
        .iter()
        .map(AreaPoint::ratio)
        .filter(|r| r.is_finite() && *r > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_ratio() {
        let pts = vec![
            AreaPoint {
                label: "a".into(),
                x: 10.0,
                y: 20.0,
            },
            AreaPoint {
                label: "b".into(),
                x: 10.0,
                y: 5.0,
            },
        ];
        let csv = to_csv(&pts, "direct", "table");
        assert!(csv.starts_with("label,direct,table,ratio"));
        assert!(csv.contains("a,10.0,20.0,2.000"));
        let g = geomean_ratio(&pts);
        assert!((g - 1.0).abs() < 1e-9);
    }
}
