//! Runs every figure's quick variant and prints a one-line verdict per
//! figure — the smoke-level "reproduce the whole paper" entry point.
use synthir_bench::*;

fn main() {
    let f5 = fig5::run(&fig5::quick_grid(), 1);
    println!(
        "fig5: {} points, geomean table/sop = {:.3}",
        f5.len(),
        geomean_ratio(&f5)
    );

    let f6r = fig6::run(&fig6::quick_grid(), 1, fig6::Fig6Series::Regular);
    let f6a = fig6::run(&fig6::quick_grid(), 1, fig6::Fig6Series::StateAnnotated);
    println!(
        "fig6: regular geomean = {:.3}, annotated geomean = {:.3}",
        geomean_ratio(&f6r),
        geomean_ratio(&f6a)
    );

    let widths = vec![4, 16, 64];
    for series in [
        fig8::Fig8Series::Regular,
        fig8::Fig8Series::Retimed,
        fig8::Fig8Series::StateAnnotated,
    ] {
        let pts = fig8::run(&widths, series);
        let worst = pts.iter().map(|p| p.ratio()).fold(0.0f64, f64::max);
        println!(
            "fig8 {series:?}: geomean = {:.3}, worst = {:.3}",
            geomean_ratio(&pts),
            worst
        );
    }

    for row in fig9::run() {
        println!(
            "fig9 {:>13} {:>6}: comb {:9.1} seq {:9.1}",
            row.config,
            row.flavor.to_string(),
            row.area.combinational,
            row.area.sequential
        );
    }
}
