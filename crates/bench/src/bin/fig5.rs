//! Regenerates Fig. 5: table-based vs sum-of-products combinational logic.
use synthir_bench::{fig5, geomean_ratio, to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let grid = if quick {
        fig5::quick_grid()
    } else {
        fig5::paper_grid()
    };
    let samples = if quick { 1 } else { 2 };
    let pts = fig5::run(&grid, samples);
    println!("{}", to_csv(&pts, "sop_area_um2", "table_area_um2"));
    println!("# points: {}", pts.len());
    println!("# geomean table/sop ratio: {:.3}", geomean_ratio(&pts));
    println!("# expected shape: points scatter on the equal-area line (ratio ~1),");
    println!("#   occasionally below 1 for large functions (table start wins).");
}
