//! Regenerates Fig. 8: state propagation across flop boundaries.
use synthir_bench::{fig8, to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let widths = if quick {
        vec![4, 16, 64]
    } else {
        fig8::paper_widths()
    };
    for series in [
        fig8::Fig8Series::Regular,
        fig8::Fig8Series::Retimed,
        fig8::Fig8Series::StateAnnotated,
    ] {
        let pts = fig8::run(&widths, series);
        println!("## series {series:?}");
        println!("{}", to_csv(&pts, "direct_area_um2", "generic_area_um2"));
    }
    println!("# expected shape: NoFlop always ratio ~1; flopped Regular > 1;");
    println!("#   Retimed: reset-less flops reach/beat the ideal, async never;");
    println!("#   StateAnnotated: ratio ~1 for n <= 32, > 1 beyond.");
}
