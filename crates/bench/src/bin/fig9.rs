//! Regenerates Fig. 9: PCtrl Full / Auto / Manual areas.
use synthir_bench::fig9;

fn main() {
    let rows = fig9::run();
    println!("{}", fig9::to_table(&rows));
    println!("# expected shape: Auto ~ half of Full in both comb and seq;");
    println!("#   Manual ~ Auto for cached; Manual saves an extra >10% uncached.");
}
