//! Regenerates Fig. 6: table-based vs case-style FSMs.
use synthir_bench::{fig6, geomean_ratio, to_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let grid = if quick {
        fig6::quick_grid()
    } else {
        fig6::paper_grid()
    };
    let samples = 1; // m=8 cells elaborate 8k-entry tables; one seed keeps the
                     // full grid to minutes. Raise for tighter statistics.
    for series in [fig6::Fig6Series::Regular, fig6::Fig6Series::StateAnnotated] {
        let pts = fig6::run(&grid, samples, series);
        println!("## series {series:?}");
        println!("{}", to_csv(&pts, "case_area_um2", "table_area_um2"));
        println!("# geomean table/case ratio: {:.3}\n", geomean_ratio(&pts));
    }
    println!("# expected shape: Regular >= 1 (worst for s in {{3,17}});");
    println!("#   StateAnnotated ~1 (annotation recovers the direct quality).");
}
