//! Fig. 5: table-based combinational logic vs direct sum-of-products.
//!
//! "Fig. 5 compares the area synthesis results for many different
//! combinational logic functions (tables of depth d ∈ {2, 8, 16, 32, 64,
//! 256, 1024} and width w ∈ {2, 4, 16, 32, 64})." Both styles describe the
//! same random function; in the ideal case all points lie on the equal-area
//! line.

use crate::AreaPoint;
use synthir_core::random::random_table;
use synthir_logic::{Cover, TruthTable};
use synthir_netlist::Library;
use synthir_rtl::{elaborate, styles};
use synthir_synth::{compile, SynthOptions};

/// The paper's full parameter grid.
pub fn paper_grid() -> Vec<(usize, usize)> {
    let depths = [2usize, 8, 16, 32, 64, 256, 1024];
    let widths = [2usize, 4, 16, 32, 64];
    let mut grid = Vec::new();
    for &d in &depths {
        for &w in &widths {
            grid.push((d, w));
        }
    }
    grid
}

/// A reduced grid for quick runs and criterion benches.
pub fn quick_grid() -> Vec<(usize, usize)> {
    vec![(8, 2), (16, 4), (64, 4), (64, 16), (256, 8)]
}

/// Runs one (depth, width, seed) sample: returns
/// `(direct SOP area, table-based area)`.
pub fn sample(depth: usize, width: usize, seed: u64) -> AreaPoint {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let words = random_table(depth, width, seed);
    let abits = depth.trailing_zeros() as usize;

    // Direct style: minimized sum-of-products assignments per output bit,
    // minimized as one batch (concurrently under the `parallel` feature).
    let tts: Vec<TruthTable> = (0..width)
        .map(|b| TruthTable::from_fn(abits, |m| words[m] >> b & 1 != 0))
        .collect();
    let covers: Vec<Cover> = synthir_logic::espresso::minimize_tt_batch(
        &tts,
        None,
        &synthir_logic::espresso::EspressoOptions::default(),
    );
    let sop = styles::sop_module(format!("sop_d{depth}_w{width}_s{seed}"), abits, &covers);
    let table = styles::table_module(
        format!("tab_d{depth}_w{width}_s{seed}"),
        abits,
        width,
        &words,
    );
    let r_sop = compile(&elaborate(&sop).expect("elaborates"), &lib, &opts).expect("compiles");
    let r_tab = compile(&elaborate(&table).expect("elaborates"), &lib, &opts).expect("compiles");
    AreaPoint {
        label: format!("d{depth}_w{width}_s{seed}"),
        x: r_sop.area.total(),
        y: r_tab.area.total(),
    }
}

/// Runs the experiment over a grid with `samples` seeds per cell. Design
/// points are independent, so they are synthesized concurrently (in grid
/// order) when the `parallel` feature is enabled.
pub fn run(grid: &[(usize, usize)], samples: u64) -> Vec<AreaPoint> {
    let mut jobs = Vec::new();
    for &(d, w) in grid {
        for seed in 0..samples {
            jobs.push((d, w, seed));
        }
    }
    synthir_logic::par::par_map(&jobs, |&(d, w, seed)| sample(d, w, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_tracks_sop_area() {
        let pts = run(&[(16, 4), (64, 4)], 2);
        for p in &pts {
            assert!(p.x > 0.0 && p.y > 0.0);
            // Partial evaluation keeps the styles within 50% of each other.
            assert!(
                p.ratio() < 1.5 && p.ratio() > 0.6,
                "{}: ratio {:.2}",
                p.label,
                p.ratio()
            );
        }
        let g = crate::geomean_ratio(&pts);
        assert!(g > 0.8 && g < 1.25, "geomean {g:.3}");
    }
}
