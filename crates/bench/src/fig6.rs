//! Fig. 6: table-based FSMs vs the tool-recommended direct style.
//!
//! "Fig. 6 compares the synthesis results for many different FSMs (inputs
//! m ∈ {2, 8}, outputs n ∈ {2, 8, 16}, and states s ∈ {2, 3, 8, 16, 17})."
//! The table style hides the state register from the tool; the annotated
//! variant (`set_fsm_state_vector`) recovers the direct style's quality.

use crate::AreaPoint;
use synthir_core::random::random_fsm;
use synthir_netlist::Library;
use synthir_rtl::elaborate;
use synthir_synth::{compile, SynthOptions};

/// One Fig. 6 series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig6Series {
    /// Plain table-based FSM: the tool cannot find the state register.
    Regular,
    /// Table-based with generator-derived FSM annotations.
    StateAnnotated,
}

/// The paper's full parameter grid `(m, n, s)`.
pub fn paper_grid() -> Vec<(usize, usize, usize)> {
    let ms = [2usize, 8];
    let ns = [2usize, 8, 16];
    let ss = [2usize, 3, 8, 16, 17];
    let mut grid = Vec::new();
    for &m in &ms {
        for &n in &ns {
            for &s in &ss {
                grid.push((m, n, s));
            }
        }
    }
    grid
}

/// A reduced grid for quick runs.
pub fn quick_grid() -> Vec<(usize, usize, usize)> {
    vec![(2, 2, 3), (2, 8, 8), (2, 8, 17)]
}

/// Runs one (m, n, s, seed) sample for a series: x = case-style area,
/// y = table-style area (plain or annotated).
pub fn sample(m: usize, n: usize, s: usize, seed: u64, series: Fig6Series) -> AreaPoint {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let spec = random_fsm(m, n, s, seed);
    let case = spec.to_case_module();
    let table = spec.to_table_module(series == Fig6Series::StateAnnotated);
    let r_case = compile(&elaborate(&case).expect("elaborates"), &lib, &opts).expect("compiles");
    let r_tab = compile(&elaborate(&table).expect("elaborates"), &lib, &opts).expect("compiles");
    AreaPoint {
        label: format!("m{m}_n{n}_s{s}_seed{seed}_{series:?}"),
        x: r_case.area.total(),
        y: r_tab.area.total(),
    }
}

/// Runs a series over a grid with `samples` seeds per cell. Design points
/// are independent, so they are synthesized concurrently (in grid order)
/// when the `parallel` feature is enabled.
pub fn run(grid: &[(usize, usize, usize)], samples: u64, series: Fig6Series) -> Vec<AreaPoint> {
    let mut jobs = Vec::new();
    for &(m, n, s) in grid {
        for seed in 0..samples {
            jobs.push((m, n, s, seed));
        }
    }
    synthir_logic::par::par_map(&jobs, |&(m, n, s, seed)| sample(m, n, s, seed, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_recovers_direct_quality() {
        // s = 3: a non-power-of-two state count, the paper's worst case.
        // The plain-table penalty is a tendency across designs (the paper's
        // scatter), so average a few seeds; the annotated ratio is pinned.
        let mut plain_sum = 0.0;
        let mut anno_sum = 0.0;
        let seeds = 4;
        for seed in 0..seeds {
            let plain = sample(2, 4, 3, seed, Fig6Series::Regular);
            let anno = sample(2, 4, 3, seed, Fig6Series::StateAnnotated);
            assert!(
                anno.ratio() < 1.05 && anno.ratio() > 0.95,
                "seed {seed}: annotated ratio {:.3}",
                anno.ratio()
            );
            plain_sum += plain.ratio();
            anno_sum += anno.ratio();
        }
        assert!(
            plain_sum > anno_sum,
            "mean plain {:.3} must exceed mean annotated {:.3}",
            plain_sum / seeds as f64,
            anno_sum / seeds as f64
        );
    }
}
