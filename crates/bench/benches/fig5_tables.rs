//! Criterion bench for the Fig. 5 experiment (one representative cell).
use criterion::{criterion_group, criterion_main, Criterion};
use synthir_bench::fig5;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("table_vs_sop_d64_w4", |b| b.iter(|| fig5::sample(64, 4, 1)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
