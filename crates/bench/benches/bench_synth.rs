//! End-to-end `compile` benchmark: the AIG optimization pipeline vs the
//! original (pre-AIG) pass order, and the rule mapper vs the cut-based
//! mapper, on the shipped `benchmarks/` controllers.
//!
//! Each KISS2 controller is lowered in the table coding style (the paper's
//! recommended generator output) and compiled three ways:
//!
//! * `aig`  — `SynthOptions::default()`: AIG front half + rule mapper;
//! * `seed` — `.without_aig()`: the seed pass order (`const_fold`/`strash`
//!   fixpoint loops), the PR 4 A/B baseline;
//! * `cuts` — `.with_cut_mapper()`: AIG front half + cut-based technology
//!   mapping (`--mapper cuts`).
//!
//! Median wall-clock, final gate count, mapped area, and critical-path
//! delay for every variant are written to `BENCH_synth.json` at the
//! workspace root, so both the compile-time trajectory *and* the mapper
//! area/delay tradeoff are tracked across PRs alongside
//! `BENCH_espresso.json`.
//!
//! Run with `cargo bench --bench bench_synth` (add `-- --quick` for the CI
//! smoke pass; the JSON is written either way).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use synthir_core::format_conv::from_kiss2;
use synthir_netlist::Library;
use synthir_rtl::elaborate;
use synthir_rtl::elaborate::Elaborated;
use synthir_synth::{compile, SynthOptions};

fn controllers() -> Vec<(String, Elaborated)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
    let mut out = Vec::new();
    for name in ["traffic_light", "seq_detect", "elevator", "dma_ctrl"] {
        let path = format!("{dir}/{name}.kiss2");
        let text = std::fs::read_to_string(&path).expect("shipped benchmark exists");
        let spec = from_kiss2(name, &text).expect("shipped benchmark parses");
        let module = spec.to_table_module(true);
        let elab = elaborate(&module).expect("benchmark elaborates");
        out.push((name.to_string(), elab));
    }
    // The flexible (runtime-programmable) lowerings are the heavyweight
    // case: config flop arrays, write decoders, and read mux trees make
    // the elaborated netlist an order of magnitude larger — which is
    // where the front-half cleanup cost actually lives.
    for name in ["elevator", "dma_ctrl"] {
        let path = format!("{dir}/{name}.kiss2");
        let text = std::fs::read_to_string(&path).expect("shipped benchmark exists");
        let spec = from_kiss2(name, &text).expect("shipped benchmark parses");
        let module = spec.to_programmable_module();
        let elab = elaborate(&module).expect("benchmark elaborates");
        out.push((format!("{name}_prog"), elab));
    }
    out
}

fn median_time(rounds: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// One compile variant's measured row.
struct Row {
    ms: f64,
    gates: usize,
    area: f64,
    critical_ns: f64,
}

fn measure(elab: &Elaborated, lib: &Library, opts: &SynthOptions, rounds: usize) -> Row {
    let r = compile(elab, lib, opts).unwrap();
    let t = median_time(rounds, || {
        std::hint::black_box(compile(elab, lib, opts).unwrap());
    });
    Row {
        ms: t.as_secs_f64() * 1e3,
        gates: r.netlist.num_gates(),
        area: r.area.total(),
        critical_ns: r.timing.critical_delay,
    }
}

fn bench(c: &mut Criterion) {
    let quick =
        std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK_BENCH").is_some();
    let lib = Library::vt90();
    let variants: [(&str, SynthOptions); 3] = [
        ("aig", SynthOptions::default()),
        ("seed", SynthOptions::default().without_aig()),
        ("cuts", SynthOptions::default().with_cut_mapper()),
    ];
    let mut g = c.benchmark_group("bench_synth");
    g.sample_size(if quick { 3 } else { 10 });

    let mut rows: Vec<(String, Vec<(&str, Row)>)> = Vec::new();
    for (name, elab) in controllers() {
        for (vname, opts) in &variants {
            g.bench_function(format!("{name}/{vname}"), |b| {
                b.iter(|| compile(&elab, &lib, opts).unwrap())
            });
        }
        let rounds = if quick { 3 } else { 9 };
        let measured: Vec<(&str, Row)> = variants
            .iter()
            .map(|(vname, opts)| (*vname, measure(&elab, &lib, opts, rounds)))
            .collect();
        let aig = &measured[0].1;
        let seed = &measured[1].1;
        let cuts = &measured[2].1;
        println!(
            "{name}: aig {:.3} ms ({} gates, {:.1} µm², {:.3} ns) | seed {:.3} ms ({} gates, \
             {:.1} µm²) | cuts {:.3} ms ({} gates, {:.1} µm², {:.3} ns) | aig speedup {:.2}x, \
             cut-map area {:+.1}%",
            aig.ms,
            aig.gates,
            aig.area,
            aig.critical_ns,
            seed.ms,
            seed.gates,
            seed.area,
            cuts.ms,
            cuts.gates,
            cuts.area,
            cuts.critical_ns,
            seed.ms / aig.ms,
            (cuts.area - aig.area) / aig.area * 100.0,
        );
        rows.push((name, measured));
    }
    g.finish();

    let mut json = String::from(
        "{\n  \"benchmark\": \"synth::flow::compile: AIG pipeline vs original (pre-AIG) pass \
         order, rule mapper (aig) vs cut-based mapper (cuts)\",\n  \"unit\": \"ms (median \
         wall-clock), um2 (mapped area), ns (critical path)\",\n  \"workloads\": {\n",
    );
    for (i, (name, measured)) in rows.iter().enumerate() {
        let aig = &measured[0].1;
        let seed = &measured[1].1;
        json.push_str(&format!("    \"{name}\": {{\n"));
        for (vname, r) in measured.iter() {
            // Always a trailing comma: the speedup summary row follows.
            json.push_str(&format!(
                "      \"{vname}\": {{\"ms\": {:.3}, \"gates\": {}, \"area_um2\": {:.1}, \
                 \"critical_ns\": {:.4}}},\n",
                r.ms, r.gates, r.area, r.critical_ns,
            ));
        }
        json.push_str(&format!(
            "      \"aig_speedup_vs_seed\": {:.2}\n    }}{}\n",
            seed.ms / aig.ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
