//! End-to-end `compile` benchmark: the AIG optimization pipeline vs the
//! original (pre-AIG) pass order, on the shipped `benchmarks/` controllers.
//!
//! Each KISS2 controller is lowered in the table coding style (the paper's
//! recommended generator output) and compiled twice — once with
//! `SynthOptions::default()` (AIG core) and once with `.without_aig()`
//! (the seed pass order: `const_fold`/`strash` fixpoint loops). Medians
//! and the resulting areas are written to `BENCH_synth.json` at the
//! workspace root so the compile-time trajectory is tracked across PRs
//! alongside `BENCH_espresso.json`.
//!
//! Run with `cargo bench --bench bench_synth` (add `-- --quick` for the CI
//! smoke pass; the JSON is written either way).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use synthir_core::format_conv::from_kiss2;
use synthir_netlist::Library;
use synthir_rtl::elaborate;
use synthir_rtl::elaborate::Elaborated;
use synthir_synth::{compile, SynthOptions};

fn controllers() -> Vec<(String, Elaborated)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
    let mut out = Vec::new();
    for name in ["traffic_light", "seq_detect", "elevator", "dma_ctrl"] {
        let path = format!("{dir}/{name}.kiss2");
        let text = std::fs::read_to_string(&path).expect("shipped benchmark exists");
        let spec = from_kiss2(name, &text).expect("shipped benchmark parses");
        let module = spec.to_table_module(true);
        let elab = elaborate(&module).expect("benchmark elaborates");
        out.push((name.to_string(), elab));
    }
    // The flexible (runtime-programmable) lowerings are the heavyweight
    // case: config flop arrays, write decoders, and read mux trees make
    // the elaborated netlist an order of magnitude larger — which is
    // where the front-half cleanup cost actually lives.
    for name in ["elevator", "dma_ctrl"] {
        let path = format!("{dir}/{name}.kiss2");
        let text = std::fs::read_to_string(&path).expect("shipped benchmark exists");
        let spec = from_kiss2(name, &text).expect("shipped benchmark parses");
        let module = spec.to_programmable_module();
        let elab = elaborate(&module).expect("benchmark elaborates");
        out.push((format!("{name}_prog"), elab));
    }
    out
}

fn median_time(rounds: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let quick =
        std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK_BENCH").is_some();
    let lib = Library::vt90();
    let aig_opts = SynthOptions::default();
    let seed_opts = SynthOptions::default().without_aig();
    let mut g = c.benchmark_group("bench_synth");
    g.sample_size(if quick { 3 } else { 10 });

    let mut rows = Vec::new();
    for (name, elab) in controllers() {
        g.bench_function(format!("{name}/aig"), |b| {
            b.iter(|| compile(&elab, &lib, &aig_opts).unwrap())
        });
        g.bench_function(format!("{name}/seed"), |b| {
            b.iter(|| compile(&elab, &lib, &seed_opts).unwrap())
        });
        let rounds = if quick { 3 } else { 9 };
        let r_aig = compile(&elab, &lib, &aig_opts).unwrap();
        let r_seed = compile(&elab, &lib, &seed_opts).unwrap();
        let t_aig = median_time(rounds, || {
            std::hint::black_box(compile(&elab, &lib, &aig_opts).unwrap());
        });
        let t_seed = median_time(rounds, || {
            std::hint::black_box(compile(&elab, &lib, &seed_opts).unwrap());
        });
        let speedup = t_seed.as_secs_f64() / t_aig.as_secs_f64();
        println!(
            "{name}: aig {:.3} ms ({} gates, {:.1} µm²), seed {:.3} ms ({} gates, {:.1} µm²), speedup {speedup:.2}x",
            t_aig.as_secs_f64() * 1e3,
            r_aig.netlist.num_gates(),
            r_aig.area.total(),
            t_seed.as_secs_f64() * 1e3,
            r_seed.netlist.num_gates(),
            r_seed.area.total(),
        );
        rows.push((
            name,
            t_aig,
            t_seed,
            speedup,
            r_aig.netlist.num_gates(),
            r_seed.netlist.num_gates(),
            r_aig.area.total(),
            r_seed.area.total(),
        ));
    }
    g.finish();

    let mut json = String::from(
        "{\n  \"benchmark\": \"synth::flow::compile: AIG pipeline vs original (pre-AIG) pass order\",\n  \"unit\": \"ms (median wall-clock)\",\n  \"workloads\": {\n",
    );
    for (i, (name, t_aig, t_seed, speedup, g_aig, g_seed, a_aig, a_seed)) in rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    \"{name}\": {{\"aig_ms\": {:.3}, \"seed_ms\": {:.3}, \"speedup\": {:.2}, \
             \"aig_gates\": {g_aig}, \"seed_gates\": {g_seed}, \"aig_area_um2\": {a_aig:.1}, \
             \"seed_area_um2\": {a_seed:.1}}}{}\n",
            t_aig.as_secs_f64() * 1e3,
            t_seed.as_secs_f64() * 1e3,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
