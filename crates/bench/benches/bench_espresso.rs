//! Kernel benchmark: the optimized URP espresso vs the pre-optimization
//! (seed) kernel preserved in `synthir_logic::naive`.
//!
//! Three representative 12/16/20-variable random-cover workloads are timed
//! with both kernels and the medians are written to `BENCH_espresso.json`
//! at the workspace root, so the speedup is tracked across PRs. The
//! acceptance bar for the kernel rework is ≥5× on the 16-variable cover.
//!
//! Run with `cargo bench --bench bench_espresso` (add `-- --quick` for a
//! fast smoke pass; the JSON is written either way).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use synthir_logic::espresso::{minimize, EspressoOptions};
use synthir_logic::naive::minimize_naive;
use synthir_logic::{Cover, Cube, TruthTable};

/// A random cover of `ncubes` cubes whose literals appear with the given
/// percentage density (deterministic xorshift).
fn random_cover(nvars: usize, ncubes: usize, seed: u64, density: u64) -> Cover {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let cubes: Vec<Cube> = (0..ncubes)
        .map(|_| {
            let mut care = 0u64;
            let mut value = 0u64;
            for v in 0..nvars {
                if next() % 100 < density {
                    care |= 1 << v;
                    if next() % 2 == 0 {
                        value |= 1 << v;
                    }
                }
            }
            Cube::new(nvars, value, care)
        })
        .collect();
    Cover::from_cubes(nvars, cubes)
}

/// The benchmark workloads: canonical minterm start at 12 variables (the
/// `minimize_tt` workload of the Fig. 5/6 experiments) and structural-style
/// cube covers at 16 and 20 variables.
fn workloads() -> Vec<(&'static str, Cover)> {
    let tt12 = TruthTable::from_fn(12, |m| {
        (m as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 62 & 1 != 0
    });
    vec![
        ("minterm_12var", Cover::from_truth_table(&tt12)),
        ("cubes_16var", random_cover(16, 400, 1, 60)),
        ("cubes_20var", random_cover(20, 300, 1, 50)),
    ]
}

fn median_time(rounds: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn bench(c: &mut Criterion) {
    let quick =
        std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK_BENCH").is_some();
    let opts = EspressoOptions::default();
    let mut g = c.benchmark_group("bench_espresso");
    g.sample_size(if quick { 3 } else { 10 });

    let mut rows = Vec::new();
    for (name, on) in workloads() {
        g.bench_function(format!("{name}/optimized"), |b| {
            b.iter(|| minimize(&on, None, &opts))
        });
        g.bench_function(format!("{name}/naive"), |b| {
            b.iter(|| minimize_naive(&on, None, &opts))
        });
        // Medians for the cross-PR baseline file.
        let rounds = if quick { 3 } else { 7 };
        let fast = median_time(rounds, || {
            std::hint::black_box(minimize(&on, None, &opts));
        });
        let naive = median_time(if quick { 1 } else { 3 }, || {
            std::hint::black_box(minimize_naive(&on, None, &opts));
        });
        let speedup = naive.as_secs_f64() / fast.as_secs_f64();
        println!(
            "{name}: optimized {:.3} ms, naive {:.3} ms, speedup {speedup:.1}x",
            fast.as_secs_f64() * 1e3,
            naive.as_secs_f64() * 1e3
        );
        rows.push((name, on.nvars(), on.cube_count(), fast, naive, speedup));
    }
    g.finish();

    // BENCH_espresso.json at the workspace root (two levels up from the
    // bench crate).
    let mut json = String::from("{\n  \"benchmark\": \"minimize: optimized URP kernel vs pre-optimization (naive) kernel\",\n  \"unit\": \"ms (median wall-clock)\",\n  \"workloads\": {\n");
    for (i, (name, nvars, ncubes, fast, naive, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"nvars\": {nvars}, \"cubes\": {ncubes}, \"optimized_ms\": {:.3}, \"naive_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            fast.as_secs_f64() * 1e3,
            naive.as_secs_f64() * 1e3,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_espresso.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
