//! Criterion bench for the Fig. 8 experiment.
use criterion::{criterion_group, criterion_main, Criterion};
use synthir_bench::fig8::{sample, Fig8Series, FlopVariant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("n16_sync_regular", |b| {
        b.iter(|| sample(16, FlopVariant::SyncReset, Fig8Series::Regular))
    });
    g.bench_function("n16_sync_annotated", |b| {
        b.iter(|| sample(16, FlopVariant::SyncReset, Fig8Series::StateAnnotated))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
