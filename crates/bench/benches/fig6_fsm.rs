//! Criterion bench for the Fig. 6 experiment.
use criterion::{criterion_group, criterion_main, Criterion};
use synthir_bench::fig6::{sample, Fig6Series};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("fsm_m2_n8_s17_regular", |b| {
        b.iter(|| sample(2, 8, 17, 0, Fig6Series::Regular))
    });
    g.bench_function("fsm_m2_n8_s17_annotated", |b| {
        b.iter(|| sample(2, 8, 17, 0, Fig6Series::StateAnnotated))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
