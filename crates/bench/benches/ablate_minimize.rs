//! Ablation: espresso with and without the REDUCE phase.
use criterion::{criterion_group, criterion_main, Criterion};
use synthir_core::random::random_table;
use synthir_logic::espresso::{minimize, EspressoOptions};
use synthir_logic::{Cover, TruthTable};

fn bench(c: &mut Criterion) {
    let words = random_table(256, 1, 3);
    let tt = TruthTable::from_fn(8, |m| words[m] & 1 != 0);
    let on = Cover::from_truth_table(&tt);
    let mut g = c.benchmark_group("ablate_minimize");
    g.sample_size(20);
    g.bench_function("espresso_full", |b| {
        b.iter(|| minimize(&on, None, &EspressoOptions::default()))
    });
    g.bench_function("espresso_no_reduce", |b| {
        b.iter(|| {
            minimize(
                &on,
                None,
                &EspressoOptions {
                    reduce: false,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
