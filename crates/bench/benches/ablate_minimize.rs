//! Ablation: espresso with and without the REDUCE phase, plus the
//! pre-optimization (naive) kernel and serial-vs-batch drivers for scale.
use criterion::{criterion_group, criterion_main, Criterion};
use synthir_core::random::random_table;
use synthir_logic::espresso::{minimize, minimize_tt_batch, EspressoOptions};
use synthir_logic::naive::minimize_naive;
use synthir_logic::{Cover, TruthTable};

fn bench(c: &mut Criterion) {
    let words = random_table(256, 1, 3);
    let tt = TruthTable::from_fn(8, |m| words[m] & 1 != 0);
    let on = Cover::from_truth_table(&tt);
    let mut g = c.benchmark_group("ablate_minimize");
    g.sample_size(20);
    g.bench_function("espresso_full", |b| {
        b.iter(|| minimize(&on, None, &EspressoOptions::default()))
    });
    g.bench_function("espresso_no_reduce", |b| {
        b.iter(|| {
            minimize(
                &on,
                None,
                &EspressoOptions {
                    reduce: false,
                    ..Default::default()
                },
            )
        })
    });
    // The seed kernel on the same cover: the URP rework's win at 8 vars.
    g.bench_function("espresso_naive_kernel", |b| {
        b.iter(|| minimize_naive(&on, None, &EspressoOptions::default()))
    });
    // Multi-output batch driver (parallel under the `parallel` feature).
    let wide = random_table(256, 16, 7);
    let tts: Vec<TruthTable> = (0..16)
        .map(|bit| TruthTable::from_fn(8, |m| wide[m] >> bit & 1 != 0))
        .collect();
    g.bench_function("batch_16_outputs", |b| {
        b.iter(|| minimize_tt_batch(&tts, None, &EspressoOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
