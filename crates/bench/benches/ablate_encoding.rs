//! Ablation: FSM re-encoding styles (binary / one-hot / gray / keep).
use criterion::{criterion_group, criterion_main, Criterion};
use synthir_core::random::random_fsm;
use synthir_netlist::Library;
use synthir_rtl::elaborate;
use synthir_synth::{compile, FsmEncoding, SynthOptions};

fn bench(c: &mut Criterion) {
    let lib = Library::vt90();
    let spec = random_fsm(2, 8, 8, 5);
    let module = spec.to_table_module(true);
    let elab = elaborate(&module).unwrap();
    let mut g = c.benchmark_group("ablate_encoding");
    g.sample_size(10);
    for enc in [
        FsmEncoding::Binary,
        FsmEncoding::OneHot,
        FsmEncoding::Gray,
        FsmEncoding::Keep,
    ] {
        g.bench_function(format!("{enc:?}"), |b| {
            let opts = SynthOptions::default().with_fsm_encoding(enc);
            b.iter(|| compile(&elab, &lib, &opts).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
