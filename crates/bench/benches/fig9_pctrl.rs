//! Criterion bench for the Fig. 9 experiment (one flavour per iteration).
use criterion::{criterion_group, criterion_main, Criterion};
use smpctrl::{synthesize, Flavor, MemoryConfig};
use synthir_netlist::Library;
use synthir_synth::SynthOptions;

fn bench(c: &mut Criterion) {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("pctrl_uncached_auto", |b| {
        b.iter(|| synthesize(&MemoryConfig::uncached(), Flavor::Auto, &lib, &opts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
