//! # synthir-netlist
//!
//! Gate-level netlist intermediate representation for the `synthir`
//! chip-generator toolkit.
//!
//! A [`Netlist`] is a flat module of single-output [`Gate`]s connected by
//! [`NetId`]s, with named input/output port buses. Gates are instances of
//! [`GateKind`]s; a [`Library`] assigns each kind an area and a delay, which
//! is how the experiment harness measures the synthesized area of a design
//! (the stand-in for the paper's TSMC 90 nm report).
//!
//! ## Example
//!
//! ```
//! use synthir_netlist::{GateKind, Library, Netlist};
//!
//! let mut nl = Netlist::new("and_or");
//! let a = nl.add_input("a", 1)[0];
//! let b = nl.add_input("b", 1)[0];
//! let c = nl.add_input("c", 1)[0];
//! let ab = nl.add_gate(GateKind::And2, &[a, b]);
//! let y = nl.add_gate(GateKind::Or2, &[ab, c]);
//! nl.add_output("y", &[y]);
//!
//! let lib = Library::vt90();
//! let report = nl.area_report(&lib);
//! assert!(report.combinational > 0.0);
//! assert_eq!(report.sequential, 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod library;
pub mod netgraph;
pub mod power;
pub mod report;
pub mod topo;
pub mod verilog;

pub use cell::{GateKind, ResetKind};
pub use library::{CellSpec, Library};
pub use netgraph::{Gate, GateId, NetId, Netlist, Port};
pub use power::{estimate_power, PowerReport};
pub use report::AreaReport;

/// Errors produced when manipulating netlists.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A gate was created with the wrong number of inputs for its kind.
    ArityMismatch {
        /// The gate kind.
        kind: GateKind,
        /// Number of inputs supplied.
        got: usize,
        /// Number of inputs required.
        expected: usize,
    },
    /// A net already has a driver.
    MultipleDrivers {
        /// The net in question.
        net: NetId,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle,
    /// A named port was not found.
    UnknownPort {
        /// The requested port name.
        name: String,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                kind,
                got,
                expected,
            } => write!(f, "gate {kind:?} takes {expected} inputs, got {got}"),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net {net:?} already has a driver")
            }
            NetlistError::CombinationalCycle => {
                write!(f, "netlist contains a combinational cycle")
            }
            NetlistError::UnknownPort { name } => write!(f, "unknown port {name:?}"),
        }
    }
}

impl std::error::Error for NetlistError {}
