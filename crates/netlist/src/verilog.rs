//! Structural Verilog export.
//!
//! Emits a gate-level Verilog module for a [`Netlist`], so that designs
//! produced by the generator can be inspected or cross-checked with external
//! tools. The output uses primitive-gate instantiations plus behavioural
//! always-blocks for the flops.

use crate::cell::{GateKind, ResetKind};
use crate::netgraph::{NetId, Netlist};
use std::fmt::Write;

/// Renders the netlist as structural Verilog.
///
/// # Examples
///
/// ```
/// use synthir_netlist::{GateKind, Netlist, verilog};
///
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a", 1)[0];
/// let y = nl.add_gate(GateKind::Inv, &[a]);
/// nl.add_output("y", &[y]);
/// let v = verilog::to_verilog(&nl);
/// assert!(v.contains("module inv"));
/// assert!(v.contains("not"));
/// ```
pub fn to_verilog(nl: &Netlist) -> String {
    let mut s = String::new();
    let has_flops = nl.flop_count() > 0;
    // Elaborated designs carry their reset as an explicit 1-bit `rst`
    // input port; only a hand-built netlist with flops needs one invented.
    let has_rst_port = nl.inputs().iter().any(|p| p.name == "rst");
    let mut ports: Vec<String> = Vec::new();
    if has_flops {
        ports.push("clk".into());
        if !has_rst_port {
            ports.push("rst".into());
        }
    }
    ports.extend(nl.inputs().iter().map(|p| sanitize(&p.name)));
    ports.extend(nl.outputs().iter().map(|p| sanitize(&p.name)));
    let _ = writeln!(s, "module {} ({});", sanitize(nl.name()), ports.join(", "));
    if has_flops {
        let _ = writeln!(s, "  input clk;");
        if !has_rst_port {
            let _ = writeln!(s, "  input rst;");
        }
    }
    for p in nl.inputs() {
        let _ = writeln!(s, "  input [{}:0] {};", p.nets.len() - 1, sanitize(&p.name));
    }
    for p in nl.outputs() {
        let _ = writeln!(
            s,
            "  output [{}:0] {};",
            p.nets.len() - 1,
            sanitize(&p.name)
        );
    }
    // Wires for every driven net.
    for (_, g) in nl.gates() {
        let _ = writeln!(s, "  wire {};", wire(nl, g.output));
    }
    // Map input-port nets to their bus selects.
    let _ = writeln!(s);
    for (idx, (_, g)) in nl.gates().enumerate() {
        let out = wire(nl, g.output);
        let ins: Vec<String> = g.inputs.iter().map(|&n| net_ref(nl, n)).collect();
        match g.kind {
            GateKind::Const0 => {
                let _ = writeln!(s, "  assign {out} = 1'b0;");
            }
            GateKind::Const1 => {
                let _ = writeln!(s, "  assign {out} = 1'b1;");
            }
            GateKind::Buf => {
                let _ = writeln!(s, "  buf g{idx} ({out}, {});", ins[0]);
            }
            GateKind::Inv => {
                let _ = writeln!(s, "  not g{idx} ({out}, {});", ins[0]);
            }
            GateKind::And2 | GateKind::And3 | GateKind::And4 => {
                let _ = writeln!(s, "  and g{idx} ({out}, {});", ins.join(", "));
            }
            GateKind::Or2 | GateKind::Or3 | GateKind::Or4 => {
                let _ = writeln!(s, "  or g{idx} ({out}, {});", ins.join(", "));
            }
            GateKind::Nand2 | GateKind::Nand3 | GateKind::Nand4 => {
                let _ = writeln!(s, "  nand g{idx} ({out}, {});", ins.join(", "));
            }
            GateKind::Nor2 | GateKind::Nor3 | GateKind::Nor4 => {
                let _ = writeln!(s, "  nor g{idx} ({out}, {});", ins.join(", "));
            }
            GateKind::Xor2 => {
                let _ = writeln!(s, "  xor g{idx} ({out}, {});", ins.join(", "));
            }
            GateKind::Xnor2 => {
                let _ = writeln!(s, "  xnor g{idx} ({out}, {});", ins.join(", "));
            }
            GateKind::Mux2 => {
                let _ = writeln!(s, "  assign {out} = {} ? {} : {};", ins[0], ins[2], ins[1]);
            }
            GateKind::Aoi21 => {
                let _ = writeln!(
                    s,
                    "  assign {out} = ~(({} & {}) | {});",
                    ins[0], ins[1], ins[2]
                );
            }
            GateKind::Oai21 => {
                let _ = writeln!(
                    s,
                    "  assign {out} = ~(({} | {}) & {});",
                    ins[0], ins[1], ins[2]
                );
            }
            GateKind::Aoi22 => {
                let _ = writeln!(
                    s,
                    "  assign {out} = ~(({} & {}) | ({} & {}));",
                    ins[0], ins[1], ins[2], ins[3]
                );
            }
            GateKind::Oai22 => {
                let _ = writeln!(
                    s,
                    "  assign {out} = ~(({} | {}) & ({} | {}));",
                    ins[0], ins[1], ins[2], ins[3]
                );
            }
            GateKind::Dff { reset, init } => {
                let init_lit = if init { "1'b1" } else { "1'b0" };
                let _ = writeln!(s, "  reg {out}_q;");
                match reset {
                    ResetKind::None => {
                        let _ = writeln!(s, "  always @(posedge clk) {out}_q <= {};", ins[0]);
                    }
                    ResetKind::Sync => {
                        let _ = writeln!(
                            s,
                            "  always @(posedge clk) {out}_q <= {} ? {init_lit} : {};",
                            ins[1], ins[0]
                        );
                    }
                    ResetKind::Async => {
                        let _ = writeln!(
                            s,
                            "  always @(posedge clk or posedge {}) if ({}) {out}_q <= {init_lit}; else {out}_q <= {};",
                            ins[1], ins[1], ins[0]
                        );
                    }
                }
                let _ = writeln!(s, "  assign {out} = {out}_q;");
            }
        }
    }
    // Output port connections.
    for p in nl.outputs() {
        for (i, &n) in p.nets.iter().enumerate() {
            let _ = writeln!(
                s,
                "  assign {}[{}] = {};",
                sanitize(&p.name),
                i,
                net_ref(nl, n)
            );
        }
    }
    let _ = writeln!(s, "endmodule");
    s
}

fn wire(nl: &Netlist, n: NetId) -> String {
    let _ = nl;
    format!("n{}", n.0)
}

fn net_ref(nl: &Netlist, n: NetId) -> String {
    // Input-port bits refer to the port select; internal nets use wire names.
    for p in nl.inputs() {
        if let Some(pos) = p.nets.iter().position(|&x| x == n) {
            return format!("{}[{}]", sanitize(&p.name), pos);
        }
    }
    if nl.driver(n).is_some() {
        wire(nl, n)
    } else {
        // Undriven, non-port net: tie low with a comment marker.
        "1'b0 /*undriven*/".into()
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{GateKind, ResetKind};

    #[test]
    fn combinational_module() {
        let mut nl = Netlist::new("comb");
        let a = nl.add_input("a", 2);
        let y = nl.add_gate(GateKind::Xor2, &[a[0], a[1]]);
        nl.add_output("y", &[y]);
        let v = to_verilog(&nl);
        assert!(v.contains("module comb (a, y);"));
        assert!(v.contains("xor"));
        assert!(v.contains("assign y[0]"));
        assert!(!v.contains("clk"));
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn sequential_module_declares_clock() {
        let mut nl = Netlist::new("seq");
        let d = nl.add_input("d", 1)[0];
        let rst = nl.add_input("reset_in", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::Async,
                init: true,
            },
            &[d, rst],
        );
        nl.add_output("q", &[q]);
        let v = to_verilog(&nl);
        assert!(v.contains("input clk;"));
        assert!(v.contains("posedge clk or posedge"));
        assert!(v.contains("1'b1"));
    }

    #[test]
    fn sanitizes_names() {
        let mut nl = Netlist::new("bad name!");
        let a = nl.add_input("a", 1)[0];
        let y = nl.add_gate(GateKind::Buf, &[a]);
        nl.add_output("y", &[y]);
        let v = to_verilog(&nl);
        assert!(v.contains("module bad_name_"));
    }
}
