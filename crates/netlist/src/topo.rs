//! Topological traversal and cone analysis.

use crate::netgraph::{GateId, NetId, Netlist};
use crate::NetlistError;
use std::collections::HashSet;

/// Iterative post-order walk over the combinational cone feeding `targets`.
///
/// Every reachable net is reported to `visit` exactly once, *after* all the
/// inputs of its driving gate have been reported — so a visitor can build
/// bottom-up structures (BDDs, CNF literals, AIG nodes) without recursion
/// and without its own traversal bookkeeping. Three kinds of nets arrive:
///
/// * `visit(nl, net, Some(gate))` — a net driven by `gate` (constants
///   included). Nets driven by **sequential** gates are reported as leaves:
///   the walk does not descend through a flop's D/reset pins, matching
///   every cone-based engine in the workspace (BDD, CNF, AIG import).
/// * `visit(nl, net, None)` — an undriven net that is not seeded (primary
///   inputs the caller did not seed, or dangling nets).
///
/// `seeded` is consulted before a net is expanded; returning `true` skips
/// the net entirely (the caller already has a value for it — typical for
/// primary inputs, bound constants, and BMC state literals).
///
/// The walk uses an explicit stack, so arbitrarily deep netlists (e.g. a
/// 10k-gate inverter chain) cannot overflow the call stack.
///
/// # Errors
///
/// Propagates the first error returned by `visit`.
pub fn visit_cone<E>(
    nl: &Netlist,
    targets: &[NetId],
    mut seeded: impl FnMut(NetId) -> bool,
    mut visit: impl FnMut(&Netlist, NetId, Option<GateId>) -> Result<(), E>,
) -> Result<(), E> {
    let mut done: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<(NetId, bool)> = targets.iter().rev().map(|&n| (n, false)).collect();
    while let Some((net, expanded)) = stack.pop() {
        if done.contains(&net) || (!expanded && seeded(net)) {
            continue;
        }
        let Some(g) = nl.driver(net) else {
            done.insert(net);
            visit(nl, net, None)?;
            continue;
        };
        if expanded || nl.gate(g).kind.is_sequential() {
            done.insert(net);
            visit(nl, net, Some(g))?;
            continue;
        }
        stack.push((net, true));
        for &i in &nl.gate(g).inputs {
            if !done.contains(&i) {
                stack.push((i, false));
            }
        }
    }
    Ok(())
}

/// Returns the live gates in a topological order of the combinational
/// dependency graph: a gate appears after the drivers of all its inputs.
/// Flops are ordered first (their outputs are combinational sources; their
/// inputs are not edges of this graph).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational part is
/// cyclic.
pub fn topological_order(nl: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let mut order = Vec::with_capacity(nl.num_gates());
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut mark = vec![0u8; nl.num_nets()];
    let mut seq_first = Vec::new();
    for (id, g) in nl.gates() {
        if g.kind.is_sequential() {
            seq_first.push(id);
            mark[g.output.index()] = 2;
        }
    }
    // Iterative DFS from every driven net.
    for (id, _) in nl.gates() {
        visit(nl, id, &mut mark, &mut order)?;
    }
    let mut result = seq_first;
    result.extend(order);
    Ok(result)
}

fn visit(
    nl: &Netlist,
    gate: GateId,
    mark: &mut [u8],
    order: &mut Vec<GateId>,
) -> Result<(), NetlistError> {
    let out = nl.gate(gate).output;
    if mark[out.index()] == 2 {
        return Ok(());
    }
    // Iterative DFS with an explicit stack of (gate, next input index).
    let mut stack: Vec<(GateId, usize)> = vec![(gate, 0)];
    mark[out.index()] = 1;
    while let Some((g, idx)) = stack.pop() {
        let gi = nl.gate(g);
        if gi.kind.is_sequential() {
            // Should not happen: flop outputs are pre-marked done.
            mark[gi.output.index()] = 2;
            continue;
        }
        if idx >= gi.inputs.len() {
            mark[gi.output.index()] = 2;
            order.push(g);
            continue;
        }
        stack.push((g, idx + 1));
        let inp = gi.inputs[idx];
        match mark[inp.index()] {
            2 => {}
            1 => return Err(NetlistError::CombinationalCycle),
            _ => {
                if let Some(d) = nl.driver(inp) {
                    if nl.gate(d).kind.is_sequential() {
                        mark[inp.index()] = 2;
                    } else {
                        mark[inp.index()] = 1;
                        stack.push((d, 0));
                    }
                } else {
                    // Primary input or dangling: a source.
                    mark[inp.index()] = 2;
                }
            }
        }
    }
    Ok(())
}

/// The combinational sources a net depends on: primary inputs, flop
/// outputs, and undriven nets reachable through combinational gates only.
/// Constant nets are not reported (they impose no constraint).
pub fn comb_support(nl: &Netlist, net: NetId) -> Vec<NetId> {
    let mut support = Vec::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        match nl.driver(n) {
            None => support.push(n),
            Some(g) => {
                let gate = nl.gate(g);
                if gate.kind.is_sequential() {
                    support.push(n);
                } else if gate.kind.is_constant() {
                    // Constants contribute nothing to the support.
                } else {
                    stack.extend(gate.inputs.iter().copied());
                }
            }
        }
    }
    support.sort();
    support
}

/// The combinational gates in the fan-in cone of a net (excluding flops and
/// constants), in topological order (inputs before consumers).
pub fn cone_gates(nl: &Netlist, net: NetId) -> Vec<GateId> {
    let mut seen: HashSet<GateId> = HashSet::new();
    let mut post = Vec::new();
    // DFS with explicit stack; post-order gives topological order.
    let mut stack: Vec<(NetId, bool)> = vec![(net, false)];
    let mut visited_nets: HashSet<NetId> = HashSet::new();
    while let Some((n, expanded)) = stack.pop() {
        let Some(g) = nl.driver(n) else { continue };
        let gate = nl.gate(g);
        if gate.kind.is_sequential() || gate.kind.is_constant() {
            continue;
        }
        if expanded {
            if seen.insert(g) {
                post.push(g);
            }
            continue;
        }
        if !visited_nets.insert(n) {
            continue;
        }
        stack.push((n, true));
        for &inp in &gate.inputs {
            stack.push((inp, false));
        }
    }
    post
}

/// Logic depth (number of combinational gates on the longest path) of each
/// net, for quick structural statistics.
pub fn logic_depths(nl: &Netlist) -> Result<Vec<usize>, NetlistError> {
    let order = topological_order(nl)?;
    let mut depth = vec![0usize; nl.num_nets()];
    for g in order {
        let gate = nl.gate(g);
        if gate.kind.is_sequential() || gate.kind.is_constant() {
            continue;
        }
        let d = gate
            .inputs
            .iter()
            .map(|i| depth[i.index()])
            .max()
            .unwrap_or(0)
            + 1;
        depth[gate.output.index()] = d;
    }
    Ok(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{GateKind, ResetKind};

    fn chain() -> (Netlist, Vec<NetId>) {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let x = nl.add_gate(GateKind::And2, &[a, b]);
        let y = nl.add_gate(GateKind::Inv, &[x]);
        let z = nl.add_gate(GateKind::Or2, &[y, a]);
        nl.add_output("z", &[z]);
        (nl, vec![a, b, x, y, z])
    }

    #[test]
    fn topo_respects_dependencies() {
        let (nl, _) = chain();
        let order = topological_order(&nl).unwrap();
        assert_eq!(order.len(), 3);
        let pos: std::collections::HashMap<GateId, usize> =
            order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for (id, g) in nl.gates() {
            for &inp in &g.inputs {
                if let Some(d) = nl.driver(inp) {
                    assert!(pos[&d] < pos[&id], "driver after consumer");
                }
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a", 1)[0];
        let loop_net = nl.add_net();
        let x = nl.add_gate(GateKind::And2, &[a, loop_net]);
        nl.attach_gate(GateKind::Inv, &[x], loop_net).unwrap();
        nl.add_output("x", &[x]);
        assert!(matches!(
            topological_order(&nl),
            Err(NetlistError::CombinationalCycle)
        ));
    }

    #[test]
    fn flops_break_cycles() {
        let mut nl = Netlist::new("seq");
        let q = nl.add_net();
        let nq = nl.add_gate(GateKind::Inv, &[q]);
        nl.attach_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[nq],
            q,
        )
        .unwrap();
        nl.add_output("q", &[q]);
        let order = topological_order(&nl).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn support_finds_sources() {
        let (nl, nets) = chain();
        let z = nets[4];
        let sup = comb_support(&nl, z);
        assert_eq!(sup, vec![nets[0], nets[1]]);
    }

    #[test]
    fn support_stops_at_flops() {
        let mut nl = Netlist::new("seq");
        let d = nl.add_input("d", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[d],
        );
        let y = nl.add_gate(GateKind::Inv, &[q]);
        nl.add_output("y", &[y]);
        assert_eq!(comb_support(&nl, y), vec![q]);
    }

    #[test]
    fn cone_is_topological() {
        let (nl, nets) = chain();
        let cone = cone_gates(&nl, nets[4]);
        assert_eq!(cone.len(), 3);
        // First gate of the cone must be the AND (deepest).
        assert_eq!(nl.gate(cone[0]).kind, GateKind::And2);
        assert_eq!(nl.gate(cone[2]).kind, GateKind::Or2);
    }

    #[test]
    fn depths() {
        let (nl, nets) = chain();
        let d = logic_depths(&nl).unwrap();
        assert_eq!(d[nets[2].index()], 1);
        assert_eq!(d[nets[3].index()], 2);
        assert_eq!(d[nets[4].index()], 3);
    }
}
