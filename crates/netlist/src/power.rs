//! A simple power model.
//!
//! The paper reports the Manual PCtrl optimization as "an additional 16% in
//! area **and power** savings"; this module provides the power half of that
//! measurement. The model is the standard first-order one: dynamic power
//! proportional to cell input capacitance times activity, plus per-cell
//! leakage. Activities can come from a constant default or from recorded
//! simulation toggle counts.

use crate::cell::GateKind;
use crate::library::Library;
use crate::netgraph::Netlist;

/// Power estimate in arbitrary consistent units (µW at 1 GHz, nominally).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerReport {
    /// Activity-dependent switching power.
    pub dynamic: f64,
    /// Static leakage power.
    pub leakage: f64,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dyn {:8.2} µW | leak {:8.2} µW | total {:8.2} µW",
            self.dynamic,
            self.leakage,
            self.total()
        )
    }
}

/// Per-cell power coefficients derived from the library's area (a standard
/// first-order proxy: bigger cells switch more capacitance and leak more).
fn cell_coefficients(lib: &Library, kind: GateKind) -> (f64, f64) {
    let area = lib.area(kind);
    let cap_factor = if kind.is_sequential() { 1.6 } else { 1.0 };
    // µW per unit activity; µW leakage.
    (0.35 * area * cap_factor, 0.012 * area)
}

/// Estimates power with a uniform switching activity on every net
/// (`activity` = expected toggles per cycle, typically 0.1–0.2).
pub fn estimate_power(nl: &Netlist, lib: &Library, activity: f64) -> PowerReport {
    let mut dynamic = 0.0;
    let mut leakage = 0.0;
    for (_, g) in nl.gates() {
        let (dyn_c, leak) = cell_coefficients(lib, g.kind);
        // Flops also burn clock power regardless of data activity.
        let act = if g.kind.is_sequential() {
            0.5 * activity.max(0.05) + 0.5
        } else {
            activity
        };
        dynamic += dyn_c * act;
        leakage += leak;
    }
    PowerReport { dynamic, leakage }
}

/// Estimates power from per-net toggle counts recorded over `cycles`
/// simulated cycles (nets absent from `toggles` are treated as silent).
pub fn estimate_power_with_activity(
    nl: &Netlist,
    lib: &Library,
    toggles: &std::collections::HashMap<crate::netgraph::NetId, u64>,
    cycles: u64,
) -> PowerReport {
    let cycles = cycles.max(1) as f64;
    let mut dynamic = 0.0;
    let mut leakage = 0.0;
    for (_, g) in nl.gates() {
        let (dyn_c, leak) = cell_coefficients(lib, g.kind);
        let act = toggles.get(&g.output).copied().unwrap_or(0) as f64 / cycles;
        let act = if g.kind.is_sequential() {
            act + 0.5
        } else {
            act
        };
        dynamic += dyn_c * act;
        leakage += leak;
    }
    PowerReport { dynamic, leakage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ResetKind;

    fn small() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let x = nl.add_gate(GateKind::And2, &[a, b]);
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[x],
        );
        nl.add_output("q", &[q]);
        nl
    }

    #[test]
    fn power_scales_with_activity() {
        let nl = small();
        let lib = Library::vt90();
        let low = estimate_power(&nl, &lib, 0.05);
        let high = estimate_power(&nl, &lib, 0.4);
        assert!(high.dynamic > low.dynamic);
        assert_eq!(high.leakage, low.leakage);
        assert!(low.total() > 0.0);
    }

    #[test]
    fn smaller_netlists_burn_less() {
        let nl = small();
        let mut bigger = nl.clone();
        let a = bigger.input("a").unwrap().nets[0];
        let y = bigger.add_gate(GateKind::Xor2, &[a, a]);
        bigger.add_output("y", &[y]);
        let lib = Library::vt90();
        assert!(
            estimate_power(&bigger, &lib, 0.15).total() > estimate_power(&nl, &lib, 0.15).total()
        );
    }

    #[test]
    fn measured_activity_variant() {
        let nl = small();
        let lib = Library::vt90();
        let mut toggles = std::collections::HashMap::new();
        for (_, g) in nl.gates() {
            toggles.insert(g.output, 50);
        }
        let p = estimate_power_with_activity(&nl, &lib, &toggles, 100);
        assert!(p.dynamic > 0.0);
        // Silent design still leaks and clocks.
        let silent =
            estimate_power_with_activity(&nl, &lib, &std::collections::HashMap::new(), 100);
        assert!(silent.leakage > 0.0);
        assert!(silent.dynamic > 0.0, "flop clock power");
        assert!(p.total() > silent.total());
    }
}
