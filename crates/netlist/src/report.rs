//! Area reporting, the measurement the paper's figures are built from.

/// Synthesized area split into combinational and sequential (non-
/// combinational) contributions, in µm² — the same split Fig. 9 of the
/// paper reports for the PCtrl.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaReport {
    /// Total area of combinational cells.
    pub combinational: f64,
    /// Total area of sequential cells (flops).
    pub sequential: f64,
}

impl AreaReport {
    /// Total cell area.
    pub fn total(&self) -> f64 {
        self.combinational + self.sequential
    }

    /// Component-wise sum.
    pub fn add(&self, other: &AreaReport) -> AreaReport {
        AreaReport {
            combinational: self.combinational + other.combinational,
            sequential: self.sequential + other.sequential,
        }
    }

    /// The ratio of this report's total to another's.
    ///
    /// Returns `f64::NAN` when `other` is zero-area.
    pub fn ratio_to(&self, other: &AreaReport) -> f64 {
        if other.total() == 0.0 {
            f64::NAN
        } else {
            self.total() / other.total()
        }
    }
}

impl std::fmt::Display for AreaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "comb {:10.1} µm² | seq {:10.1} µm² | total {:10.1} µm²",
            self.combinational,
            self.sequential,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_sums() {
        let a = AreaReport {
            combinational: 10.0,
            sequential: 5.0,
        };
        let b = AreaReport {
            combinational: 1.0,
            sequential: 2.0,
        };
        assert_eq!(a.total(), 15.0);
        let s = a.add(&b);
        assert_eq!(s.combinational, 11.0);
        assert_eq!(s.sequential, 7.0);
        assert!((a.ratio_to(&b) - 5.0).abs() < 1e-12);
        assert!(a.ratio_to(&AreaReport::default()).is_nan());
    }

    #[test]
    fn display_mentions_both_components() {
        let a = AreaReport {
            combinational: 1.0,
            sequential: 2.0,
        };
        let s = a.to_string();
        assert!(s.contains("comb"));
        assert!(s.contains("seq"));
    }
}
