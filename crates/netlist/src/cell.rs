//! Gate kinds and their boolean semantics.

/// Reset behaviour of a flip-flop, matching the three flavours the paper
/// sweeps in its Fig. 8 experiment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ResetKind {
    /// No reset pin: the flop powers up in an unknown state (modelled as the
    /// declared init value for simulation purposes).
    None,
    /// Synchronous reset: reset is sampled on the clock edge.
    Sync,
    /// Asynchronous reset: reset forces the output level-sensitively.
    Async,
}

impl std::fmt::Display for ResetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResetKind::None => write!(f, "none"),
            ResetKind::Sync => write!(f, "sync"),
            ResetKind::Async => write!(f, "async"),
        }
    }
}

/// The primitive gate kinds of the synthetic standard-cell library.
///
/// Input ordering conventions:
/// * `Mux2`: `[sel, d0, d1]`, output `sel ? d1 : d0`;
/// * `Aoi21`: `[a, b, c]`, output `!((a & b) | c)`;
/// * `Oai21`: `[a, b, c]`, output `!((a | b) & c)`;
/// * `Aoi22`: `[a, b, c, d]`, output `!((a & b) | (c & d))`;
/// * `Oai22`: `[a, b, c, d]`, output `!((a | b) & (c | d))`;
/// * `Dff`: `[d]` (plus an implicit clock), or `[d, rst]` for resettable
///   flavours.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum GateKind {
    /// Constant logic zero (a tie-low cell; zero area).
    Const0,
    /// Constant logic one (a tie-high cell; zero area).
    Const1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 4-input AND.
    And4,
    /// 4-input OR.
    Or4,
    /// 4-input NAND.
    Nand4,
    /// 4-input NOR.
    Nor4,
    /// 2:1 multiplexer.
    Mux2,
    /// AND-OR-invert 2-1.
    Aoi21,
    /// OR-AND-invert 2-1.
    Oai21,
    /// AND-OR-invert 2-2.
    Aoi22,
    /// OR-AND-invert 2-2.
    Oai22,
    /// D flip-flop with the given reset flavour and reset/init value.
    Dff {
        /// Reset behaviour.
        reset: ResetKind,
        /// Reset (and power-up) value.
        init: bool,
    },
}

impl GateKind {
    /// Number of data inputs the gate takes.
    pub fn arity(&self) -> usize {
        match self {
            GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Inv => 1,
            GateKind::And2
            | GateKind::Or2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2 => 2,
            GateKind::And3
            | GateKind::Or3
            | GateKind::Nand3
            | GateKind::Nor3
            | GateKind::Mux2
            | GateKind::Aoi21
            | GateKind::Oai21 => 3,
            GateKind::And4 | GateKind::Or4 | GateKind::Nand4 | GateKind::Nor4 => 4,
            GateKind::Aoi22 | GateKind::Oai22 => 4,
            GateKind::Dff { reset, .. } => match reset {
                ResetKind::None => 1,
                _ => 2,
            },
        }
    }

    /// Whether the gate is a sequential element.
    pub fn is_sequential(&self) -> bool {
        matches!(self, GateKind::Dff { .. })
    }

    /// Whether the gate is a constant source.
    pub fn is_constant(&self) -> bool {
        matches!(self, GateKind::Const0 | GateKind::Const1)
    }

    /// Evaluates the combinational function of the gate.
    ///
    /// # Panics
    ///
    /// Panics for sequential gates or on arity mismatch.
    pub fn eval(&self, ins: &[bool]) -> bool {
        assert_eq!(ins.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => ins[0],
            GateKind::Inv => !ins[0],
            GateKind::And2 => ins[0] && ins[1],
            GateKind::Or2 => ins[0] || ins[1],
            GateKind::Nand2 => !(ins[0] && ins[1]),
            GateKind::Nor2 => !(ins[0] || ins[1]),
            GateKind::Xor2 => ins[0] ^ ins[1],
            GateKind::Xnor2 => !(ins[0] ^ ins[1]),
            GateKind::And3 => ins[0] && ins[1] && ins[2],
            GateKind::Or3 => ins[0] || ins[1] || ins[2],
            GateKind::Nand3 => !(ins[0] && ins[1] && ins[2]),
            GateKind::Nor3 => !(ins[0] || ins[1] || ins[2]),
            GateKind::And4 => ins.iter().all(|&b| b),
            GateKind::Or4 => ins.iter().any(|&b| b),
            GateKind::Nand4 => !ins.iter().all(|&b| b),
            GateKind::Nor4 => !ins.iter().any(|&b| b),
            GateKind::Mux2 => {
                if ins[0] {
                    ins[2]
                } else {
                    ins[1]
                }
            }
            GateKind::Aoi21 => !((ins[0] && ins[1]) || ins[2]),
            GateKind::Oai21 => !((ins[0] || ins[1]) && ins[2]),
            GateKind::Aoi22 => !((ins[0] && ins[1]) || (ins[2] && ins[3])),
            GateKind::Oai22 => !((ins[0] || ins[1]) && (ins[2] || ins[3])),
            GateKind::Dff { .. } => panic!("cannot combinationally evaluate a flop"),
        }
    }

    /// Bit-parallel evaluation over 64 patterns at once.
    ///
    /// # Panics
    ///
    /// Panics for sequential gates or on arity mismatch.
    pub fn eval_words(&self, ins: &[u64]) -> u64 {
        assert_eq!(ins.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => ins[0],
            GateKind::Inv => !ins[0],
            GateKind::And2 => ins[0] & ins[1],
            GateKind::Or2 => ins[0] | ins[1],
            GateKind::Nand2 => !(ins[0] & ins[1]),
            GateKind::Nor2 => !(ins[0] | ins[1]),
            GateKind::Xor2 => ins[0] ^ ins[1],
            GateKind::Xnor2 => !(ins[0] ^ ins[1]),
            GateKind::And3 => ins[0] & ins[1] & ins[2],
            GateKind::Or3 => ins[0] | ins[1] | ins[2],
            GateKind::Nand3 => !(ins[0] & ins[1] & ins[2]),
            GateKind::Nor3 => !(ins[0] | ins[1] | ins[2]),
            GateKind::And4 => ins[0] & ins[1] & ins[2] & ins[3],
            GateKind::Or4 => ins[0] | ins[1] | ins[2] | ins[3],
            GateKind::Nand4 => !(ins[0] & ins[1] & ins[2] & ins[3]),
            GateKind::Nor4 => !(ins[0] | ins[1] | ins[2] | ins[3]),
            GateKind::Mux2 => (ins[0] & ins[2]) | (!ins[0] & ins[1]),
            GateKind::Aoi21 => !((ins[0] & ins[1]) | ins[2]),
            GateKind::Oai21 => !((ins[0] | ins[1]) & ins[2]),
            GateKind::Aoi22 => !((ins[0] & ins[1]) | (ins[2] & ins[3])),
            GateKind::Oai22 => !((ins[0] | ins[1]) & (ins[2] | ins[3])),
            GateKind::Dff { .. } => panic!("cannot combinationally evaluate a flop"),
        }
    }

    /// The dense truth table of a combinational gate over its
    /// [`GateKind::arity`] pins: bit `m` is the output on minterm `m`,
    /// where pin `i` contributes bit `i` of `m`. Only the low
    /// `2^arity` bits are meaningful (all kinds have arity ≤ 4). This is
    /// the cell-function metadata the cut-based technology mapper builds
    /// its NPN index from.
    ///
    /// # Examples
    ///
    /// ```
    /// use synthir_netlist::GateKind;
    ///
    /// assert_eq!(GateKind::And2.truth_table(), 0b1000);
    /// assert_eq!(GateKind::Nand2.truth_table(), 0b0111);
    /// assert_eq!(GateKind::Inv.truth_table(), 0b01);
    /// // Mux2 pins are [sel, d0, d1]: output = sel ? d1 : d0.
    /// assert_eq!(GateKind::Mux2.truth_table(), 0b11100100);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics for sequential gates, which have no combinational function.
    pub fn truth_table(&self) -> u16 {
        assert!(
            !self.is_sequential(),
            "flops have no combinational truth table"
        );
        let n = self.arity();
        let mut tt = 0u16;
        for m in 0..1usize << n {
            let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
            if self.eval(&ins) {
                tt |= 1 << m;
            }
        }
        tt
    }

    /// The library cell name for this kind.
    pub fn cell_name(&self) -> String {
        match self {
            GateKind::Const0 => "TIELO".into(),
            GateKind::Const1 => "TIEHI".into(),
            GateKind::Buf => "BUF".into(),
            GateKind::Inv => "INV".into(),
            GateKind::And2 => "AND2".into(),
            GateKind::Or2 => "OR2".into(),
            GateKind::Nand2 => "NAND2".into(),
            GateKind::Nor2 => "NOR2".into(),
            GateKind::Xor2 => "XOR2".into(),
            GateKind::Xnor2 => "XNOR2".into(),
            GateKind::And3 => "AND3".into(),
            GateKind::Or3 => "OR3".into(),
            GateKind::Nand3 => "NAND3".into(),
            GateKind::Nor3 => "NOR3".into(),
            GateKind::And4 => "AND4".into(),
            GateKind::Or4 => "OR4".into(),
            GateKind::Nand4 => "NAND4".into(),
            GateKind::Nor4 => "NOR4".into(),
            GateKind::Mux2 => "MUX2".into(),
            GateKind::Aoi21 => "AOI21".into(),
            GateKind::Oai21 => "OAI21".into(),
            GateKind::Aoi22 => "AOI22".into(),
            GateKind::Oai22 => "OAI22".into(),
            GateKind::Dff { reset, init } => {
                let r = match reset {
                    ResetKind::None => "",
                    ResetKind::Sync => "S",
                    ResetKind::Async => "R",
                };
                let i = if *init { "1" } else { "0" };
                format!("DFF{r}{i}")
            }
        }
    }

    /// All combinational kinds (useful for exhaustive tests).
    pub fn all_combinational() -> Vec<GateKind> {
        use GateKind::*;
        vec![
            Const0, Const1, Buf, Inv, And2, Or2, Nand2, Nor2, Xor2, Xnor2, And3, Or3, Nand3, Nor3,
            And4, Or4, Nand4, Nor4, Mux2, Aoi21, Oai21, Aoi22, Oai22,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_words_matches_eval() {
        for kind in GateKind::all_combinational() {
            let n = kind.arity();
            for m in 0..1usize << n {
                let ins: Vec<bool> = (0..n).map(|i| m >> i & 1 != 0).collect();
                let words: Vec<u64> = ins.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                let scalar = kind.eval(&ins);
                let word = kind.eval_words(&words);
                assert_eq!(
                    word,
                    if scalar { u64::MAX } else { 0 },
                    "{kind:?} at minterm {m}"
                );
            }
        }
    }

    #[test]
    fn arity_of_flops() {
        let plain = GateKind::Dff {
            reset: ResetKind::None,
            init: false,
        };
        assert_eq!(plain.arity(), 1);
        let sync = GateKind::Dff {
            reset: ResetKind::Sync,
            init: true,
        };
        assert_eq!(sync.arity(), 2);
        assert!(sync.is_sequential());
        assert!(!GateKind::Nand2.is_sequential());
    }

    #[test]
    fn mux_semantics() {
        // [sel, d0, d1]
        assert!(!GateKind::Mux2.eval(&[false, false, true]));
        assert!(GateKind::Mux2.eval(&[true, false, true]));
        assert!(GateKind::Mux2.eval(&[false, true, false]));
    }

    #[test]
    fn aoi_oai_semantics() {
        // Aoi21 = !((a&b)|c)
        assert!(GateKind::Aoi21.eval(&[false, true, false]));
        assert!(!GateKind::Aoi21.eval(&[true, true, false]));
        assert!(!GateKind::Aoi21.eval(&[false, false, true]));
        // Oai21 = !((a|b)&c)
        assert!(GateKind::Oai21.eval(&[false, false, true]));
        assert!(!GateKind::Oai21.eval(&[true, false, true]));
        assert!(GateKind::Oai21.eval(&[true, true, false]));
    }

    #[test]
    fn cell_names_unique() {
        let mut names = std::collections::HashSet::new();
        for k in GateKind::all_combinational() {
            assert!(names.insert(k.cell_name()), "{k:?} name collides");
        }
        for reset in [ResetKind::None, ResetKind::Sync, ResetKind::Async] {
            for init in [false, true] {
                let k = GateKind::Dff { reset, init };
                assert!(names.insert(k.cell_name()), "{k:?} name collides");
            }
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn eval_checks_arity() {
        GateKind::And2.eval(&[true]);
    }

    #[test]
    fn truth_tables_match_eval() {
        for kind in GateKind::all_combinational() {
            let tt = kind.truth_table();
            for m in 0..1usize << kind.arity() {
                let ins: Vec<bool> = (0..kind.arity()).map(|i| m >> i & 1 != 0).collect();
                assert_eq!(tt >> m & 1 != 0, kind.eval(&ins), "{kind:?} minterm {m}");
            }
        }
    }
}
