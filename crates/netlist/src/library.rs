//! The synthetic standard-cell library.
//!
//! The paper reports areas from a TSMC 90 nm library, which cannot be
//! redistributed. [`Library::vt90`] is a synthetic library with the same
//! *relative* cost structure (inverters cheapest, NAND/NOR cheaper than
//! AND/OR, XOR and MUX expensive, flops an order of magnitude larger than
//! simple gates) so that area ratios — the only quantity the paper's
//! conclusions rest on — are preserved.
//!
//! A [`Library`] is **data, not code**: it holds one [`CellSpec`] row per
//! cell, and every consumer — the area report, static timing
//! (`synthir_synth::timing::sta` reads per-cell delays from here, never
//! from hardcoded defaults), the power estimate, and the cut-based
//! mapper's NPN index — reads the same metadata table. The `vt90` numbers
//! (areas in µm², delays in ns):
//!
//! | cell | area | delay | | cell | area | delay |
//! |------|-----:|------:|-|------|-----:|------:|
//! | `INV`   | 2.1 | 0.022 | | `NAND3` | 3.5 | 0.041 |
//! | `BUF`   | 2.8 | 0.045 | | `NOR3`  | 3.5 | 0.053 |
//! | `NAND2` | 2.8 | 0.032 | | `AND3`  | 4.2 | 0.060 |
//! | `NOR2`  | 2.8 | 0.038 | | `OR3`   | 4.2 | 0.068 |
//! | `AND2`  | 3.5 | 0.052 | | `NAND4` | 4.2 | 0.050 |
//! | `OR2`   | 3.5 | 0.058 | | `NOR4`  | 4.2 | 0.066 |
//! | `XOR2`  | 7.0 | 0.075 | | `AND4`  | 4.9 | 0.068 |
//! | `XNOR2` | 7.0 | 0.075 | | `OR4`   | 4.9 | 0.078 |
//! | `MUX2`  | 6.3 | 0.070 | | `AOI21` | 3.5 | 0.045 |
//! | `OAI21` | 3.5 | 0.047 | | `AOI22` | 4.2 | 0.055 |
//! | `OAI22` | 4.2 | 0.057 | | `DFF`   | 15.4 | 0.150 |
//! | `DFFS*` | 19.6 | 0.155 | | `DFFR*` | 18.2 | 0.152 |
//!
//! (`TIELO`/`TIEHI` are free; `DFFS*`/`DFFR*` are the sync/async-reset
//! flop flavours, delay = clock-to-Q.)

use crate::cell::{GateKind, ResetKind};

/// Area and delay of one library cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellSpec {
    /// Cell area in µm².
    pub area: f64,
    /// Pin-to-output propagation delay in ns (clock-to-Q for flops).
    pub delay: f64,
}

/// A technology library mapping [`GateKind`]s to [`CellSpec`]s.
///
/// # Examples
///
/// ```
/// use synthir_netlist::{GateKind, Library};
///
/// let lib = Library::vt90();
/// let inv = lib.cell(GateKind::Inv);
/// let xor = lib.cell(GateKind::Xor2);
/// assert!(xor.area > inv.area);
/// ```
///
/// The metadata table is directly iterable — this is what the cut-based
/// mapper's NPN index and the docs' cell table are generated from:
///
/// ```
/// use synthir_netlist::{GateKind, Library};
///
/// let lib = Library::vt90();
/// for (kind, spec) in lib.combinational_cells() {
///     assert_eq!(lib.area(*kind), spec.area);
///     assert_eq!(lib.delay(*kind), spec.delay);
/// }
/// // Every combinational kind has exactly one metadata row.
/// assert_eq!(
///     lib.combinational_cells().len(),
///     GateKind::all_combinational().len(),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Library {
    name: String,
    /// Delay charged per fanout connection (crude wire-load model).
    pub fanout_delay: f64,
    /// Flop setup time in ns.
    pub setup_time: f64,
    /// Combinational cell metadata, one row per [`GateKind`].
    cells: Vec<(GateKind, CellSpec)>,
    /// Flop metadata, indexed by [`ResetKind`] (`None`, `Sync`, `Async`).
    flops: [CellSpec; 3],
}

impl Library {
    /// The default synthetic 90 nm-class library.
    pub fn vt90() -> Self {
        use GateKind::*;
        // Areas in µm² for a 90nm-class process (2.8 µm² per minimum gate
        // equivalent), delays in ns.
        let spec = |area, delay| CellSpec { area, delay };
        let cells = vec![
            (Const0, spec(0.0, 0.0)),
            (Const1, spec(0.0, 0.0)),
            (Buf, spec(2.8, 0.045)),
            (Inv, spec(2.1, 0.022)),
            (Nand2, spec(2.8, 0.032)),
            (Nor2, spec(2.8, 0.038)),
            (And2, spec(3.5, 0.052)),
            (Or2, spec(3.5, 0.058)),
            (Xor2, spec(7.0, 0.075)),
            (Xnor2, spec(7.0, 0.075)),
            (Nand3, spec(3.5, 0.041)),
            (Nor3, spec(3.5, 0.053)),
            (And3, spec(4.2, 0.060)),
            (Or3, spec(4.2, 0.068)),
            (Nand4, spec(4.2, 0.050)),
            (Nor4, spec(4.2, 0.066)),
            (And4, spec(4.9, 0.068)),
            (Or4, spec(4.9, 0.078)),
            (Mux2, spec(6.3, 0.070)),
            (Aoi21, spec(3.5, 0.045)),
            (Oai21, spec(3.5, 0.047)),
            (Aoi22, spec(4.2, 0.055)),
            (Oai22, spec(4.2, 0.057)),
        ];
        Library {
            name: "vt90".into(),
            fanout_delay: 0.004,
            setup_time: 0.06,
            cells,
            flops: [
                spec(15.4, 0.150), // ResetKind::None
                spec(19.6, 0.155), // ResetKind::Sync
                spec(18.2, 0.152), // ResetKind::Async
            ],
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The combinational cell metadata table: one `(kind, spec)` row per
    /// combinational [`GateKind`]. This is the view the cut-based mapper
    /// indexes by NPN class, and the source of truth the per-kind
    /// accessors read.
    pub fn combinational_cells(&self) -> &[(GateKind, CellSpec)] {
        &self.cells
    }

    /// The area/delay of a gate kind, read from the metadata table.
    ///
    /// # Panics
    ///
    /// Panics if the library has no row for a combinational `kind`
    /// (cannot happen for [`Library::vt90`], which covers every kind).
    pub fn cell(&self, kind: GateKind) -> CellSpec {
        match kind {
            GateKind::Dff { reset, .. } => {
                self.flops[match reset {
                    ResetKind::None => 0,
                    ResetKind::Sync => 1,
                    ResetKind::Async => 2,
                }]
            }
            k => {
                self.cells
                    .iter()
                    .find(|(c, _)| *c == k)
                    .unwrap_or_else(|| panic!("no library metadata for {k:?}"))
                    .1
            }
        }
    }

    /// Area of a gate kind (convenience).
    pub fn area(&self, kind: GateKind) -> f64 {
        self.cell(kind).area
    }

    /// Delay of a gate kind (convenience).
    pub fn delay(&self, kind: GateKind) -> f64 {
        self.cell(kind).delay
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::vt90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_cost_structure() {
        let lib = Library::vt90();
        // Inverter is the cheapest non-constant cell.
        let inv = lib.area(GateKind::Inv);
        for k in GateKind::all_combinational() {
            if !k.is_constant() {
                assert!(lib.area(k) >= inv, "{k:?} cheaper than INV");
            }
        }
        // NAND cheaper than AND (the extra inverter).
        assert!(lib.area(GateKind::Nand2) < lib.area(GateKind::And2));
        // XOR is expensive.
        assert!(lib.area(GateKind::Xor2) > lib.area(GateKind::Nand3));
        // Flops dominate simple gates.
        let dff = lib.area(GateKind::Dff {
            reset: ResetKind::None,
            init: false,
        });
        assert!(dff > 3.0 * lib.area(GateKind::Nand2));
        // Resettable flops cost more than plain ones.
        let sdff = lib.area(GateKind::Dff {
            reset: ResetKind::Sync,
            init: false,
        });
        let adff = lib.area(GateKind::Dff {
            reset: ResetKind::Async,
            init: false,
        });
        assert!(sdff > dff && adff > dff);
    }

    #[test]
    fn constants_are_free() {
        let lib = Library::vt90();
        assert_eq!(lib.area(GateKind::Const0), 0.0);
        assert_eq!(lib.area(GateKind::Const1), 0.0);
    }

    #[test]
    fn delays_are_positive() {
        let lib = Library::vt90();
        for k in GateKind::all_combinational() {
            if !k.is_constant() {
                assert!(lib.delay(k) > 0.0);
            }
        }
        assert!(lib.setup_time > 0.0);
        assert!(lib.fanout_delay > 0.0);
    }

    #[test]
    fn metadata_table_covers_every_combinational_kind() {
        let lib = Library::vt90();
        for k in GateKind::all_combinational() {
            assert!(
                lib.combinational_cells().iter().any(|(c, _)| *c == k),
                "{k:?} missing from the metadata table"
            );
        }
        // And the accessors agree with the table rows.
        for (k, spec) in lib.combinational_cells() {
            assert_eq!(lib.cell(*k), *spec);
        }
    }
}
