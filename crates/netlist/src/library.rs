//! The synthetic standard-cell library.
//!
//! The paper reports areas from a TSMC 90 nm library, which cannot be
//! redistributed. [`Library::vt90`] is a synthetic library with the same
//! *relative* cost structure (inverters cheapest, NAND/NOR cheaper than
//! AND/OR, XOR and MUX expensive, flops an order of magnitude larger than
//! simple gates) so that area ratios — the only quantity the paper's
//! conclusions rest on — are preserved.

use crate::cell::{GateKind, ResetKind};

/// Area and delay of one library cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellSpec {
    /// Cell area in µm².
    pub area: f64,
    /// Pin-to-output propagation delay in ns (clock-to-Q for flops).
    pub delay: f64,
}

/// A technology library mapping [`GateKind`]s to [`CellSpec`]s.
///
/// # Examples
///
/// ```
/// use synthir_netlist::{GateKind, Library};
///
/// let lib = Library::vt90();
/// let inv = lib.cell(GateKind::Inv);
/// let xor = lib.cell(GateKind::Xor2);
/// assert!(xor.area > inv.area);
/// ```
#[derive(Clone, Debug)]
pub struct Library {
    name: String,
    /// Delay charged per fanout connection (crude wire-load model).
    pub fanout_delay: f64,
    /// Flop setup time in ns.
    pub setup_time: f64,
}

impl Library {
    /// The default synthetic 90 nm-class library.
    pub fn vt90() -> Self {
        Library {
            name: "vt90".into(),
            fanout_delay: 0.004,
            setup_time: 0.06,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The area/delay of a gate kind.
    pub fn cell(&self, kind: GateKind) -> CellSpec {
        // Areas in µm² for a 90nm-class process (2.8 µm² per minimum gate
        // equivalent), delays in ns.
        let (area, delay) = match kind {
            GateKind::Const0 | GateKind::Const1 => (0.0, 0.0),
            GateKind::Buf => (2.8, 0.045),
            GateKind::Inv => (2.1, 0.022),
            GateKind::Nand2 => (2.8, 0.032),
            GateKind::Nor2 => (2.8, 0.038),
            GateKind::And2 => (3.5, 0.052),
            GateKind::Or2 => (3.5, 0.058),
            GateKind::Xor2 => (7.0, 0.075),
            GateKind::Xnor2 => (7.0, 0.075),
            GateKind::Nand3 => (3.5, 0.041),
            GateKind::Nor3 => (3.5, 0.053),
            GateKind::And3 => (4.2, 0.060),
            GateKind::Or3 => (4.2, 0.068),
            GateKind::Nand4 => (4.2, 0.050),
            GateKind::Nor4 => (4.2, 0.066),
            GateKind::And4 => (4.9, 0.068),
            GateKind::Or4 => (4.9, 0.078),
            GateKind::Mux2 => (6.3, 0.070),
            GateKind::Aoi21 => (3.5, 0.045),
            GateKind::Oai21 => (3.5, 0.047),
            GateKind::Aoi22 => (4.2, 0.055),
            GateKind::Oai22 => (4.2, 0.057),
            GateKind::Dff { reset, .. } => match reset {
                ResetKind::None => (15.4, 0.150),
                ResetKind::Sync => (19.6, 0.155),
                ResetKind::Async => (18.2, 0.152),
            },
        };
        CellSpec { area, delay }
    }

    /// Area of a gate kind (convenience).
    pub fn area(&self, kind: GateKind) -> f64 {
        self.cell(kind).area
    }

    /// Delay of a gate kind (convenience).
    pub fn delay(&self, kind: GateKind) -> f64 {
        self.cell(kind).delay
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::vt90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_cost_structure() {
        let lib = Library::vt90();
        // Inverter is the cheapest non-constant cell.
        let inv = lib.area(GateKind::Inv);
        for k in GateKind::all_combinational() {
            if !k.is_constant() {
                assert!(lib.area(k) >= inv, "{k:?} cheaper than INV");
            }
        }
        // NAND cheaper than AND (the extra inverter).
        assert!(lib.area(GateKind::Nand2) < lib.area(GateKind::And2));
        // XOR is expensive.
        assert!(lib.area(GateKind::Xor2) > lib.area(GateKind::Nand3));
        // Flops dominate simple gates.
        let dff = lib.area(GateKind::Dff {
            reset: ResetKind::None,
            init: false,
        });
        assert!(dff > 3.0 * lib.area(GateKind::Nand2));
        // Resettable flops cost more than plain ones.
        let sdff = lib.area(GateKind::Dff {
            reset: ResetKind::Sync,
            init: false,
        });
        let adff = lib.area(GateKind::Dff {
            reset: ResetKind::Async,
            init: false,
        });
        assert!(sdff > dff && adff > dff);
    }

    #[test]
    fn constants_are_free() {
        let lib = Library::vt90();
        assert_eq!(lib.area(GateKind::Const0), 0.0);
        assert_eq!(lib.area(GateKind::Const1), 0.0);
    }

    #[test]
    fn delays_are_positive() {
        let lib = Library::vt90();
        for k in GateKind::all_combinational() {
            if !k.is_constant() {
                assert!(lib.delay(k) > 0.0);
            }
        }
        assert!(lib.setup_time > 0.0);
        assert!(lib.fanout_delay > 0.0);
    }
}
