//! The netlist graph structure.

use crate::cell::GateKind;
use crate::library::Library;
use crate::report::AreaReport;
use crate::NetlistError;
use std::collections::HashMap;

/// Identifier of a net (a single-bit wire).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a gate instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GateId(pub u32);

impl NetId {
    /// The net's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The gate's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single-output gate instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// The gate kind.
    pub kind: GateKind,
    /// Input nets, in the order defined by [`GateKind`].
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A named port bus.
#[derive(Clone, Debug, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// The port's nets, least-significant bit first.
    pub nets: Vec<NetId>,
}

/// A flat gate-level module.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    net_names: Vec<Option<String>>,
    gates: Vec<Option<Gate>>,
    driver: Vec<Option<GateId>>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    const_nets: [Option<NetId>; 2],
}

impl Netlist {
    /// Creates an empty netlist named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Creates a fresh anonymous net.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(None);
        self.driver.push(None);
        id
    }

    /// Creates a fresh named net.
    pub fn add_named_net(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net();
        self.net_names[id.index()] = Some(name.into());
        id
    }

    /// The optional name of a net.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.net_names[net.index()].as_deref()
    }

    /// Number of nets ever created (including dangling ones).
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Declares an input port bus of `width` bits; returns its nets
    /// (LSB first).
    pub fn add_input(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let name = name.into();
        let nets: Vec<NetId> = (0..width)
            .map(|i| self.add_named_net(format!("{name}[{i}]")))
            .collect();
        self.inputs.push(Port {
            name,
            nets: nets.clone(),
        });
        nets
    }

    /// Declares an output port bus connected to existing nets (LSB first).
    pub fn add_output(&mut self, name: impl Into<String>, nets: &[NetId]) {
        self.outputs.push(Port {
            name: name.into(),
            nets: nets.to_vec(),
        });
    }

    /// Input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Output ports.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Looks up an input port by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if no such input exists.
    pub fn input(&self, name: &str) -> Result<&Port, NetlistError> {
        self.inputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort { name: name.into() })
    }

    /// Looks up an output port by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] if no such output exists.
    pub fn output(&self, name: &str) -> Result<&Port, NetlistError> {
        self.outputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| NetlistError::UnknownPort { name: name.into() })
    }

    /// All primary-input nets in port order.
    pub fn input_nets(&self) -> Vec<NetId> {
        self.inputs.iter().flat_map(|p| p.nets.clone()).collect()
    }

    /// All primary-output nets in port order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs.iter().flat_map(|p| p.nets.clone()).collect()
    }

    /// Adds a gate, creating and returning its output net.
    ///
    /// # Panics
    ///
    /// Panics on input-arity mismatch.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        self.try_add_gate(kind, inputs).expect("valid gate")
    }

    /// Adds a gate, creating and returning its output net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the number of inputs does
    /// not match the gate kind.
    pub fn try_add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        if inputs.len() != kind.arity() {
            return Err(NetlistError::ArityMismatch {
                kind,
                got: inputs.len(),
                expected: kind.arity(),
            });
        }
        let output = self.add_net();
        self.attach_gate(kind, inputs, output)?;
        Ok(output)
    }

    /// Adds a gate driving an existing (so far undriven) net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] or
    /// [`NetlistError::MultipleDrivers`].
    pub fn attach_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        if inputs.len() != kind.arity() {
            return Err(NetlistError::ArityMismatch {
                kind,
                got: inputs.len(),
                expected: kind.arity(),
            });
        }
        if self.driver[output.index()].is_some() {
            return Err(NetlistError::MultipleDrivers { net: output });
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Some(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        }));
        self.driver[output.index()] = Some(id);
        Ok(id)
    }

    /// The constant-zero net (created on first use).
    pub fn const0(&mut self) -> NetId {
        if let Some(n) = self.const_nets[0] {
            return n;
        }
        let n = self.add_gate(GateKind::Const0, &[]);
        self.const_nets[0] = Some(n);
        n
    }

    /// The constant-one net (created on first use).
    pub fn const1(&mut self) -> NetId {
        if let Some(n) = self.const_nets[1] {
            return n;
        }
        let n = self.add_gate(GateKind::Const1, &[]);
        self.const_nets[1] = Some(n);
        n
    }

    /// The constant net for `value`.
    pub fn constant(&mut self, value: bool) -> NetId {
        if value {
            self.const1()
        } else {
            self.const0()
        }
    }

    /// Whether `net` is one of the cached constant nets, and its value.
    pub fn as_constant(&self, net: NetId) -> Option<bool> {
        match self.driver(net).map(|g| self.gate(g).kind) {
            Some(GateKind::Const0) => Some(false),
            Some(GateKind::Const1) => Some(true),
            _ => None,
        }
    }

    /// The gate driving a net, if any.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver[net.index()]
    }

    /// A live gate by id.
    ///
    /// # Panics
    ///
    /// Panics if the gate was removed.
    pub fn gate(&self, id: GateId) -> &Gate {
        self.gates[id.index()].as_ref().expect("live gate")
    }

    /// Whether a gate id refers to a live gate.
    pub fn is_live(&self, id: GateId) -> bool {
        self.gates
            .get(id.index())
            .map(|g| g.is_some())
            .unwrap_or(false)
    }

    /// Iterator over live gates.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (GateId(i as u32), g)))
    }

    /// Number of live gates.
    pub fn num_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_some()).count()
    }

    /// Removes a gate, leaving its output net undriven.
    pub fn remove_gate(&mut self, id: GateId) {
        if let Some(g) = self.gates[id.index()].take() {
            self.driver[g.output.index()] = None;
            for (i, cn) in self.const_nets.iter_mut().enumerate() {
                if *cn == Some(g.output) {
                    debug_assert!(matches!(g.kind, GateKind::Const0 | GateKind::Const1));
                    let _ = i;
                    *cn = None;
                }
            }
        }
    }

    /// Rewires every use of `old` (gate inputs and output ports) to `new`.
    /// The driver of `old`, if any, is left in place (and will be swept if
    /// it becomes dead).
    pub fn replace_net_uses(&mut self, old: NetId, new: NetId) {
        if old == new {
            return;
        }
        for g in self.gates.iter_mut().flatten() {
            for inp in &mut g.inputs {
                if *inp == old {
                    *inp = new;
                }
            }
        }
        for p in &mut self.outputs {
            for n in &mut p.nets {
                if *n == old {
                    *n = new;
                }
            }
        }
    }

    /// Rewires every use of each key net (gate inputs and output ports) to
    /// its mapped net in one sweep — the bulk form of
    /// [`Netlist::replace_net_uses`], used by passes that accumulate many
    /// merges and apply them at once instead of rescanning the netlist per
    /// merge. Drivers of the remapped nets are left in place (dead ones are
    /// removed by [`Netlist::sweep`]).
    pub fn remap_uses(&mut self, map: &HashMap<NetId, NetId>) {
        if map.is_empty() {
            return;
        }
        for g in self.gates.iter_mut().flatten() {
            for inp in &mut g.inputs {
                if let Some(&n) = map.get(inp) {
                    *inp = n;
                }
            }
        }
        for p in &mut self.outputs {
            for n in &mut p.nets {
                if let Some(&m) = map.get(n) {
                    *n = m;
                }
            }
        }
    }

    /// Rewrites one gate in place (same output net, new kind/inputs).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or if the gate is dead.
    pub fn rewrite_gate(&mut self, id: GateId, kind: GateKind, inputs: &[NetId]) {
        assert_eq!(inputs.len(), kind.arity(), "arity mismatch for {kind:?}");
        let g = self.gates[id.index()].as_mut().expect("live gate");
        g.kind = kind;
        g.inputs = inputs.to_vec();
    }

    /// Per-net fanout: the live gates reading each net.
    pub fn fanout_map(&self) -> Vec<Vec<GateId>> {
        let mut fo = vec![Vec::new(); self.num_nets()];
        for (id, g) in self.gates() {
            for &inp in &g.inputs {
                fo[inp.index()].push(id);
            }
        }
        fo
    }

    /// Removes gates whose outputs transitively reach no output port.
    /// Returns the number of gates removed.
    pub fn sweep(&mut self) -> usize {
        let mut live = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = Vec::new();
        for net in self.output_nets() {
            if let Some(g) = self.driver(net) {
                if !live[g.index()] {
                    live[g.index()] = true;
                    stack.push(g);
                }
            }
        }
        while let Some(g) = stack.pop() {
            let inputs = self.gate(g).inputs.clone();
            for inp in inputs {
                if let Some(d) = self.driver(inp) {
                    if !live[d.index()] {
                        live[d.index()] = true;
                        stack.push(d);
                    }
                }
            }
        }
        let mut removed = 0;
        for (i, alive) in live.iter().enumerate() {
            if self.gates[i].is_some() && !alive {
                self.remove_gate(GateId(i as u32));
                removed += 1;
            }
        }
        removed
    }

    /// Gate-count histogram by kind.
    pub fn gate_histogram(&self) -> HashMap<GateKind, usize> {
        let mut h = HashMap::new();
        for (_, g) in self.gates() {
            *h.entry(g.kind).or_insert(0) += 1;
        }
        h
    }

    /// Computes the area report under a library.
    pub fn area_report(&self, lib: &Library) -> AreaReport {
        let mut comb = 0.0;
        let mut seq = 0.0;
        for (_, g) in self.gates() {
            let a = lib.area(g.kind);
            if g.kind.is_sequential() {
                seq += a;
            } else {
                comb += a;
            }
        }
        AreaReport {
            combinational: comb,
            sequential: seq,
        }
    }

    /// Number of sequential elements.
    pub fn flop_count(&self) -> usize {
        self.gates().filter(|(_, g)| g.kind.is_sequential()).count()
    }

    /// Checks structural invariants: every gate's inputs exist, arity
    /// matches, drivers are consistent, and the combinational part is
    /// acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, g) in self.gates() {
            if g.inputs.len() != g.kind.arity() {
                return Err(NetlistError::ArityMismatch {
                    kind: g.kind,
                    got: g.inputs.len(),
                    expected: g.kind.arity(),
                });
            }
            if self.driver[g.output.index()] != Some(id) {
                return Err(NetlistError::MultipleDrivers { net: g.output });
            }
        }
        crate::topo::topological_order(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ResetKind;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let y = nl.add_gate(GateKind::And2, &[a, b]);
        nl.add_output("y", &[y]);
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = tiny();
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.output("y").unwrap().nets.len(), 1);
        assert!(nl.output("z").is_err());
        let y = nl.output_nets()[0];
        let g = nl.driver(y).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::And2);
        nl.validate().unwrap();
    }

    #[test]
    fn arity_checked() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let r = nl.try_add_gate(GateKind::And2, &[a]);
        assert!(matches!(r, Err(NetlistError::ArityMismatch { .. })));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let y = nl.add_gate(GateKind::Buf, &[a]);
        let r = nl.attach_gate(GateKind::Inv, &[a], y);
        assert!(matches!(r, Err(NetlistError::MultipleDrivers { .. })));
    }

    #[test]
    fn constants_are_cached() {
        let mut nl = Netlist::new("t");
        let c0 = nl.const0();
        assert_eq!(nl.const0(), c0);
        assert_eq!(nl.as_constant(c0), Some(false));
        let c1 = nl.const1();
        assert_eq!(nl.as_constant(c1), Some(true));
        assert_eq!(nl.constant(true), c1);
    }

    #[test]
    fn replace_net_uses_rewires() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let y = nl.add_gate(GateKind::And2, &[a, b]);
        nl.add_output("y", &[y]);
        let c1 = nl.const1();
        nl.replace_net_uses(b, c1);
        let g = nl.driver(y).unwrap();
        assert_eq!(nl.gate(g).inputs[1], c1);
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut nl = tiny();
        let a = nl.input("a").unwrap().nets[0];
        // Dead inverter.
        let _dead = nl.add_gate(GateKind::Inv, &[a]);
        assert_eq!(nl.num_gates(), 2);
        let removed = nl.sweep();
        assert_eq!(removed, 1);
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn sweep_keeps_sequential_loops_reaching_outputs() {
        let mut nl = Netlist::new("counter_bit");
        let q = nl.add_net();
        let nq = nl.add_gate(GateKind::Inv, &[q]);
        let rst = nl.add_input("rst", 1)[0];
        nl.attach_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[nq, rst],
            q,
        )
        .unwrap();
        nl.add_output("q", &[q]);
        assert_eq!(nl.sweep(), 0);
        assert_eq!(nl.num_gates(), 2);
    }

    #[test]
    fn area_report_splits_comb_seq() {
        let mut nl = tiny();
        let a = nl.input("a").unwrap().nets[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[a],
        );
        nl.add_output("q", &[q]);
        let lib = Library::vt90();
        let rep = nl.area_report(&lib);
        assert!(rep.combinational > 0.0);
        assert!(rep.sequential > 10.0);
        assert_eq!(rep.total(), rep.combinational + rep.sequential);
        assert_eq!(nl.flop_count(), 1);
    }

    #[test]
    fn histogram_counts_kinds() {
        let nl = tiny();
        let h = nl.gate_histogram();
        assert_eq!(h.get(&GateKind::And2), Some(&1));
    }

    #[test]
    fn rewrite_gate_in_place() {
        let mut nl = tiny();
        let y = nl.output_nets()[0];
        let g = nl.driver(y).unwrap();
        let ins = nl.gate(g).inputs.clone();
        nl.rewrite_gate(g, GateKind::Or2, &ins);
        assert_eq!(nl.gate(g).kind, GateKind::Or2);
        nl.validate().unwrap();
    }
}
