//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate reimplements the small proptest subset the test suites use: the
//! [`proptest!`] macro over named-argument strategies (`x in 0usize..10`,
//! `s in any::<u64>()`), `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Sampling is deterministic (seeded per test by the
//! test's name), with no shrinking — a failing case prints its inputs via
//! the standard assert message instead.

#![forbid(unsafe_code)]

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving each test (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (derived from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5EED_CAFE_F00D_D00D,
        }
    }

    /// Hashes a test name into a seed (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

/// Marker for types samplable by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: uniform over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each listed function runs `cases` times with
/// fresh samples drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::TestRng::seed_from_name(
                    stringify!($name),
                ));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..9, seed in any::<u64>()) {
            prop_assert!((3..9).contains(&n));
            let _ = seed;
        }

        #[test]
        fn multiple_args_sample_independently(a in 0u32..10, b in 0u32..10, c in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::new(1);
        let mut r2 = crate::TestRng::new(1);
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
