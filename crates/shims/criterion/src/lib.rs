//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate provides the benchmarking subset the bench targets use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function` with a
//! [`Bencher`] supporting `iter`, the `criterion_group!`/`criterion_main!`
//! macros, and [`black_box`]. Timing is simple wall-clock sampling with
//! median/min/max reporting — good enough to track order-of-magnitude
//! kernel speedups across PRs, with zero dependencies.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --quick` (or QUICK_BENCH=1) cuts sample counts for
        // CI smoke runs, mirroring criterion's --quick flag.
        let quick =
            std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK_BENCH").is_some();
        Criterion {
            default_sample_size: 10,
            quick,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            quick: self.quick,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let quick = self.quick;
        let n = self.default_sample_size;
        run_benchmark(&id.to_string(), n, quick, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.to_string());
        run_benchmark(&full, self.sample_size, self.quick, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per round.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up round.
        black_box(f());
        for _ in 0..self.rounds {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Runs `f` under a [`Bencher`] and prints a criterion-like summary line.
/// Returns the median sample.
pub fn run_benchmark<F>(id: &str, sample_size: usize, quick: bool, mut f: F) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let rounds = if quick {
        sample_size.clamp(1, 3)
    } else {
        sample_size
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(rounds),
        rounds,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples — closure never called iter)");
        return Duration::ZERO;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
    median
}

/// Formats a duration with criterion-style units.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(1 + 1)
            })
        });
        g.finish();
        // warm-up + 3 samples (or fewer under --quick).
        assert!(calls >= 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
    }
}
