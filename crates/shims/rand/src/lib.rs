//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate provides exactly the API surface `synthir` uses: a seedable
//! [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`] traits with `gen` and
//! `gen_range`. The generator is SplitMix64 — statistically fine for the
//! seeded random *design generators* this repo needs, and fully
//! deterministic across platforms (which is all the experiments require).

#![forbid(unsafe_code)]

/// Random number generator implementations.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64 stand-in for rand's
    /// `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seeding support (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed so seeds 0 and 1 do not produce correlated
        // initial outputs.
        let mut r = StdRng { state: seed };
        let _ = r.next_u64();
        r
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG (stand-in for
/// `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is negligible for the tiny spans used here
                // and irrelevant for synthetic benchmark tables.
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i32, i64);

/// The user-facing generator trait (stand-in for `rand::Rng`).
pub trait Rng {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws one value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
