//! The three synthesis flavours of the paper's Fig. 9 experiment.

use crate::config::MemoryConfig;
use crate::rtl::{pctrl_module, PctrlStyle};
use synthir_core::CoreError;
use synthir_netlist::Library;
use synthir_synth::flow::{compile, CompileResult};
use synthir_synth::SynthOptions;

/// The Fig. 9 design flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// The original flexible design: microcode in writable configuration
    /// memories.
    Full,
    /// Automatically partially evaluated: tables bound, standard compile.
    Auto,
    /// Bound plus the annotations standing in for hand optimization
    /// (unreachable-state removal and one-hot field folding).
    Manual,
}

impl Flavor {
    /// All flavours, in the paper's presentation order.
    pub fn all() -> [Flavor; 3] {
        [Flavor::Full, Flavor::Auto, Flavor::Manual]
    }
}

impl std::fmt::Display for Flavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Flavor::Full => write!(f, "Full"),
            Flavor::Auto => write!(f, "Auto"),
            Flavor::Manual => write!(f, "Manual"),
        }
    }
}

/// Synthesizes the PCtrl for a configuration and flavour.
///
/// # Errors
///
/// Returns [`CoreError`] on elaboration or synthesis failure.
pub fn synthesize(
    cfg: &MemoryConfig,
    flavor: Flavor,
    lib: &Library,
    opts: &SynthOptions,
) -> Result<CompileResult, CoreError> {
    let style = match flavor {
        Flavor::Full => PctrlStyle::Flexible,
        Flavor::Auto => PctrlStyle::Bound,
        Flavor::Manual => PctrlStyle::BoundAnnotated,
    };
    let m = pctrl_module(cfg, style)?;
    let e = synthir_rtl::elaborate(&m)?;
    Ok(compile(&e, lib, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_holds() {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        for cfg in [MemoryConfig::cached(), MemoryConfig::uncached()] {
            let full = synthesize(&cfg, Flavor::Full, &lib, &opts).unwrap();
            let auto = synthesize(&cfg, Flavor::Auto, &lib, &opts).unwrap();
            let manual = synthesize(&cfg, Flavor::Manual, &lib, &opts).unwrap();
            // Auto removes the configuration memories: sequential area drops
            // substantially but not to zero (the staging datapath stays).
            assert!(
                auto.area.sequential < 0.75 * full.area.sequential,
                "{}: auto seq {} vs full seq {}",
                cfg.tag(),
                auto.area.sequential,
                full.area.sequential
            );
            assert!(auto.area.sequential > 0.2 * full.area.sequential);
            // Combinational area also shrinks.
            assert!(auto.area.combinational < full.area.combinational);
            // Manual never does worse than Auto.
            assert!(manual.area.total() <= auto.area.total() * 1.02);
        }
    }

    #[test]
    fn manual_gains_concentrate_in_uncached_mode() {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let gain = |cfg: &MemoryConfig| {
            let auto = synthesize(cfg, Flavor::Auto, &lib, &opts).unwrap();
            let manual = synthesize(cfg, Flavor::Manual, &lib, &opts).unwrap();
            (auto.area.total() - manual.area.total()) / auto.area.total()
        };
        let cached_gain = gain(&MemoryConfig::cached());
        let uncached_gain = gain(&MemoryConfig::uncached());
        assert!(
            uncached_gain > cached_gain,
            "uncached {uncached_gain:.3} vs cached {cached_gain:.3}"
        );
        assert!(uncached_gain > 0.02, "uncached gain {uncached_gain:.3}");
    }
}
