//! # smpctrl
//!
//! A model of the Smart Memories protocol controller (PCtrl) — the realistic
//! table-driven controller the paper's Fig. 9 experiment measures.
//!
//! Smart Memories is a chip multiprocessor whose memory system is
//! programmable enough to support shared-memory, streaming, and
//! transactional models on one substrate. Its cache/protocol controller
//! (PCtrl, 14 % of the chip) moves data between local memories over four
//! data pipes, sequenced by microcode stored in configuration memories
//! inside its Dispatch unit.
//!
//! This crate rebuilds that architecture on the `synthir` controller IR:
//!
//! * [`config`] — the user-settable memory configuration (mode, line size,
//!   access width) that selects the microprogram;
//! * [`program`] — the Dispatch microprograms: a long multi-phase cache
//!   protocol sequence for [`config::MemoryMode::Cached`], a short transfer
//!   loop for [`config::MemoryMode::Uncached`];
//! * [`rtl`] — the PCtrl dispatch module: microcode store (flexible or
//!   bound), µPC sequencing, registered one-hot pipe-select and command
//!   fields, per-pipe command decode, arbitration checking, and request
//!   staging datapath;
//! * [`flows`] — the three synthesis flavours of Fig. 9: **Full** (flexible,
//!   runtime-programmable), **Auto** (tables bound, ordinary partial
//!   evaluation), and **Manual** (bound plus the generator-derived FSM and
//!   value-set annotations that stand in for hand optimization).
//!
//! ## Example
//!
//! ```
//! use smpctrl::config::MemoryConfig;
//! use smpctrl::flows::{synthesize, Flavor};
//! use synthir_netlist::Library;
//! use synthir_synth::SynthOptions;
//!
//! let cfg = MemoryConfig::uncached();
//! let lib = Library::vt90();
//! let opts = SynthOptions::default();
//! let full = synthesize(&cfg, Flavor::Full, &lib, &opts).unwrap();
//! let auto = synthesize(&cfg, Flavor::Auto, &lib, &opts).unwrap();
//! assert!(auto.area.total() < full.area.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flows;
pub mod program;
pub mod rtl;

pub use config::{AccessWidth, LineSize, MemoryConfig, MemoryMode};
pub use flows::{synthesize, Flavor};
