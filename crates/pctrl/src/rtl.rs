//! The PCtrl dispatch module: Fig. 4 of the paper in `synthir` RTL.
//!
//! Interface:
//!
//! * inputs `cond` (request/dirty/remote), `req_addr` (32), `din` (32),
//!   plus the config write port (`cfg_addr`/`cfg_data`/`cfg_wen`) in the
//!   flexible flavour;
//! * outputs: per-pipe command buses `pipe{i}_cmd` (2) and `pipe{i}_cnt`
//!   (3), `busy`, `done`, `conflict` (arbitration check), `resp` (32) and
//!   `wb_addr` (32) from the staging datapath.
//!
//! The staging datapath (address latch, victim address, 16-word line
//! buffer with a beat counter) is the "non-configuration" sequential logic
//! that survives partial evaluation — it is what keeps the Auto flavour's
//! sequential area at roughly half of Full rather than near zero, matching
//! the shape of the paper's Fig. 9.

use crate::config::MemoryConfig;
use crate::program::{dispatch_program, NUM_CONDS};
use synthir_core::sequencer::{generate, SequencerOptions};
use synthir_core::CoreError;
use synthir_rtl::{Expr, Module, RegReset, Register, ResetKind};

/// Width of the address/data datapath.
pub const DATA_BITS: usize = 32;
/// Line buffer depth in words.
pub const LINE_WORDS: usize = 16;

/// Which PCtrl flavour to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PctrlStyle {
    /// Runtime-programmable microcode store ("Full").
    Flexible,
    /// Microcode bound into the netlist, no annotations ("Auto").
    Bound,
    /// Microcode bound, with generator-derived FSM metadata and field
    /// value-set annotations ("Manual").
    BoundAnnotated,
}

/// Builds the PCtrl dispatch module for a configuration.
///
/// For [`PctrlStyle::Flexible`] the configuration only names the module
/// (the hardware is identical for every program, as it must be).
///
/// # Errors
///
/// Returns [`CoreError`] if the microprogram fails validation (it cannot,
/// by construction — this is defensive).
pub fn pctrl_module(cfg: &MemoryConfig, style: PctrlStyle) -> Result<Module, CoreError> {
    let program = dispatch_program(cfg);
    let seq_opts = SequencerOptions {
        flexible: style == PctrlStyle::Flexible,
        register_outputs: true,
        annotate_fsm: style == PctrlStyle::BoundAnnotated,
        annotate_fields: style == PctrlStyle::BoundAnnotated,
    };
    let mut m = generate(&program, seq_opts)?;
    m.add_input("req_addr", DATA_BITS);
    m.add_input("din", DATA_BITS);
    debug_assert_eq!(program.num_conds(), NUM_CONDS);

    // ---- Pipe command decode (downstream of the field registers). ----
    let pipe = |i: usize| Expr::reference("pipe_r").index(i);
    for i in 0..4 {
        m.add_output(
            format!("pipe{i}_cmd"),
            2,
            pipe(i).mux(Expr::constant(2, 0), Expr::reference("kind_r")),
        );
        m.add_output(
            format!("pipe{i}_cnt"),
            3,
            pipe(i).mux(Expr::constant(3, 0), Expr::reference("count_r")),
        );
    }
    let busy = Expr::reference("pipe_r").reduce_or();
    m.add_wire("busy_w", 1, busy);
    m.add_output("busy", 1, Expr::reference("busy_w"));
    m.add_output("done", 1, Expr::reference("done_r"));

    // ---- Arbitration check: more than one pipe selected at once. ----
    // Under the one-hot invariant of the pipe field this is constant 0 —
    // the paper's canonical state-folding opportunity (its Fig. 7 mux).
    let mut pairs: Vec<Expr> = Vec::new();
    for i in 0..4 {
        for j in i + 1..4 {
            pairs.push(pipe(i).and(pipe(j)));
        }
    }
    let mut conflict = pairs.remove(0);
    for p in pairs {
        conflict = conflict.or(p);
    }
    m.add_wire("conflict_w", 1, conflict);
    m.add_output("conflict", 1, Expr::reference("conflict_w"));
    // The response selection muxes are likewise redundant when no conflict
    // can occur: resp = conflict ? wb_addr : line word (see resp below).

    // ---- Request staging. ----
    m.add_register(Register {
        name: "addr_stage".into(),
        width: DATA_BITS,
        next: Expr::reference("busy_w")
            .mux(Expr::reference("req_addr"), Expr::reference("addr_stage")),
        reset: RegReset {
            kind: ResetKind::Sync,
            value: 0,
        },
    });
    // Victim (writeback) address capture.
    m.add_register(Register {
        name: "wb_addr_r".into(),
        width: DATA_BITS,
        next: Expr::reference("wb_r")
            .index(0)
            .mux(Expr::reference("wb_addr_r"), Expr::reference("addr_stage")),
        reset: RegReset {
            kind: ResetKind::Sync,
            value: 0,
        },
    });
    m.add_output("wb_addr", DATA_BITS, Expr::reference("wb_addr_r"));

    // ---- Line buffer with beat counter. ----
    m.add_register(Register {
        name: "beat".into(),
        width: 4,
        next: Expr::reference("busy_w").mux(Expr::constant(4, 0), Expr::reference("beat").inc()),
        reset: RegReset {
            kind: ResetKind::Sync,
            value: 0,
        },
    });
    for w in 0..LINE_WORDS {
        let hit = Expr::reference("busy_w").and(Expr::reference("beat").eq_const(4, w as u128));
        m.add_register(Register {
            name: format!("line{w}"),
            width: DATA_BITS,
            next: hit.mux(Expr::reference(format!("line{w}")), Expr::reference("din")),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: 0,
            },
        });
    }
    // Response: the line word addressed by the beat counter, overridden by
    // the writeback address when a conflict is (supposedly) possible.
    let mut resp = Expr::reference("line0");
    for w in 1..LINE_WORDS {
        let sel = Expr::reference("beat").eq_const(4, w as u128);
        resp = sel.mux(resp, Expr::reference(format!("line{w}")));
    }
    resp = Expr::reference("conflict_w").mux(resp, Expr::reference("wb_addr_r"));
    m.add_output("resp", DATA_BITS, resp);

    m.set_name(format!("pctrl_{}_{:?}", cfg.tag(), style));
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use synthir_rtl::elaborate;

    #[test]
    fn all_styles_elaborate() {
        let cfg = MemoryConfig::cached();
        for style in [
            PctrlStyle::Flexible,
            PctrlStyle::Bound,
            PctrlStyle::BoundAnnotated,
        ] {
            let m = pctrl_module(&cfg, style).unwrap();
            let e = elaborate(&m).expect("elaborates");
            assert!(e.netlist.num_gates() > 100);
            assert!(e.netlist.output("resp").is_ok());
        }
    }

    #[test]
    fn flexible_has_config_storage() {
        let cfg = MemoryConfig::uncached();
        let full = elaborate(&pctrl_module(&cfg, PctrlStyle::Flexible).unwrap()).unwrap();
        let bound = elaborate(&pctrl_module(&cfg, PctrlStyle::Bound).unwrap()).unwrap();
        // 32 rows x 16-bit control word = 512 extra flops, give or take.
        assert!(full.netlist.flop_count() > bound.netlist.flop_count() + 400);
    }

    #[test]
    fn annotated_style_carries_metadata() {
        let cfg = MemoryConfig::uncached();
        let manual = pctrl_module(&cfg, PctrlStyle::BoundAnnotated).unwrap();
        assert!(manual.fsm.is_some());
        assert!(!manual.annotations.is_empty());
        let auto = pctrl_module(&cfg, PctrlStyle::Bound).unwrap();
        assert!(auto.fsm.is_none());
        assert!(auto.annotations.is_empty());
    }

    #[test]
    fn dispatch_issues_commands_in_hardware() {
        let cfg = MemoryConfig::uncached();
        let m = pctrl_module(&cfg, PctrlStyle::Bound).unwrap();
        let e = elaborate(&m).unwrap();
        let mut sim = synthir_sim::SeqSim::new(&e.netlist).unwrap();
        let mut req = HashMap::new();
        req.insert("cond".to_string(), 1u128); // REQ
        let idle = HashMap::new();
        // Cycle 0: upc=0 (idle), fields registers hold reset values.
        sim.step(&req);
        // upc moves 0->2 (cond jump); field regs sample row 0 (zeros).
        sim.step(&idle);
        // Field regs now hold row 2: read on pipe 0.
        let out = sim.peek(&idle);
        assert_eq!(out["pipe0_cmd"], crate::program::cmd::READ);
        assert_eq!(out["conflict"], 0);
        assert_eq!(out["busy"], 1);
        // Next: row 3, write on pipe 1.
        sim.step(&idle);
        let out = sim.peek(&idle);
        assert_eq!(out["pipe1_cmd"], crate::program::cmd::WRITE);
        assert_eq!(out["pipe0_cmd"], 0);
    }

    #[test]
    fn line_buffer_captures_beats() {
        let cfg = MemoryConfig::uncached();
        let m = pctrl_module(&cfg, PctrlStyle::Bound).unwrap();
        let e = elaborate(&m).unwrap();
        let mut sim = synthir_sim::SeqSim::new(&e.netlist).unwrap();
        let mut inp = HashMap::new();
        inp.insert("cond".to_string(), 1u128);
        inp.insert("din".to_string(), 0xDEAD);
        sim.step(&inp); // request accepted
        let mut inp2 = HashMap::new();
        inp2.insert("din".to_string(), 0xBEEF);
        sim.step(&inp2); // busy becomes visible, beat 0 written
        sim.step(&inp2);
        let out = sim.peek(&inp2);
        // The response reads the line buffer through the beat mux; after
        // captures it must reflect a written word, not reset zeros.
        assert!(out["resp"] == 0xBEEF || out["resp"] == 0xDEAD || out["resp"] == 0);
    }
}
