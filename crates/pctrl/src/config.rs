//! User-settable memory configuration.
//!
//! "The precise timing of each transfer depends on user-settable cache line
//! size, as well as the access width to the caches (which can be single or
//! double words)." — the paper, §II-C.

/// The memory model the PCtrl implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// Multiprocessor cache-coherent operation: line fills, writebacks,
    /// interventions.
    Cached,
    /// Direct uncached access: single transfers, no coherence traffic.
    Uncached,
}

/// Cache line size in words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineSize {
    /// Four-word lines.
    Words4,
    /// Eight-word lines.
    Words8,
}

impl LineSize {
    /// Number of words per line.
    pub fn words(self) -> usize {
        match self {
            LineSize::Words4 => 4,
            LineSize::Words8 => 8,
        }
    }
}

/// Access width to the caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessWidth {
    /// Single-word accesses.
    Single,
    /// Double-word accesses.
    Double,
}

impl AccessWidth {
    /// Words moved per beat.
    pub fn words_per_beat(self) -> usize {
        match self {
            AccessWidth::Single => 1,
            AccessWidth::Double => 2,
        }
    }
}

/// A complete PCtrl configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemoryConfig {
    /// Operating mode.
    pub mode: MemoryMode,
    /// Cache line size.
    pub line: LineSize,
    /// Access width.
    pub access: AccessWidth,
}

impl MemoryConfig {
    /// The default cached configuration (8-word lines, double access).
    pub fn cached() -> Self {
        MemoryConfig {
            mode: MemoryMode::Cached,
            line: LineSize::Words8,
            access: AccessWidth::Double,
        }
    }

    /// The default uncached configuration.
    pub fn uncached() -> Self {
        MemoryConfig {
            mode: MemoryMode::Uncached,
            line: LineSize::Words4,
            access: AccessWidth::Single,
        }
    }

    /// Beats needed to move one line at this configuration.
    pub fn beats_per_line(&self) -> usize {
        self.line.words().div_ceil(self.access.words_per_beat())
    }

    /// A short identifier used in module names and reports.
    pub fn tag(&self) -> String {
        let mode = match self.mode {
            MemoryMode::Cached => "cached",
            MemoryMode::Uncached => "uncached",
        };
        format!(
            "{mode}_l{}a{}",
            self.line.words(),
            self.access.words_per_beat()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_per_line() {
        assert_eq!(MemoryConfig::cached().beats_per_line(), 4);
        assert_eq!(MemoryConfig::uncached().beats_per_line(), 4);
        let c = MemoryConfig {
            mode: MemoryMode::Cached,
            line: LineSize::Words8,
            access: AccessWidth::Single,
        };
        assert_eq!(c.beats_per_line(), 8);
    }

    #[test]
    fn tags_are_distinct() {
        assert_ne!(MemoryConfig::cached().tag(), MemoryConfig::uncached().tag());
    }
}
