//! The Dispatch unit's microprograms.
//!
//! "The Dispatch block issues line read and line write commands to four
//! data pipes [...]. These commands, along with appropriate timing, are
//! stored as microcode in a configuration memory inside the Dispatch unit
//! as a table that can be altered to program various cache configurations."
//! — the paper, §II-C.

use crate::config::{MemoryConfig, MemoryMode};
use synthir_core::microcode::{Field, MicroInstr, MicroProgram, MicrocodeFormat, NextCtl};

/// Command kinds carried by the `kind` field.
pub mod cmd {
    /// No command this cycle.
    pub const IDLE: u128 = 0;
    /// Line (or word) read from a pipe's local memory.
    pub const READ: u128 = 1;
    /// Line (or word) write to a pipe's local memory.
    pub const WRITE: u128 = 2;
    /// Synchronization / tag probe.
    pub const SYNC: u128 = 3;
}

/// Condition-input indices of the Dispatch sequencer.
pub mod cond {
    /// A request is pending.
    pub const REQ: usize = 0;
    /// The victim line is dirty (cached mode).
    pub const DIRTY: usize = 1;
    /// A remote intervention is required (cached mode).
    pub const REMOTE: usize = 2;
}

/// Number of condition inputs.
pub const NUM_CONDS: usize = 3;

/// Microcode table depth shared by every configuration (the hardware is
/// identical across programs; shorter programs pad with halt rows).
pub const TABLE_DEPTH: usize = 32;

/// The Dispatch microinstruction format.
pub fn dispatch_format() -> MicrocodeFormat {
    MicrocodeFormat::new(vec![
        Field::one_hot("pipe", 4),
        Field::binary("kind", 2),
        Field::binary("count", 3),
        Field::binary("wb", 1),
        Field::binary("done", 1),
    ])
}

/// Builds the Dispatch microprogram for a configuration.
///
/// Cached mode runs the full coherence sequence (lookup, optional
/// writeback, line fill across the four pipes, optional remote
/// intervention); uncached mode is a short single-transfer loop. Both are
/// padded to [`TABLE_DEPTH`] rows so the flexible hardware is identical.
pub fn dispatch_program(cfg: &MemoryConfig) -> MicroProgram {
    let beats = cfg.beats_per_line();
    let count = (beats - 1) as u128;
    let mut p = MicroProgram::new(
        format!("dispatch_{}", cfg.tag()),
        dispatch_format(),
        NUM_CONDS,
    );
    match cfg.mode {
        MemoryMode::Cached => build_cached(&mut p, count),
        MemoryMode::Uncached => build_uncached(&mut p, count),
    }
    // Pad to the common table depth. The padding rows are *not* zeros: as
    // in the real system, the configuration image carries the microcode of
    // the other operating modes in the rows the current mode never reaches.
    // A synthesis tool must honor those rows unless it can prove them
    // unreachable — which is exactly the "Manual" optimization of Fig. 9.
    let leftover = leftover_image();
    while p.instrs().len() < TABLE_DEPTH {
        let row = leftover[p.instrs().len() % leftover.len()].clone();
        p.push(row);
    }
    debug_assert!(p.validate().is_ok());
    p
}

/// Leftover microcode rows used to fill unreachable table entries: a
/// representative mix of commands from the cached-mode sequences.
fn leftover_image() -> Vec<MicroInstr> {
    use cmd::*;
    let mk = |pipe: u128, kind: u128, countv: u128, wb: u128, next: NextCtl| MicroInstr {
        fields: vec![pipe, kind, countv, wb, 0],
        next,
    };
    vec![
        mk(0b0001, READ, 3, 0, NextCtl::Jump(2)),
        mk(0b0010, WRITE, 7, 1, NextCtl::Jump(0)),
        mk(
            0b0100,
            SYNC,
            1,
            0,
            NextCtl::CondJump {
                cond: cond::DIRTY,
                target: 2,
            },
        ),
        mk(0b1000, READ, 5, 1, NextCtl::Jump(1)),
        mk(
            0b0001,
            WRITE,
            2,
            0,
            NextCtl::CondJump {
                cond: cond::REMOTE,
                target: 0,
            },
        ),
        mk(0b0010, SYNC, 6, 1, NextCtl::Jump(3)),
        mk(0b0100, READ, 4, 0, NextCtl::Jump(2)),
        mk(0b1000, WRITE, 1, 0, NextCtl::Halt),
    ]
}

fn build_cached(p: &mut MicroProgram, count: u128) {
    use cmd::*;
    use cond::*;
    // 0-1: idle loop waiting for a request.
    p.must_emit(
        &[],
        NextCtl::CondJump {
            cond: REQ,
            target: 2,
        },
    );
    p.must_emit(&[], NextCtl::Jump(0));
    // 2: tag lookup probe on pipe 0.
    p.must_emit(&[("pipe", 0b0001), ("kind", SYNC)], NextCtl::Seq);
    // 3: dirty victim? go to the writeback phase (14).
    p.must_emit(
        &[],
        NextCtl::CondJump {
            cond: DIRTY,
            target: 14,
        },
    );
    // 4-7: line fill — read commands to each pipe with transfer timing.
    for i in 0..4 {
        p.must_emit(
            &[("pipe", 1 << i), ("kind", READ), ("count", count)],
            NextCtl::Seq,
        );
    }
    // 8-11: forward fill data — write commands to each pipe.
    for i in 0..4 {
        p.must_emit(
            &[("pipe", 1 << i), ("kind", WRITE), ("count", count)],
            NextCtl::Seq,
        );
    }
    // 12: signal completion; 13: back to idle.
    p.must_emit(&[("done", 1)], NextCtl::Seq);
    p.must_emit(&[], NextCtl::Jump(0));
    // 14-17: writeback reads (victim line out of the cache).
    for i in 0..4 {
        p.must_emit(
            &[
                ("pipe", 1 << i),
                ("kind", READ),
                ("count", count),
                ("wb", 1),
            ],
            NextCtl::Seq,
        );
    }
    // 18-21: writeback writes (victim line to memory).
    for i in 0..4 {
        p.must_emit(
            &[
                ("pipe", 1 << i),
                ("kind", WRITE),
                ("count", count),
                ("wb", 1),
            ],
            NextCtl::Seq,
        );
    }
    // 22: sync after writeback.
    p.must_emit(&[("pipe", 0b0001), ("kind", SYNC)], NextCtl::Seq);
    // 23: remote intervention?
    p.must_emit(
        &[],
        NextCtl::CondJump {
            cond: REMOTE,
            target: 25,
        },
    );
    // 24: resume the fill.
    p.must_emit(&[], NextCtl::Jump(4));
    // 25: intervention probe on the remote pipe; 26: resume fill.
    p.must_emit(&[("pipe", 0b1000), ("kind", SYNC)], NextCtl::Seq);
    p.must_emit(&[], NextCtl::Jump(4));
}

fn build_uncached(p: &mut MicroProgram, count: u128) {
    use cmd::*;
    use cond::*;
    // 0-1: idle loop.
    p.must_emit(
        &[],
        NextCtl::CondJump {
            cond: REQ,
            target: 2,
        },
    );
    p.must_emit(&[], NextCtl::Jump(0));
    // 2: single read on pipe 0.
    p.must_emit(
        &[("pipe", 0b0001), ("kind", READ), ("count", count)],
        NextCtl::Seq,
    );
    // 3: single write on pipe 1 (to the requester's tile).
    p.must_emit(
        &[("pipe", 0b0010), ("kind", WRITE), ("count", count)],
        NextCtl::Seq,
    );
    // 4: done; 5: back to idle.
    p.must_emit(&[("done", 1)], NextCtl::Seq);
    p.must_emit(&[], NextCtl::Jump(0));
}

/// Number of microinstructions actually used (before padding) — i.e. the
/// number of reachable µPC states of the configuration.
pub fn used_rows(cfg: &MemoryConfig) -> usize {
    match cfg.mode {
        MemoryMode::Cached => 27,
        MemoryMode::Uncached => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    #[test]
    fn programs_validate_and_pad() {
        for cfg in [MemoryConfig::cached(), MemoryConfig::uncached()] {
            let p = dispatch_program(&cfg);
            p.validate().unwrap();
            assert_eq!(p.instrs().len(), TABLE_DEPTH);
            assert_eq!(p.upc_bits(), 5);
        }
    }

    #[test]
    fn cached_uses_most_rows_uncached_few() {
        // This asymmetry is what gives the Manual flow its Fig. 9 gains.
        assert!(used_rows(&MemoryConfig::cached()) > 24);
        assert!(used_rows(&MemoryConfig::uncached()) < 8);
    }

    #[test]
    fn cached_sequence_performs_fill() {
        let p = dispatch_program(&MemoryConfig::cached());
        // With a request and no dirty/remote, cycles 4..8 issue reads to all
        // four pipes in turn.
        let conds: Vec<u64> = vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let trace = p.simulate(&conds, 13);
        let pipes_used: Vec<u128> = trace[3..7].iter().map(|t| t[0]).collect();
        assert_eq!(pipes_used, vec![0b0001, 0b0010, 0b0100, 0b1000]);
        // Done asserted at the end of the fill.
        assert_eq!(trace[11][4], 1);
    }

    #[test]
    fn dirty_path_takes_writeback_detour() {
        let p = dispatch_program(&MemoryConfig::cached());
        // req on cycle 0, dirty on cycle 3 (at the dirty test).
        let mut conds = vec![0u64; 32];
        conds[0] = 1 << super::cond::REQ;
        conds[2] = 1 << super::cond::DIRTY;
        let trace = p.simulate(&conds, 32);
        // After idle(0) -> lookup(2) -> dirty test(3), cycle 3 must be the
        // first writeback read (wb field set).
        assert_eq!(trace[3][3], 1, "wb flag on writeback path");
    }

    #[test]
    fn uncached_roundtrip() {
        let p = dispatch_program(&MemoryConfig::uncached());
        let mut conds = vec![0u64; 8];
        conds[0] = 1;
        let trace = p.simulate(&conds, 8);
        // Path: idle(0) -> read(2) -> write(3) -> done(4) -> jump(5) -> idle.
        assert_eq!(trace[1][1], cmd::READ);
        assert_eq!(trace[2][1], cmd::WRITE);
        assert_eq!(trace[3][4], 1, "done");
        // Back in the idle loop afterwards.
        assert_eq!(trace[5][0], 0);
    }

    #[test]
    fn timing_tracks_configuration() {
        use crate::config::{AccessWidth, LineSize, MemoryMode};
        let slow = MemoryConfig {
            mode: MemoryMode::Cached,
            line: LineSize::Words8,
            access: AccessWidth::Single,
        };
        let fast = MemoryConfig {
            mode: MemoryMode::Cached,
            line: LineSize::Words8,
            access: AccessWidth::Double,
        };
        let ps = dispatch_program(&slow);
        let pf = dispatch_program(&fast);
        // The count field (beats-1) differs: 7 vs 3.
        assert_eq!(ps.instrs()[4].fields[2], 7);
        assert_eq!(pf.instrs()[4].fields[2], 3);
    }
}
