//! AIG → Netlist conversion.
//!
//! The lowering is polarity-aware: an AND node whose consumers mostly read
//! the complemented edge becomes a `Nand2` (no inverter), and a node whose
//! fanins are both complemented becomes a `Nor2`/`Or2` — so the all-AND
//! normal form does not cost inverter cells or hurt technology mapping on
//! the way back to gates.

use crate::graph::{Aig, AigLit, AigNode, FxMap};
use synthir_netlist::{GateKind, NetId, Netlist, ResetKind};

/// The result of lowering an AIG back to a gate-level netlist.
#[derive(Clone, Debug)]
pub struct NetlistExport {
    /// The exported netlist: `And2`/`Inv` gates, constant sources, and
    /// `Dff`s with their original reset flavour and init value.
    pub netlist: Netlist,
    /// A net for every literal the export materialized — both phases where
    /// an inverter exists. Callers remap annotations through this.
    pub nets: FxMap<AigLit, NetId>,
}

impl NetlistExport {
    /// The net carrying a literal, if it was materialized.
    pub fn net_of(&self, l: AigLit) -> Option<NetId> {
        self.nets.get(&l).copied()
    }
}

/// Lowers an AIG to a netlist of `And2`/`Inv` gates (plus constants and
/// flops), emitting only nodes live toward the output ports — the
/// dangling-node sweep is implicit. Port names/widths/order and flop
/// reset/init semantics are preserved exactly.
///
/// `keep` lists extra literals that must receive nets even if nothing
/// observable reads them (FSM state vectors and value-set annotation
/// groups ride through here).
pub fn to_netlist(aig: &Aig, keep: &[AigLit]) -> NetlistExport {
    let live = aig.live_marks(keep);
    let mut nl = Netlist::new(aig.name());
    let mut exp = Exporter {
        node_net: vec![None; aig.node_count()],
        inv_net: vec![None; aig.node_count()],
        nets: FxMap::default(),
    };
    // Which polarity of each node do its consumers actually read? Emitting
    // the majority polarity directly (And2 vs Nand2, Nor2 vs Or2) keeps
    // inverters off the high-fanout side.
    let mut compl_uses = vec![0usize; aig.node_count()];
    let mut plain_uses = vec![0usize; aig.node_count()];
    {
        let mut count = |l: AigLit| {
            if l.is_complemented() {
                compl_uses[l.node() as usize] += 1;
            } else {
                plain_uses[l.node() as usize] += 1;
            }
        };
        for (i, n) in aig.nodes().iter().enumerate() {
            if let AigNode::And(a, b) = *n {
                if live[i] {
                    count(a);
                    count(b);
                }
            }
        }
        for l in aig.latches() {
            if live[l.output as usize] {
                count(l.next);
                count(l.reset_lit);
            }
        }
        for p in aig.output_ports() {
            for &l in &p.lits {
                count(l);
            }
        }
        for &l in keep {
            count(l);
        }
    }
    // MUX/XOR reconstruction: `!((s & d1') & ... )` — concretely, a node
    // `w = !(s & d1) & !(!s & d0)` whose two AND children exist only to
    // feed it — denotes `!w = s ? d1 : d0`. The library's `Mux2`/`Xor2`
    // cells are cheaper than the three 2-input gates the generic lowering
    // would emit, and technology mapping cannot re-derive them. Roots are
    // planned before their children (reverse index order) so chained
    // patterns never absorb a node that another pattern still reads.
    struct MuxPlan {
        sel: AigLit,
        d0: AigLit,
        d1: AigLit,
    }
    let mut plan: Vec<Option<MuxPlan>> = (0..aig.node_count()).map(|_| None).collect();
    let mut emitted = live.clone();
    let single_compl_use = |i: usize| plain_uses[i] == 0 && compl_uses[i] == 1;
    for i in (0..aig.node_count()).rev() {
        if !emitted[i] {
            continue;
        }
        let AigNode::And(x, y) = aig.nodes()[i] else {
            continue;
        };
        if !x.is_complemented() || !y.is_complemented() || x.node() == y.node() {
            continue;
        }
        let (u, v) = (x.node() as usize, y.node() as usize);
        let (AigNode::And(p, q), AigNode::And(r, t)) = (aig.nodes()[u], aig.nodes()[v]) else {
            continue;
        };
        if !single_compl_use(u) || !single_compl_use(v) {
            continue;
        }
        let found = [(p, q), (q, p)].into_iter().find_map(|(s, d1)| {
            if !s == r {
                Some((s, d1, t))
            } else if !s == t {
                Some((s, d1, r))
            } else {
                None
            }
        });
        if let Some((sel, d1, d0)) = found {
            plan[i] = Some(MuxPlan { sel, d0, d1 });
            emitted[u] = false;
            emitted[v] = false;
        }
    }
    // n-ary tree clustering: a chain of single-fanout ANDs re-fuses into
    // one `And3`/`And4` (complement flavours become NAND/NOR/OR), which
    // restores the n-ary structure espresso-style SOP emission had before
    // the AIG normalized it to 2-input form — technology mapping patterns
    // against those shapes and the n-ary cells are cheaper than 2-input
    // chains. Roots before children again, so a chain is absorbed into
    // its outermost surviving node.
    let mut tree: Vec<Option<Vec<AigLit>>> = vec![None; aig.node_count()];
    let single_plain_use = |i: usize| plain_uses[i] == 1 && compl_uses[i] == 0;
    for i in (0..aig.node_count()).rev() {
        if !emitted[i] || plan[i].is_some() {
            continue;
        }
        let AigNode::And(a, b) = aig.nodes()[i] else {
            continue;
        };
        let mut leaves = vec![a, b];
        while leaves.len() < 4 {
            let pos = leaves.iter().position(|l| {
                let n = l.node() as usize;
                !l.is_complemented()
                    && matches!(aig.nodes()[n], AigNode::And(..))
                    && single_plain_use(n)
                    && emitted[n]
                    && plan[n].is_none()
            });
            let Some(p) = pos else { break };
            let child = leaves[p].node();
            let AigNode::And(x, y) = aig.nodes()[child as usize] else {
                unreachable!("position matched an AND");
            };
            leaves.swap_remove(p);
            leaves.push(x);
            leaves.push(y);
            emitted[child as usize] = false;
        }
        if leaves.len() > 2 {
            tree[i] = Some(leaves);
        }
    }
    // Input ports first: the interface is preserved wholesale, live or not.
    for p in aig.input_ports() {
        let nets = nl.add_input(&p.name, p.lits.len());
        for (&l, &n) in p.lits.iter().zip(&nets) {
            exp.node_net[l.node() as usize] = Some(n);
        }
    }
    // Latch output nets exist before any cone (they are sources).
    for l in aig.latches() {
        if live[l.output as usize] {
            exp.node_net[l.output as usize] = Some(nl.add_net());
        }
    }
    // AND nodes in index order: fanins always precede.
    for (i, n) in aig.nodes().iter().enumerate() {
        if let AigNode::And(a, b) = *n {
            if !emitted[i] {
                continue;
            }
            let want_compl = compl_uses[i] > plain_uses[i];
            if let Some(m) = &plan[i] {
                // `!node = sel ? d1 : d0`.
                let s = exp.lit_net(&mut nl, m.sel);
                let n0 = exp.lit_net(&mut nl, m.d0);
                if m.d1 == !m.d0 {
                    // Degenerates to sel ^ d0.
                    if want_compl {
                        exp.inv_net[i] = Some(nl.add_gate(GateKind::Xor2, &[s, n0]));
                    } else {
                        exp.node_net[i] = Some(nl.add_gate(GateKind::Xnor2, &[s, n0]));
                    }
                } else {
                    let n1 = exp.lit_net(&mut nl, m.d1);
                    exp.inv_net[i] = Some(nl.add_gate(GateKind::Mux2, &[s, n0, n1]));
                }
                continue;
            }
            if let Some(leaves) = &tree[i] {
                let all_compl = leaves.iter().all(|l| l.is_complemented());
                let ins: Vec<NetId> = leaves
                    .iter()
                    .map(|&l| exp.lit_net(&mut nl, if all_compl { !l } else { l }))
                    .collect();
                use GateKind::*;
                let kind = match (leaves.len(), all_compl, want_compl) {
                    (3, false, false) => And3,
                    (3, false, true) => Nand3,
                    (3, true, false) => Nor3,
                    (3, true, true) => Or3,
                    (4, false, false) => And4,
                    (4, false, true) => Nand4,
                    (4, true, false) => Nor4,
                    (4, true, true) => Or4,
                    _ => unreachable!("trees have 3 or 4 leaves"),
                };
                let out = nl.add_gate(kind, &ins);
                if want_compl {
                    exp.inv_net[i] = Some(out);
                } else {
                    exp.node_net[i] = Some(out);
                }
                continue;
            }
            // Both fanins complemented: a NOR/OR over the plain sides
            // avoids two inverters outright.
            let (kind, ins) = if a.is_complemented() && b.is_complemented() {
                let na = exp.lit_net(&mut nl, !a);
                let nb = exp.lit_net(&mut nl, !b);
                (
                    if want_compl {
                        GateKind::Or2
                    } else {
                        GateKind::Nor2
                    },
                    [na, nb],
                )
            } else {
                let na = exp.lit_net(&mut nl, a);
                let nb = exp.lit_net(&mut nl, b);
                (
                    if want_compl {
                        GateKind::Nand2
                    } else {
                        GateKind::And2
                    },
                    [na, nb],
                )
            };
            let out = nl.add_gate(kind, &ins);
            if want_compl {
                exp.inv_net[i] = Some(out);
            } else {
                exp.node_net[i] = Some(out);
            }
        }
    }
    // Flops: D (and reset) pins may need inverters created above.
    for l in aig.latches() {
        if !live[l.output as usize] {
            continue;
        }
        let q = exp.node_net[l.output as usize].expect("latch net pre-created");
        let d = exp.lit_net(&mut nl, l.next);
        let kind = GateKind::Dff {
            reset: l.reset,
            init: l.init,
        };
        let inputs: Vec<NetId> = match l.reset {
            ResetKind::None => vec![d],
            _ => vec![d, exp.lit_net(&mut nl, l.reset_lit)],
        };
        nl.attach_gate(kind, &inputs, q)
            .expect("latch net has no other driver");
    }
    for p in aig.output_ports() {
        let nets: Vec<NetId> = p.lits.iter().map(|&l| exp.lit_net(&mut nl, l)).collect();
        nl.add_output(&p.name, &nets);
    }
    // Materialize the kept literals and record every mapping.
    for &l in keep {
        exp.lit_net(&mut nl, l);
    }
    for (i, plain) in exp.node_net.iter().enumerate() {
        if let Some(n) = plain {
            exp.nets.insert(AigLit::new(i as u32, false), *n);
        }
        if let Some(n) = exp.inv_net[i] {
            exp.nets.insert(AigLit::new(i as u32, true), n);
        }
    }
    NetlistExport {
        netlist: nl,
        nets: exp.nets,
    }
}

struct Exporter {
    /// Net of each node's plain literal (when materialized).
    node_net: Vec<Option<NetId>>,
    /// Net of each node's complemented literal (when materialized).
    inv_net: Vec<Option<NetId>>,
    nets: FxMap<AigLit, NetId>,
}

impl Exporter {
    /// The net carrying a literal, creating constants and (memoized)
    /// inverters on demand. Either polarity may be the physically emitted
    /// gate; the other is derived through one inverter.
    fn lit_net(&mut self, nl: &mut Netlist, l: AigLit) -> NetId {
        if let Some(v) = l.as_constant() {
            let n = nl.constant(v);
            self.nets.insert(l, n);
            return n;
        }
        let node = l.node() as usize;
        let (want, other) = if l.is_complemented() {
            (&self.inv_net, &self.node_net)
        } else {
            (&self.node_net, &self.inv_net)
        };
        if let Some(n) = want[node] {
            return n;
        }
        let base = other[node]
            .unwrap_or_else(|| panic!("literal {l:?} has no net — not live and not kept"));
        let n = nl.add_gate(GateKind::Inv, &[base]);
        if l.is_complemented() {
            self.inv_net[node] = Some(n);
        } else {
            self.node_net[node] = Some(n);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_emits_ports_and_structure() {
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let y = g.and(a, b);
        g.add_output_port("y", &[!y]);
        let exp = to_netlist(&g, &[]);
        let nl = &exp.netlist;
        assert_eq!(nl.name(), "t");
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        // The output reads the complement, so a single NAND is emitted.
        assert_eq!(nl.num_gates(), 1);
        let g0 = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g0).kind, GateKind::Nand2);
        nl.validate().unwrap();
        assert!(exp.net_of(!y).is_some());
    }

    #[test]
    fn complemented_fanins_become_nor_or_or() {
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let nor = g.and(!a, !b);
        g.add_output_port("nor", &[nor]);
        let exp = to_netlist(&g, &[]);
        assert_eq!(exp.netlist.num_gates(), 1);
        let d = exp.netlist.driver(exp.netlist.output_nets()[0]).unwrap();
        assert_eq!(exp.netlist.gate(d).kind, GateKind::Nor2);

        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let or = !g.and(!a, !b);
        g.add_output_port("or", &[or]);
        let exp = to_netlist(&g, &[]);
        assert_eq!(exp.netlist.num_gates(), 1);
        let d = exp.netlist.driver(exp.netlist.output_nets()[0]).unwrap();
        assert_eq!(exp.netlist.gate(d).kind, GateKind::Or2);
    }

    #[test]
    fn dangling_nodes_are_swept() {
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let _dead = g.and(a, b);
        let keepme = g.and(!a, b);
        g.add_output_port("y", &[keepme]);
        let exp = to_netlist(&g, &[]);
        // !a and (!a & b): two gates; the dead AND is gone.
        assert_eq!(exp.netlist.num_gates(), 2);
        assert_eq!(exp.net_of(AigLit::new(_dead.node(), false)), None);
    }

    #[test]
    fn kept_literals_survive_without_observers() {
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let dead = g.and(a, b);
        g.add_output_port("y", &[a]);
        let exp = to_netlist(&g, &[dead]);
        assert!(exp.net_of(dead).is_some());
        assert_eq!(exp.netlist.num_gates(), 1);
    }

    #[test]
    fn latch_semantics_round_through() {
        use synthir_netlist::ResetKind;
        let mut g = Aig::new("t");
        let d = g.add_input_port("d", 1)[0];
        let rst = g.add_input_port("rst", 1)[0];
        let q = g.add_latch(ResetKind::Async, true);
        g.set_latch_next(q, !d, rst);
        g.add_output_port("q", &[q]);
        let exp = to_netlist(&g, &[]);
        let nl = &exp.netlist;
        assert_eq!(nl.flop_count(), 1);
        let (_, flop) = nl
            .gates()
            .find(|(_, g)| g.kind.is_sequential())
            .expect("flop exported");
        assert_eq!(
            flop.kind,
            GateKind::Dff {
                reset: ResetKind::Async,
                init: true
            }
        );
        assert_eq!(flop.inputs.len(), 2);
        nl.validate().unwrap();
    }
}
