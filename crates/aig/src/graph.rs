//! The And-Inverter Graph: literals, nodes, and hash-consed construction.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use synthir_netlist::ResetKind;

/// A multiply-fold hasher (FxHash-style) for the hot structural-hashing
/// table: the keys are two packed `u32`s, where SipHash's per-call setup
/// cost dominates. Not DoS-resistant — fine for compiler-internal maps.
#[derive(Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// An AIG literal: a node index plus a complement bit packed into a `u32`.
///
/// Literal `0` is constant false and literal `1` constant true (the
/// complemented edge to node 0). Negation is free — it flips the low bit —
/// which is what makes the AIG the cheapest IR to normalize: inverters and
/// all the NAND/NOR/XNOR/AOI gate flavours vanish into edge attributes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(pub(crate) u32);

impl AigLit {
    /// Constant false: the uncomplemented edge to node 0.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true: the complemented edge to node 0.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from a node index and a complement flag.
    pub fn new(node: u32, complemented: bool) -> AigLit {
        AigLit(node << 1 | u32::from(complemented))
    }

    /// The index of the node this literal points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// This literal with the complement bit set to `c`.
    pub fn with_complement(self, c: bool) -> AigLit {
        AigLit(self.0 & !1 | u32::from(c))
    }

    /// Whether this is one of the two constant literals.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    /// The constant value, if this is a constant literal.
    pub fn as_constant(self) -> Option<bool> {
        (self.node() == 0).then_some(self.is_complemented())
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl std::fmt::Debug for AigLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// One AIG node. Node 0 is always [`AigNode::Const0`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false source (node 0 only).
    Const0,
    /// A primary-input bit.
    Input,
    /// A latch (flop) output; the latch's next-state function and reset
    /// semantics live in the [`Latch`] entry this index points at.
    Latch(u32),
    /// The conjunction of two literals.
    And(AigLit, AigLit),
}

/// A sequential element: the AIG analogue of a netlist `Dff`, keeping the
/// reset flavour and init value intact so a round-trip through the AIG
/// preserves flop semantics exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latch {
    /// The node holding the latch's output.
    pub output: u32,
    /// Next-state function (the D pin), set via [`Aig::set_latch_next`]
    /// once the fanin cone exists (latch outputs may feed their own cone).
    pub next: AigLit,
    /// Reset behaviour, mirrored from the netlist flop.
    pub reset: ResetKind,
    /// The reset pin ([`AigLit::FALSE`] when `reset` is [`ResetKind::None`]).
    pub reset_lit: AigLit,
    /// Reset / power-up value.
    pub init: bool,
}

/// A named port: the bus structure a netlist round-trip must preserve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AigPort {
    /// Port name.
    pub name: String,
    /// The port's bits, LSB first. Input ports hold uncomplemented input
    /// node literals; output ports hold arbitrary literals.
    pub lits: Vec<AigLit>,
}

/// A structurally-hashed And-Inverter Graph.
///
/// Construction *is* optimization: [`Aig::and`] folds constants, applies
/// one- and two-level simplification rules (idempotence, contradiction,
/// subsumption, substitution, resolution), and hash-conses structurally
/// identical nodes, so the graph never contains two ANDs with the same
/// (normalized) fanins. Nodes live in a flat `Vec` in topological order —
/// every AND's fanins precede it — which makes downstream passes
/// (simulation, CNF encoding, rewriting, netlist export) single linear
/// sweeps with no traversal bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    strash: FxMap<(AigLit, AigLit), u32>,
    inputs: Vec<u32>,
    input_ports: Vec<AigPort>,
    output_ports: Vec<AigPort>,
    latches: Vec<Latch>,
}

impl Aig {
    /// Creates an empty AIG named `name` (containing only the constant
    /// node).
    pub fn new(name: impl Into<String>) -> Aig {
        Aig {
            name: name.into(),
            nodes: vec![AigNode::Const0],
            ..Default::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, index order (node 0 is the constant).
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Total node count (constant + inputs + latches + ANDs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes — the structural size measure.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// The primary-input nodes, creation order.
    pub fn input_nodes(&self) -> &[u32] {
        &self.inputs
    }

    /// Named input ports.
    pub fn input_ports(&self) -> &[AigPort] {
        &self.input_ports
    }

    /// Named output ports.
    pub fn output_ports(&self) -> &[AigPort] {
        &self.output_ports
    }

    /// The latches.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Creates a fresh primary-input bit outside any port (used by
    /// cone-local imports where seeded nets become free inputs).
    pub fn add_input(&mut self) -> AigLit {
        let id = self.push(AigNode::Input);
        self.inputs.push(id);
        AigLit::new(id, false)
    }

    /// Declares a named input port of `width` bits; returns its literals
    /// (LSB first).
    pub fn add_input_port(&mut self, name: impl Into<String>, width: usize) -> Vec<AigLit> {
        let lits: Vec<AigLit> = (0..width).map(|_| self.add_input()).collect();
        self.input_ports.push(AigPort {
            name: name.into(),
            lits: lits.clone(),
        });
        lits
    }

    /// Declares a named output port over existing literals (LSB first).
    pub fn add_output_port(&mut self, name: impl Into<String>, lits: &[AigLit]) {
        self.output_ports.push(AigPort {
            name: name.into(),
            lits: lits.to_vec(),
        });
    }

    /// Creates a latch with the given reset flavour and init value; the
    /// next-state and reset literals are wired later with
    /// [`Aig::set_latch_next`] (latch cones may be cyclic through the latch
    /// itself). Returns the latch's output literal.
    pub fn add_latch(&mut self, reset: ResetKind, init: bool) -> AigLit {
        let idx = self.latches.len() as u32;
        let id = self.push(AigNode::Latch(idx));
        self.latches.push(Latch {
            output: id,
            next: AigLit::FALSE,
            reset,
            reset_lit: AigLit::FALSE,
            init,
        });
        AigLit::new(id, false)
    }

    /// Wires a latch's next-state and reset literals.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not an uncomplemented latch literal.
    pub fn set_latch_next(&mut self, output: AigLit, next: AigLit, reset_lit: AigLit) {
        assert!(!output.is_complemented(), "latch output must be plain");
        let AigNode::Latch(idx) = self.nodes[output.node() as usize] else {
            panic!("set_latch_next on a non-latch node");
        };
        let l = &mut self.latches[idx as usize];
        l.next = next;
        l.reset_lit = reset_lit;
    }

    fn push(&mut self, n: AigNode) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        id
    }

    /// The conjunction of two literals, with constant folding, one- and
    /// two-level rewriting, and structural hashing applied at construction
    /// time — the AIG-native fusion of the netlist `const_fold` + `strash`
    /// passes.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Normalize operand order so permuted duplicates hash alike.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        // Level-one rules.
        if a == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(l) = self.two_level(a, b) {
            return l;
        }
        if let Some(&id) = self.strash.get(&(a, b)) {
            return AigLit::new(id, false);
        }
        let id = self.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        AigLit::new(id, false)
    }

    /// The fanins of a literal's node, if it is an AND.
    fn fanins(&self, l: AigLit) -> Option<(AigLit, AigLit)> {
        match self.nodes[l.node() as usize] {
            AigNode::And(x, y) => Some((x, y)),
            _ => None,
        }
    }

    /// Two-level simplification of `and(a, b)`: inspects the fanins of AND
    /// operands (one level below) for contradiction, idempotence,
    /// subsumption, substitution, and resolution — the rules that make the
    /// hash-consed AIG strictly stronger than gate-level structural
    /// hashing. Returns `Some` when the conjunction reduces.
    fn two_level(&mut self, a: AigLit, b: AigLit) -> Option<AigLit> {
        let fa = self.fanins(a);
        let fb = self.fanins(b);
        // One operand is a plain AND.
        for (and_lit, other) in [(a, b), (b, a)] {
            if and_lit.is_complemented() {
                continue;
            }
            if let Some((x, y)) = self.fanins(and_lit) {
                if other == !x || other == !y {
                    return Some(AigLit::FALSE); // contradiction
                }
                if other == x || other == y {
                    return Some(and_lit); // idempotence
                }
            }
        }
        // One operand is a complemented AND.
        for (nand_lit, other) in [(a, b), (b, a)] {
            if !nand_lit.is_complemented() {
                continue;
            }
            if let Some((x, y)) = self.fanins(nand_lit) {
                if other == !x || other == !y {
                    return Some(other); // subsumption
                }
                // Substitution: x & !(x & y) == x & !y.
                if other == x {
                    return Some(self.and(other, !y));
                }
                if other == y {
                    return Some(self.and(other, !x));
                }
            }
        }
        // Both plain ANDs: cross-fanin contradiction.
        if !a.is_complemented() && !b.is_complemented() {
            if let (Some((a0, a1)), Some((b0, b1))) = (fa, fb) {
                if a0 == !b0 || a0 == !b1 || a1 == !b0 || a1 == !b1 {
                    return Some(AigLit::FALSE);
                }
            }
        }
        // Plain AND times complemented AND (both orientations).
        for (p, q) in [(a, b), (b, a)] {
            if p.is_complemented() || !q.is_complemented() {
                continue;
            }
            if let (Some((p0, p1)), Some((q0, q1))) = (self.fanins(p), self.fanins(q)) {
                // Redundancy: (p0 & p1) & !(q0 & q1) == p0 & p1 when some
                // q fanin is the complement of some p fanin.
                if q0 == !p0 || q0 == !p1 || q1 == !p0 || q1 == !p1 {
                    return Some(p);
                }
                // Substitution: (p0 & p1) & !(p0 & y) == p0 & p1 & !y.
                if q0 == p0 || q0 == p1 {
                    return Some(self.and(p, !q1));
                }
                if q1 == p0 || q1 == p1 {
                    return Some(self.and(p, !q0));
                }
            }
        }
        // Both complemented ANDs: resolution.
        if a.is_complemented() && b.is_complemented() {
            if let (Some((a0, a1)), Some((b0, b1))) = (fa, fb) {
                if (a0 == b0 && a1 == !b1) || (a0 == b1 && a1 == !b0) {
                    return Some(!a0);
                }
                if (a1 == b1 && a0 == !b0) || (a1 == b0 && a0 == !b1) {
                    return Some(!a1);
                }
            }
        }
        None
    }

    /// `a | b` (via De Morgan).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// `a ^ b` (three ANDs at most, fewer after folding).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let l = self.and(a, !b);
        let r = self.and(!a, b);
        self.or(l, r)
    }

    /// `sel ? t : e`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let th = self.and(sel, t);
        let el = self.and(!sel, e);
        self.or(th, el)
    }

    /// The conjunction of a slice (true for the empty slice).
    pub fn and_all(&mut self, lits: &[AigLit]) -> AigLit {
        lits.iter().fold(AigLit::TRUE, |acc, &l| self.and(acc, l))
    }

    /// The disjunction of a slice (false for the empty slice).
    pub fn or_all(&mut self, lits: &[AigLit]) -> AigLit {
        lits.iter().fold(AigLit::FALSE, |acc, &l| self.or(acc, l))
    }

    /// The constant literal for `v`.
    pub fn constant(&self, v: bool) -> AigLit {
        if v {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }

    /// Bit-parallel simulation: evaluates every node over 64 patterns at
    /// once. `source` supplies the word for each input/latch node (by node
    /// index); returns one word per node, index-aligned with
    /// [`Aig::nodes`].
    pub fn simulate(&self, mut source: impl FnMut(u32) -> u64) -> Vec<u64> {
        let mut vals = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            vals[i] = match *n {
                AigNode::Const0 => 0,
                AigNode::Input | AigNode::Latch(_) => source(i as u32),
                AigNode::And(a, b) => lit_word(&vals, a) & lit_word(&vals, b),
            };
        }
        vals
    }

    /// Reads a literal out of a [`Aig::simulate`] result.
    pub fn lit_value(vals: &[u64], l: AigLit) -> u64 {
        lit_word(vals, l)
    }

    /// Marks the nodes reachable from `roots` through AND fanins (latches
    /// and inputs are sources; latch *cones* are not followed — pass latch
    /// next/reset literals as extra roots for a sequential sweep).
    pub fn reachable(&self, roots: &[AigLit]) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots {
            if !mark[r.node() as usize] {
                mark[r.node() as usize] = true;
                stack.push(r.node());
            }
        }
        while let Some(n) = stack.pop() {
            if let AigNode::And(a, b) = self.nodes[n as usize] {
                for f in [a, b] {
                    if !mark[f.node() as usize] {
                        mark[f.node() as usize] = true;
                        stack.push(f.node());
                    }
                }
            }
        }
        mark
    }

    /// The roots every sequential sweep must keep alive: all output-port
    /// literals plus every latch's next-state and reset literals.
    pub fn sequential_roots(&self) -> Vec<AigLit> {
        let mut roots: Vec<AigLit> = self
            .output_ports
            .iter()
            .flat_map(|p| p.lits.iter().copied())
            .collect();
        for l in &self.latches {
            roots.push(AigLit::new(l.output, false));
            roots.push(l.next);
            roots.push(l.reset_lit);
        }
        roots
    }

    /// Liveness marks: the nodes transitively observable from the output
    /// ports (plus `extra` roots), where reaching a latch pulls in its
    /// next-state and reset cones — the fixpoint a dangling-node sweep
    /// keeps. Dead latches (observing nothing and observed by nothing) are
    /// *not* marked, mirroring `Netlist::sweep`.
    pub fn live_marks(&self, extra: &[AigLit]) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        let seed = |mark: &mut Vec<bool>, stack: &mut Vec<u32>, l: AigLit| {
            if !mark[l.node() as usize] {
                mark[l.node() as usize] = true;
                stack.push(l.node());
            }
        };
        for p in &self.output_ports {
            for &l in &p.lits {
                seed(&mut mark, &mut stack, l);
            }
        }
        for &l in extra {
            seed(&mut mark, &mut stack, l);
        }
        while let Some(n) = stack.pop() {
            match self.nodes[n as usize] {
                AigNode::And(a, b) => {
                    for f in [a, b] {
                        seed(&mut mark, &mut stack, f);
                    }
                }
                AigNode::Latch(idx) => {
                    let l = self.latches[idx as usize];
                    seed(&mut mark, &mut stack, l.next);
                    seed(&mut mark, &mut stack, l.reset_lit);
                }
                AigNode::Const0 | AigNode::Input => {}
            }
        }
        mark
    }
}

/// The 64-pattern word of a literal given per-node simulation values.
fn lit_word(vals: &[u64], l: AigLit) -> u64 {
    let v = vals[l.node() as usize];
    if l.is_complemented() {
        !v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = AigLit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complemented());
        assert_eq!((!l).node(), 5);
        assert!(!(!l).is_complemented());
        assert_eq!(AigLit::FALSE.as_constant(), Some(false));
        assert_eq!(AigLit::TRUE.as_constant(), Some(true));
        assert_eq!(l.as_constant(), None);
        assert_eq!(!AigLit::FALSE, AigLit::TRUE);
    }

    #[test]
    fn constant_folding_at_construction() {
        let mut g = Aig::new("t");
        let a = g.add_input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.and_count(), 0);
    }

    #[test]
    fn structural_hashing_dedups_permutations() {
        let mut g = Aig::new("t");
        let a = g.add_input();
        let b = g.add_input();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    /// Every construction rule must be functionally sound: compare
    /// `and(a, b)` against the brute-force conjunction over all input
    /// minterms, for every pair of literals in a randomly grown graph.
    #[test]
    fn construction_rules_are_sound() {
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let mut g = Aig::new("t");
            let inputs: Vec<AigLit> = (0..4).map(|_| g.add_input()).collect();
            // Patterns: input i gets the standard truth-table word.
            let masks = [
                0xAAAA_AAAA_AAAA_AAAAu64,
                0xCCCC_CCCC_CCCC_CCCC,
                0xF0F0_F0F0_F0F0_F0F0,
                0xFF00_FF00_FF00_FF00,
            ];
            let mut lits: Vec<AigLit> = vec![AigLit::FALSE, AigLit::TRUE];
            lits.extend(&inputs);
            // Grow a random graph, checking soundness of every and().
            for _ in 0..60 {
                let a = lits[(rng() % lits.len() as u64) as usize];
                let b = lits[(rng() % lits.len() as u64) as usize];
                let (a, b) = (
                    a.with_complement(a.is_complemented() ^ (rng() & 1 != 0)),
                    b.with_complement(b.is_complemented() ^ (rng() & 1 != 0)),
                );
                let y = g.and(a, b);
                let vals = g.simulate(|n| {
                    let i = g.input_nodes().iter().position(|&x| x == n).unwrap();
                    masks[i]
                });
                let got = Aig::lit_value(&vals, y);
                let want = Aig::lit_value(&vals, a) & Aig::lit_value(&vals, b);
                assert_eq!(got, want, "round {round}: and({a:?}, {b:?}) = {y:?}");
                lits.push(y);
            }
        }
    }

    #[test]
    fn two_level_rules_reduce() {
        let mut g = Aig::new("t");
        let a = g.add_input();
        let b = g.add_input();
        let ab = g.and(a, b);
        // Idempotence: (a & b) & a == a & b.
        assert_eq!(g.and(ab, a), ab);
        // Contradiction: (a & b) & !a == 0.
        assert_eq!(g.and(ab, !a), AigLit::FALSE);
        // Subsumption: !(a & b) & !a == !a.
        assert_eq!(g.and(!ab, !a), !a);
        // Substitution: !(a & b) & a == a & !b.
        let anb = g.and(a, !b);
        assert_eq!(g.and(!ab, a), anb);
        // Resolution: !(a & b) & !(a & !b) == !a.
        let an_b = g.and(a, !b);
        assert_eq!(g.and(!ab, !an_b), !a);
    }

    #[test]
    fn xor_mux_or_semantics() {
        let mut g = Aig::new("t");
        let a = g.add_input();
        let b = g.add_input();
        let s = g.add_input();
        let o = g.or(a, b);
        let x = g.xor(a, b);
        let m = g.mux(s, a, b);
        let masks = [
            0xAAAA_AAAA_AAAA_AAAAu64,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
        ];
        let vals = g.simulate(|n| {
            let i = g.input_nodes().iter().position(|&x| x == n).unwrap();
            masks[i]
        });
        assert_eq!(Aig::lit_value(&vals, o), masks[0] | masks[1]);
        assert_eq!(Aig::lit_value(&vals, x), masks[0] ^ masks[1]);
        assert_eq!(
            Aig::lit_value(&vals, m),
            masks[2] & masks[0] | !masks[2] & masks[1]
        );
    }

    #[test]
    fn latches_round_their_metadata() {
        let mut g = Aig::new("t");
        let d = g.add_input();
        let rst = g.add_input();
        let q = g.add_latch(ResetKind::Sync, true);
        g.set_latch_next(q, d, rst);
        let l = g.latches()[0];
        assert_eq!(l.next, d);
        assert_eq!(l.reset_lit, rst);
        assert_eq!(l.reset, ResetKind::Sync);
        assert!(l.init);
    }
}
