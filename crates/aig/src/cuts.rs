//! K-feasible cut enumeration with priority pruning and per-cut truth
//! tables.
//!
//! A **cut** of an AND node `n` is a set of nodes (the *leaves*) such that
//! every path from a primary input or latch to `n` passes through a leaf:
//! the cone between the leaves and `n` computes a single-output function of
//! the leaf values, and if a library cell realizes that function, the whole
//! cone collapses into one cell. Cut-based technology mapping enumerates
//! the `k`-feasible cuts (≤ `k` leaves) of every node bottom-up — the cuts
//! of `AND(a, b)` are the pairwise merges of the cuts of `a` and `b`, plus
//! the trivial cut `{n}` — and keeps, per node, a bounded **priority** set
//! of the most promising ones instead of the exponentially many that exist.
//!
//! Each cut carries the truth table of the node's (plain-polarity)
//! function over its leaves in the dense `u16` encoding of
//! [`crate::npn`]: bit `m` is the value on minterm `m`, leaf `i`
//! (ascending node-id order) contributes bit `i` of `m`. Truth tables are
//! support-reduced: a leaf the function does not actually depend on is
//! dropped, so a cut's `leaves` are always its exact support.
//!
//! Cut tables are **contextually** sound, not free-variable-local: a
//! merge composes the actual cone functions along real circuit paths, so
//! a table may bake in facts that hold for every *reachable* leaf
//! valuation (e.g. a reconvergent sub-cone that is constant in context
//! reduces away entirely). The divergence from the free-leaf local
//! function arises through support reduction: once a cut's table drops a
//! vacuous variable, *later merges* combine that reduced fact with cuts
//! over different leaf sets, and the combined table need no longer equal
//! the cone's function over free leaves — concretely, for
//! `x = XOR(y, a)` with `y = a & b & c`, the sub-cone `!a & y` has the
//! empty (constant-false) cut, and merging it gives `x` a `{a, y}` cut
//! with table `!a | y`, not the free-leaf `XNOR(a, y)`; the two differ
//! only on the unreachable valuation `a=0, y=1`. Replacing a node's cone
//! by any cell realizing its cut table therefore preserves the circuit's
//! observable behaviour even where the table differs from the free-leaf
//! local function — mapping gets reconvergence-driven don't-cares at no
//! extra cost. (This is also why the test oracle below checks tables on
//! whole-graph simulations rather than by driving leaves as free
//! variables.)
//!
//! # Examples
//!
//! ```
//! use synthir_aig::{Aig, cuts::enumerate_cuts};
//!
//! let mut g = Aig::new("demo");
//! let a = g.add_input_port("a", 1)[0];
//! let b = g.add_input_port("b", 1)[0];
//! let c = g.add_input_port("c", 1)[0];
//! let ab = g.and(a, b);
//! let y = g.and(ab, c); // y = a & b & c
//! let cuts = enumerate_cuts(&g, 4, 8);
//! // The widest cut of y sees all three inputs with the AND3 function.
//! let wide = cuts[y.node() as usize]
//!     .iter()
//!     .find(|cut| cut.leaves() == [a.node(), b.node(), c.node()])
//!     .expect("3-leaf cut enumerated");
//! assert_eq!(wide.tt, 0x80); // minterm 7 only
//! ```

use crate::graph::{Aig, AigNode};
use crate::npn::tt_mask;

/// The maximum cut width the dense `u16` truth tables support.
pub const MAX_K: usize = 4;

/// One cut: up to [`MAX_K`] leaf nodes (ascending id order, exactly the
/// function's support) plus the truth table of the node's plain-polarity
/// function over them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cut {
    leaves: [u32; MAX_K],
    len: u8,
    /// Truth table over `leaves()` (dense encoding, low `2^len` bits).
    pub tt: u16,
}

impl Cut {
    /// The leaf nodes, ascending id order.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the cut has no leaves (the node function is constant).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The trivial cut of a node: the node itself, identity function.
    pub fn trivial(node: u32) -> Cut {
        Cut {
            leaves: [node, 0, 0, 0],
            len: 1,
            tt: 0b10,
        }
    }

    /// Whether every leaf of `self` is also a leaf of `other`.
    fn dominates(&self, other: &Cut) -> bool {
        self.leaves().iter().all(|l| other.leaves().contains(l))
    }
}

/// Merges two child cuts under an AND: unions the leaf sets (fails when
/// more than `k` leaves result), recomputes the truth table, and
/// support-reduces. `ca`/`cb` are the cuts of the AND's fanin *nodes*;
/// `na`/`nb` complement the child functions for complemented edges.
fn merge(ca: &Cut, cb: &Cut, na: bool, nb: bool, k: usize) -> Option<Cut> {
    // Union of two sorted leaf lists.
    let mut leaves = [0u32; MAX_K];
    let (la, lb) = (ca.leaves(), cb.leaves());
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < la.len() || j < lb.len() {
        let v = match (la.get(i), lb.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if n == k {
            return None;
        }
        leaves[n] = v;
        n += 1;
    }
    // Expand each child table onto the union, complementing per edge.
    let expand = |c: &Cut, neg: bool| -> u16 {
        let mut pos = [0usize; MAX_K];
        for (ci, leaf) in c.leaves().iter().enumerate() {
            pos[ci] = leaves[..n].iter().position(|l| l == leaf).expect("subset");
        }
        let mut out = 0u16;
        for m in 0..1u32 << n {
            let mut cm = 0u32;
            for (ci, &p) in pos.iter().take(c.len()).enumerate() {
                cm |= (m >> p & 1) << ci;
            }
            let v = (c.tt >> cm) & 1 ^ u16::from(neg);
            out |= v << m;
        }
        out
    };
    let tt = expand(ca, na) & expand(cb, nb);
    Some(support_reduce(&leaves[..n], tt))
}

/// Drops leaves the function does not depend on and compresses the truth
/// table accordingly.
fn support_reduce(leaves: &[u32], tt: u16) -> Cut {
    let n = leaves.len();
    let mut kept = [0u32; MAX_K];
    let mut kn = 0usize;
    let mut cur = tt & tt_mask(n);
    for (i, &leaf) in leaves.iter().enumerate() {
        // The variable under test always sits at position `kn` of the
        // running table: earlier variables were either kept (positions
        // below `kn`) or removed outright.
        let width = kn + (n - i);
        let pos = cofactor(cur, kn, true, width);
        let neg = cofactor(cur, kn, false, width);
        if pos == neg {
            cur = pos; // vacuous: drop the variable
        } else {
            kept[kn] = leaf;
            kn += 1;
        }
    }
    Cut {
        leaves: kept,
        len: kn as u8,
        tt: cur & tt_mask(kn),
    }
}

/// The cofactor of `tt` (over `width` variables) with variable `v` bound
/// to `val`, expressed over `width - 1` variables (variable `v` removed,
/// higher variables shifted down).
fn cofactor(tt: u16, v: usize, val: bool, width: usize) -> u16 {
    let mut out = 0u16;
    for m in 0..1u32 << (width - 1) {
        // Re-insert the bound variable at position v.
        let low = m & ((1 << v) - 1);
        let high = (m >> v) << (v + 1);
        let full = low | high | (u32::from(val) << v);
        out |= ((tt >> full) & 1) << m;
    }
    out
}

/// Enumerates the `k`-feasible priority cuts of every node (`k ≤ 4`),
/// keeping at most `max_cuts` non-trivial cuts per node (smallest first)
/// plus the trivial cut, which is always last. Index `i` of the result
/// holds node `i`'s cuts; inputs and latches get only their trivial cut,
/// and the constant node gets a single empty (constant-false) cut.
///
/// # Panics
///
/// Panics if `k > MAX_K`.
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    assert!(k <= MAX_K, "dense truth tables support k ≤ {MAX_K}");
    let mut all: Vec<Vec<Cut>> = Vec::with_capacity(aig.node_count());
    for (i, node) in aig.nodes().iter().enumerate() {
        let cuts = match *node {
            AigNode::Const0 => vec![Cut {
                leaves: [0; MAX_K],
                len: 0,
                tt: 0,
            }],
            AigNode::Input | AigNode::Latch(_) => vec![Cut::trivial(i as u32)],
            AigNode::And(a, b) => {
                let mut merged: Vec<Cut> = Vec::new();
                for ca in &all[a.node() as usize] {
                    for cb in &all[b.node() as usize] {
                        let Some(c) = merge(ca, cb, a.is_complemented(), b.is_complemented(), k)
                        else {
                            continue;
                        };
                        if !merged.contains(&c) {
                            merged.push(c);
                        }
                    }
                }
                // Priority pruning: smaller cuts first (they dominate more
                // and cost less), then drop dominated ones.
                merged.sort_by_key(|c| c.len);
                let mut pruned: Vec<Cut> = Vec::new();
                for c in merged {
                    if pruned.iter().any(|p| p.dominates(&c)) {
                        continue;
                    }
                    pruned.push(c);
                    if pruned.len() == max_cuts {
                        break;
                    }
                }
                pruned.push(Cut::trivial(i as u32));
                pruned
            }
        };
        all.push(cuts);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AigLit;

    /// Soundness oracle: on real whole-graph simulations, a node's value
    /// must equal its cut truth table applied to the leaf values — for
    /// *every* cut. (Cut tables are statements about the node in the
    /// context of the actual circuit: a merge can bake in globally-sound
    /// facts — e.g. a sub-cone that is constant under every reachable
    /// leaf valuation — so driving the leaves as free variables would be
    /// the wrong oracle.)
    fn check_cut(aig: &Aig, node: u32, cut: &Cut, seed: u64) {
        let mut words: Vec<u64> = Vec::new();
        let mut state = seed | 1;
        for _ in 0..aig.node_count() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            words.push(state);
        }
        let vals = aig.simulate(|n| words[n as usize]);
        let got = vals[node as usize];
        let mut want = 0u64;
        for bit in 0..64u32 {
            let m = (0..cut.len()).fold(0u32, |acc, i| {
                acc | (((vals[cut.leaves()[i] as usize] >> bit) & 1) as u32) << i
            });
            want |= u64::from(cut.tt >> m & 1) << bit;
        }
        assert_eq!(got, want, "node {node} cut {:?}", cut.leaves());
    }

    #[test]
    fn base_cut_is_the_fanin_pair() {
        let mut g = Aig::new("t");
        let a = g.add_input();
        let b = g.add_input();
        let y = g.and(a, !b);
        let cuts = enumerate_cuts(&g, 4, 8);
        let cs = &cuts[y.node() as usize];
        // Fanin-pair cut plus the trivial cut.
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].leaves(), [a.node(), b.node()]);
        // a & !b over (a=var0, b=var1): minterm {a=1,b=0} = 0b01 → bit 1.
        assert_eq!(cs[0].tt, 0b0010);
        assert_eq!(cs[1].leaves(), [y.node()]);
    }

    #[test]
    fn cuts_grow_through_the_cone_and_match_simulation() {
        let mut g = Aig::new("t");
        let a = g.add_input();
        let b = g.add_input();
        let c = g.add_input();
        let d = g.add_input();
        let ab = g.and(a, b);
        let cd = g.or(c, d);
        let y = g.and(ab, cd);
        let x = g.xor(y, a);
        let cuts = enumerate_cuts(&g, 4, 8);
        for node in 0..g.node_count() as u32 {
            for (ci, cut) in cuts[node as usize].iter().enumerate() {
                check_cut(&g, node, cut, 0x9E37 + ci as u64);
            }
        }
        // y has the 4-leaf cut {a,b,c,d}: (a&b) & (c|d).
        let wide = cuts[y.node() as usize]
            .iter()
            .find(|cu| cu.len() == 4)
            .expect("4-leaf cut");
        assert_eq!(wide.leaves(), [a.node(), b.node(), c.node(), d.node()]);
        let _ = x;
    }

    #[test]
    fn support_reduction_drops_vacuous_leaves() {
        // f = (a & b) | (a & !b) = a: the b leaf must vanish.
        let cut = support_reduce(&[3, 7], 0b1010);
        assert_eq!(cut.leaves(), [3]);
        assert_eq!(cut.tt, 0b10);
        // Constant function: all leaves vanish.
        let c = support_reduce(&[3, 7], 0b1111);
        assert!(c.is_empty());
        assert_eq!(c.tt, 1);
    }

    #[test]
    fn random_graphs_have_sound_cut_tables() {
        let mut state = 0xFEED_FACE_CAFE_BEEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let mut g = Aig::new("t");
            let inputs: Vec<AigLit> = (0..4).map(|_| g.add_input()).collect();
            let mut lits = inputs.clone();
            for _ in 0..25 {
                let a = lits[(rng() % lits.len() as u64) as usize];
                let b = lits[(rng() % lits.len() as u64) as usize];
                let a = a.with_complement(a.is_complemented() ^ (rng() & 1 != 0));
                let b = b.with_complement(b.is_complemented() ^ (rng() & 1 != 0));
                let y = g.and(a, b);
                if !y.is_constant() {
                    lits.push(y);
                }
            }
            let cuts = enumerate_cuts(&g, 4, 8);
            for node in 0..g.node_count() as u32 {
                for (ci, cut) in cuts[node as usize].iter().enumerate() {
                    check_cut(&g, node, cut, rng() | ci as u64);
                }
            }
        }
    }
}
