//! SAT sweeping: merging functionally equivalent AIG nodes.
//!
//! Candidate equivalences come from bit-parallel random simulation: nodes
//! whose 64-bit signature words agree (up to complement) land in the same
//! class. Each candidate is then *proved* against its class representative
//! by the CDCL solver on a cone-local miter — UNSAT merges the node (with
//! the right phase), SAT yields a distinguishing pattern that refines the
//! remaining candidates. Latch outputs are free variables throughout, so a
//! proven merge is sound sequentially as well as combinationally.

use crate::graph::{Aig, AigLit, AigNode};
use crate::rewrite::Rebuilt;
use std::collections::HashMap;
use synthir_sat::{Lit, SatResult, Solver};

/// Effort knobs for [`sat_sweep`].
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Number of 64-pattern simulation words per signature.
    pub sim_words: usize,
    /// RNG seed for the random stimulus.
    pub seed: u64,
    /// Budget on SAT calls; when exhausted the sweep keeps the merges
    /// proved so far and stops.
    pub max_sat_calls: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            sim_words: 4,
            seed: 0xA1_65ED,
            max_sat_calls: 2000,
        }
    }
}

/// The outcome of a sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The merged graph plus the old-node → new-literal map.
    pub rebuilt: Rebuilt,
    /// Nodes merged into an equivalent representative.
    pub merges: usize,
    /// UNSAT (proof) results.
    pub proofs: usize,
    /// SAT (refutation) results — candidate pairs simulation could not
    /// tell apart but the solver could.
    pub refutations: usize,
}

/// Runs SAT sweeping over the live part of `aig`. `keep` literals stay
/// mapped (annotation carriers). The result may contain dangling cones
/// where merges cut fanout — run [`crate::rewrite::compact`] afterwards.
pub fn sat_sweep(aig: &Aig, keep: &[AigLit], opts: &SweepOptions) -> SweepResult {
    let live = aig.live_marks(keep);
    let n = aig.node_count();
    // Signatures: `sim_words` words per node of shared random stimulus.
    let mut sigs: Vec<Vec<u64>> = vec![Vec::with_capacity(opts.sim_words); n];
    for w in 0..opts.sim_words.max(1) {
        let vals = aig.simulate(|node| splitmix(opts.seed ^ (u64::from(node) << 20) ^ w as u64));
        for (node, v) in vals.iter().enumerate() {
            sigs[node].push(*v);
        }
    }
    // Candidate classes keyed by phase-canonical signature.
    let mut classes: HashMap<Vec<u64>, Vec<(u32, bool)>> = HashMap::new();
    for (node, sig) in sigs.iter().enumerate() {
        if !live[node] {
            continue;
        }
        let phase = sig[0] & 1 != 0;
        let canon: Vec<u64> = if phase {
            sig.iter().map(|w| !w).collect()
        } else {
            sig.clone()
        };
        classes.entry(canon).or_default().push((node as u32, phase));
    }
    let mut work: Vec<Vec<(u32, bool)>> = classes.into_values().filter(|c| c.len() >= 2).collect();
    // Deterministic processing order regardless of hash iteration.
    for c in &mut work {
        c.sort_unstable();
    }
    work.sort_unstable();

    let mut equiv: Vec<Option<AigLit>> = vec![None; n];
    let mut merges = 0usize;
    let mut proofs = 0usize;
    let mut refutations = 0usize;
    let mut sat_calls = 0usize;
    'outer: while let Some(group) = work.pop() {
        let (repr, repr_phase) = group[0];
        let mut split: Vec<(u32, bool)> = Vec::new();
        let mut idx = 1;
        while idx < group.len() {
            let (member, phase) = group[idx];
            idx += 1;
            if !matches!(aig.nodes()[member as usize], AigNode::And(..)) {
                continue; // sources cannot be replaced
            }
            if sat_calls >= opts.max_sat_calls {
                break 'outer;
            }
            sat_calls += 1;
            let diff = phase != repr_phase;
            match prove_pair(aig, repr, member, diff) {
                Proof::Equivalent => {
                    proofs += 1;
                    merges += 1;
                    equiv[member as usize] = Some(AigLit::new(repr, diff));
                }
                Proof::Counterexample(pattern) => {
                    refutations += 1;
                    // Refine: members the pattern separates from the
                    // representative form their own candidate group. The
                    // refuted member is split off unconditionally (the
                    // model proves it differs), so this group strictly
                    // shrinks and the loop terminates.
                    let vals = aig.simulate(|node| {
                        if pattern.get(&node).copied().unwrap_or(false) {
                            u64::MAX
                        } else {
                            0
                        }
                    });
                    let bit = |node: u32, ph: bool| (vals[node as usize] & 1 != 0) ^ ph;
                    let repr_bit = bit(repr, repr_phase);
                    split.push((member, phase));
                    let mut still: Vec<(u32, bool)> = Vec::new();
                    for &(m, p) in &group[idx..] {
                        if bit(m, p) == repr_bit {
                            still.push((m, p));
                        } else {
                            split.push((m, p));
                        }
                    }
                    if split.len() >= 2 {
                        work.push(std::mem::take(&mut split));
                    } else {
                        split.clear();
                    }
                    // Continue with the members that still agree.
                    let mut regroup = vec![(repr, repr_phase)];
                    regroup.extend(still);
                    if regroup.len() >= 2 {
                        work.push(regroup);
                    }
                    continue 'outer;
                }
            }
        }
    }

    // Rebuild with the proven merges applied.
    let mut out = Aig::new(aig.name());
    let mut map: Vec<AigLit> = vec![AigLit::FALSE; n];
    let mut ported = vec![false; n];
    for p in aig.input_ports() {
        let lits = out.add_input_port(&p.name, p.lits.len());
        for (&old, &new) in p.lits.iter().zip(&lits) {
            map[old.node() as usize] = new;
            ported[old.node() as usize] = true;
        }
    }
    for (i, node) in aig.nodes().iter().enumerate() {
        if matches!(node, AigNode::Input) && !ported[i] {
            map[i] = out.add_input();
        }
    }
    for l in aig.latches() {
        if live[l.output as usize] {
            map[l.output as usize] = out.add_latch(l.reset, l.init);
        }
    }
    let trans = |map: &[AigLit], l: AigLit| -> AigLit {
        let m = map[l.node() as usize];
        m.with_complement(m.is_complemented() ^ l.is_complemented())
    };
    for (i, node) in aig.nodes().iter().enumerate() {
        if let AigNode::And(a, b) = *node {
            if !live[i] {
                continue;
            }
            map[i] = match equiv[i] {
                Some(e) => trans(&map, e),
                None => {
                    let (na, nb) = (trans(&map, a), trans(&map, b));
                    out.and(na, nb)
                }
            };
        }
    }
    for l in aig.latches() {
        if live[l.output as usize] {
            let q = map[l.output as usize];
            out.set_latch_next(q, trans(&map, l.next), trans(&map, l.reset_lit));
        }
    }
    for p in aig.output_ports() {
        let lits: Vec<AigLit> = p.lits.iter().map(|&l| trans(&map, l)).collect();
        out.add_output_port(&p.name, &lits);
    }
    SweepResult {
        rebuilt: Rebuilt { aig: out, map },
        merges,
        proofs,
        refutations,
    }
}

enum Proof {
    Equivalent,
    /// Values for the input/latch nodes the miter constrained.
    Counterexample(HashMap<u32, bool>),
}

/// Asks the solver whether `member == repr ^ diff` over all input/latch
/// valuations of their shared cone.
fn prove_pair(aig: &Aig, repr: u32, member: u32, diff: bool) -> Proof {
    let mut solver = Solver::new();
    let true_lit = Lit::positive(solver.new_var());
    solver.add_clause(&[true_lit]);
    let mut vars: Vec<Option<Lit>> = vec![None; aig.node_count()];
    let a = encode_cone(aig, &mut solver, &mut vars, true_lit, repr);
    let b = encode_cone(aig, &mut solver, &mut vars, true_lit, member);
    let b = if diff { !b } else { b };
    // Miter: a != b.
    let t = Lit::positive(solver.new_var());
    solver.add_clause(&[!t, a, b]);
    solver.add_clause(&[!t, !a, !b]);
    solver.add_clause(&[t, !a, b]);
    solver.add_clause(&[t, a, !b]);
    solver.add_clause(&[t]);
    match solver.solve() {
        SatResult::Unsat => Proof::Equivalent,
        SatResult::Sat => {
            let mut pattern = HashMap::new();
            for (node, v) in vars.iter().enumerate() {
                if let Some(l) = v {
                    if matches!(aig.nodes()[node], AigNode::Input | AigNode::Latch(_)) {
                        pattern.insert(node as u32, solver.model_value(*l));
                    }
                }
            }
            Proof::Counterexample(pattern)
        }
    }
}

/// Tseitin-encodes the cone of `root`: one variable and three clauses per
/// AND node, sources as free variables. Iterative, stack-safe.
fn encode_cone(
    aig: &Aig,
    solver: &mut Solver,
    vars: &mut [Option<Lit>],
    true_lit: Lit,
    root: u32,
) -> Lit {
    let lit_of = |vars: &[Option<Lit>], l: AigLit| -> Lit {
        let v = vars[l.node() as usize].expect("fanin encoded");
        if l.is_complemented() {
            !v
        } else {
            v
        }
    };
    let mut stack: Vec<(u32, bool)> = vec![(root, false)];
    while let Some((node, expanded)) = stack.pop() {
        if vars[node as usize].is_some() {
            continue;
        }
        match aig.nodes()[node as usize] {
            AigNode::Const0 => vars[node as usize] = Some(!true_lit),
            AigNode::Input | AigNode::Latch(_) => {
                vars[node as usize] = Some(Lit::positive(solver.new_var()));
            }
            AigNode::And(a, b) => {
                if expanded {
                    let la = lit_of(vars, a);
                    let lb = lit_of(vars, b);
                    let t = Lit::positive(solver.new_var());
                    solver.add_clause(&[!t, la]);
                    solver.add_clause(&[!t, lb]);
                    solver.add_clause(&[t, !la, !lb]);
                    vars[node as usize] = Some(t);
                } else {
                    stack.push((node, true));
                    for f in [a, b] {
                        if vars[f.node() as usize].is_none() {
                            stack.push((f.node(), false));
                        }
                    }
                }
            }
        }
    }
    vars[root as usize].expect("root encoded")
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two structurally different forms of the same function merge.
    #[test]
    fn merges_functionally_equal_nodes() {
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let c = g.add_input_port("c", 1)[0];
        // y1 = (a & b) & c, y2 = a & (b & c): structurally distinct nodes.
        let ab = g.and(a, b);
        let y1 = g.and(ab, c);
        let bc = g.and(b, c);
        let y2 = g.and(a, bc);
        assert_ne!(y1, y2, "hashing alone must not see through this");
        g.add_output_port("y1", &[y1]);
        g.add_output_port("y2", &[y2]);
        let res = sat_sweep(&g, &[], &SweepOptions::default());
        assert!(res.merges >= 1, "{res:?}");
        let r = &res.rebuilt;
        assert_eq!(r.lit(y1), r.lit(y2));
        // Function preserved.
        let masks = [
            0xAAAA_AAAA_AAAA_AAAAu64,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
        ];
        let vals = r.aig.simulate(|n| {
            let i = r.aig.input_nodes().iter().position(|&v| v == n).unwrap();
            masks[i]
        });
        assert_eq!(
            Aig::lit_value(&vals, r.lit(y1)) & 0xFF,
            masks[0] & masks[1] & masks[2] & 0xFF
        );
    }

    /// Complement-phase equivalences merge too.
    #[test]
    fn merges_complement_pairs() {
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        // De Morgan twins: !(a & b) vs (!a | !b) built the long way.
        let nab = !g.and(a, b);
        let x = g.and(!a, !b); // !a & !b — NOT equal to nab
        let o = g.or(!a, !b); // == nab, but or() folds via hashing already…
        let _ = x;
        g.add_output_port("p", &[nab]);
        g.add_output_port("q", &[o]);
        // Hashing already unifies these; make a genuinely different pair:
        // q2 = mux(a, !b, 1) == !(a & b).
        let q2 = g.mux(a, !b, AigLit::TRUE);
        g.add_output_port("r", &[q2]);
        let res = sat_sweep(&g, &[], &SweepOptions::default());
        let r = &res.rebuilt;
        assert_eq!(r.lit(nab), r.lit(q2), "{res:?}");
    }

    /// Inequivalent nodes with colliding signatures must not merge: use a
    /// single simulation word and many nodes so collisions are plausible,
    /// then check functional preservation.
    #[test]
    fn never_merges_inequivalent_nodes() {
        let mut g = Aig::new("t");
        let inputs: Vec<AigLit> = (0..6).map(|_| g.add_input()).collect();
        let mut outs = Vec::new();
        let mut lits = inputs.clone();
        let mut state = 7u64;
        for _ in 0..40 {
            state = splitmix(state);
            let a = lits[(state % lits.len() as u64) as usize];
            state = splitmix(state);
            let b = lits[(state % lits.len() as u64) as usize];
            state = splitmix(state);
            let y = match state % 3 {
                0 => g.and(a, !b),
                1 => g.or(a, b),
                _ => g.xor(a, b),
            };
            lits.push(y);
            outs.push(y);
        }
        for (i, &o) in outs.iter().enumerate() {
            g.add_output_port(format!("o{i}"), &[o]);
        }
        let res = sat_sweep(
            &g,
            &[],
            &SweepOptions {
                sim_words: 1,
                ..Default::default()
            },
        );
        let r = &res.rebuilt;
        // Exhaustive check over all 64 input minterms.
        let old_vals = g.simulate(|n| tt_word(&g, n));
        let new_vals = r.aig.simulate(|n| tt_word(&r.aig, n));
        for &o in &outs {
            assert_eq!(
                Aig::lit_value(&old_vals, o),
                Aig::lit_value(&new_vals, r.lit(o)),
                "sweep changed a function"
            );
        }
    }

    fn tt_word(g: &Aig, node: u32) -> u64 {
        let i = g.input_nodes().iter().position(|&v| v == node).unwrap();
        // 6-variable truth-table stimulus.
        [
            0xAAAA_AAAA_AAAA_AAAAu64,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
            0xFF00_FF00_FF00_FF00,
            0xFFFF_0000_FFFF_0000,
            0xFFFF_FFFF_0000_0000,
        ][i]
    }
}
