//! NPN canonicalization of ≤ 4-variable truth tables.
//!
//! Two boolean functions are **NPN-equivalent** when one can be obtained
//! from the other by Negating inputs, Permuting inputs, and/or Negating
//! the output. Technology mapping matches cut functions against library
//! cells *up to* NPN equivalence: a single `AND2` cell realizes all eight
//! functions of the form `±(±a · ±b)` once input/output inverters (free
//! complemented edges in the AIG, real `Inv` cells at netlist emission)
//! are accounted for. Canonicalizing both the cut function and every cell
//! function reduces matching to one hash lookup per cut.
//!
//! Truth tables are the dense `u16` encoding of [`crate::cuts`]: bit `m`
//! is the function value on minterm `m`, variable `i` contributes bit `i`
//! of `m`, and only the low `2^n` bits of an `n`-variable table are
//! meaningful.
//!
//! # Examples
//!
//! ```
//! use synthir_aig::npn::{canonicalize, NpnTransform};
//!
//! // a & !b and !a & b are NPN-equivalent (swap or flip the inputs)…
//! let (c1, t1) = canonicalize(0b0010, 2);
//! let (c2, t2) = canonicalize(0b0100, 2);
//! assert_eq!(c1, c2);
//! // …and each transform really maps its function onto the canon.
//! assert_eq!(t1.apply(0b0010, 2), c1);
//! assert_eq!(t2.apply(0b0100, 2), c2);
//! // XOR is in a different class.
//! let (cx, _) = canonicalize(0b0110, 2);
//! assert_ne!(c1, cx);
//! ```

/// The truth-table word of variable `i` (of up to four), dense encoding.
pub const VAR_MASKS: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

/// The all-ones mask of an `n`-variable truth table (`n ≤ 4`).
pub fn tt_mask(n: usize) -> u16 {
    debug_assert!(n <= 4);
    if n == 4 {
        0xFFFF
    } else {
        (1u16 << (1 << n)) - 1
    }
}

/// An NPN transform: an input permutation, per-input complement flags,
/// and an output complement flag.
///
/// Applied to a function `f` by [`NpnTransform::apply`], the result `g`
/// satisfies `g(x_0, …, x_{n-1}) = f(y_0, …, y_{n-1}) ^ negate` with
/// `y_{perm[i]} = x_i ^ flip_i` — i.e. variable `i` of `g` drives
/// variable `perm[i]` of `f`, complemented when bit `i` of `flips` is
/// set. This is exactly the data a technology mapper needs: if a library
/// cell computes `f` over its pins, then `g` is realized by feeding
/// *cut leaf* `i` (inverted per `flips`) into *cell pin* `perm[i]` and
/// inverting the output per `negate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// `perm[i]` is the target variable that source variable `i` drives.
    pub perm: [u8; 4],
    /// Bit `i` complements source variable `i` before it drives `perm[i]`.
    pub flips: u8,
    /// Complement the output.
    pub negate: bool,
}

impl NpnTransform {
    /// The identity transform on `n` variables.
    pub fn identity() -> NpnTransform {
        NpnTransform {
            perm: [0, 1, 2, 3],
            flips: 0,
            negate: false,
        }
    }

    /// Applies the transform to an `n`-variable truth table.
    pub fn apply(&self, tt: u16, n: usize) -> u16 {
        let mut out = 0u16;
        for m in 0..1u32 << n {
            let mut target = 0u32;
            for i in 0..n {
                let bit = (m >> i) & 1 ^ u32::from(self.flips >> i & 1);
                target |= bit << self.perm[i];
            }
            let v = (tt >> target) & 1 ^ u16::from(self.negate);
            out |= v << m;
        }
        out
    }

    /// The composition `self ∘ other`: applying the result equals applying
    /// `other` first, then `self` (`(self ∘ other).apply(f) ==
    /// self.apply(other.apply(f))`).
    pub fn compose(&self, other: &NpnTransform, n: usize) -> NpnTransform {
        let mut perm = [0u8; 4];
        let mut flips = 0u8;
        for (i, &p) in self.perm.iter().enumerate().take(n) {
            let mid = p as usize;
            perm[i] = other.perm[mid];
            flips |= ((self.flips >> i & 1) ^ (other.flips >> mid & 1)) << i;
        }
        for (i, p) in perm.iter_mut().enumerate().skip(n) {
            *p = i as u8;
        }
        NpnTransform {
            perm,
            flips,
            negate: self.negate ^ other.negate,
        }
    }

    /// The inverse transform: `t.inverse(n).apply(t.apply(f, n), n) == f`.
    pub fn inverse(&self, n: usize) -> NpnTransform {
        let mut perm = [0u8; 4];
        let mut flips = 0u8;
        for (i, &pj) in self.perm.iter().enumerate().take(n) {
            let j = pj as usize;
            perm[j] = i as u8;
            flips |= (self.flips >> i & 1) << j;
        }
        for (i, p) in perm.iter_mut().enumerate().skip(n) {
            *p = i as u8;
        }
        NpnTransform {
            perm,
            flips,
            negate: self.negate,
        }
    }
}

/// All permutations of `0..n` (n ≤ 4), identity-padded to four entries,
/// in lexicographic order. Static tables: canonicalization sits in the
/// technology mapper's hottest loop, so the permutation sets must not be
/// regenerated (allocated, sorted) per call.
fn permutations(n: usize) -> &'static [[u8; 4]] {
    const P1: [[u8; 4]; 1] = [[0, 1, 2, 3]];
    const P2: [[u8; 4]; 2] = [[0, 1, 2, 3], [1, 0, 2, 3]];
    const P3: [[u8; 4]; 6] = [
        [0, 1, 2, 3],
        [0, 2, 1, 3],
        [1, 0, 2, 3],
        [1, 2, 0, 3],
        [2, 0, 1, 3],
        [2, 1, 0, 3],
    ];
    const P4: [[u8; 4]; 24] = [
        [0, 1, 2, 3],
        [0, 1, 3, 2],
        [0, 2, 1, 3],
        [0, 2, 3, 1],
        [0, 3, 1, 2],
        [0, 3, 2, 1],
        [1, 0, 2, 3],
        [1, 0, 3, 2],
        [1, 2, 0, 3],
        [1, 2, 3, 0],
        [1, 3, 0, 2],
        [1, 3, 2, 0],
        [2, 0, 1, 3],
        [2, 0, 3, 1],
        [2, 1, 0, 3],
        [2, 1, 3, 0],
        [2, 3, 0, 1],
        [2, 3, 1, 0],
        [3, 0, 1, 2],
        [3, 0, 2, 1],
        [3, 1, 0, 2],
        [3, 1, 2, 0],
        [3, 2, 0, 1],
        [3, 2, 1, 0],
    ];
    match n {
        0 | 1 => &P1,
        2 => &P2,
        3 => &P3,
        4 => &P4,
        _ => panic!("NPN tables support at most 4 variables"),
    }
}

/// Canonicalizes an `n`-variable truth table (`n ≤ 4`) under NPN
/// equivalence by exhaustive search (at most `4! · 2⁴ · 2 = 768`
/// transforms): returns the canonical representative — the numerically
/// smallest reachable table — and a transform `t` with
/// `t.apply(tt, n) == canon`.
///
/// Two tables are NPN-equivalent iff their canons are equal, which is the
/// invariant the technology mapper's library index rests on.
pub fn canonicalize(tt: u16, n: usize) -> (u16, NpnTransform) {
    let tt = tt & tt_mask(n);
    let mut best = tt;
    let mut best_t = NpnTransform::identity();
    for &perm in permutations(n) {
        for flips in 0..1u8 << n {
            for negate in [false, true] {
                let t = NpnTransform {
                    perm,
                    flips,
                    negate,
                };
                let cand = t.apply(tt, n);
                if cand < best {
                    best = cand;
                    best_t = t;
                }
            }
        }
    }
    (best, best_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_transform(n: usize, rng: &mut u64) -> NpnTransform {
        let perms = permutations(n);
        NpnTransform {
            perm: perms[(xorshift(rng) % perms.len() as u64) as usize],
            flips: (xorshift(rng) as u8) & ((1u8 << n) - 1),
            negate: xorshift(rng) & 1 != 0,
        }
    }

    #[test]
    fn identity_applies_as_identity() {
        for n in 0..=4usize {
            for tt in [0x0000u16, 0x1234, 0xFFFF, 0x8001] {
                let tt = tt & tt_mask(n);
                assert_eq!(NpnTransform::identity().apply(tt, n), tt);
            }
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let mut rng = 0xDEAD_BEEF_1234_5678u64;
        for n in 1..=4usize {
            for _ in 0..200 {
                let t1 = random_transform(n, &mut rng);
                let t2 = random_transform(n, &mut rng);
                let f = (xorshift(&mut rng) as u16) & tt_mask(n);
                let seq = t1.apply(t2.apply(f, n), n);
                let composed = t1.compose(&t2, n).apply(f, n);
                assert_eq!(seq, composed, "n={n} t1={t1:?} t2={t2:?} f={f:#06x}");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = 0x1357_9BDF_2468_ACE0u64;
        for n in 1..=4usize {
            for _ in 0..200 {
                let t = random_transform(n, &mut rng);
                let f = (xorshift(&mut rng) as u16) & tt_mask(n);
                assert_eq!(t.inverse(n).apply(t.apply(f, n), n), f);
                assert_eq!(t.apply(t.inverse(n).apply(f, n), n), f);
            }
        }
    }

    /// Exhaustive over every 2-variable function and every transform:
    /// canonicalization is a true NPN-class invariant.
    #[test]
    fn two_var_canon_is_exhaustively_invariant() {
        for tt in 0..16u16 {
            let (canon, t) = canonicalize(tt, 2);
            assert_eq!(t.apply(tt, 2), canon, "transform maps {tt:#x} to canon");
            for &perm in permutations(2) {
                for flips in 0..4u8 {
                    for negate in [false, true] {
                        let var = NpnTransform {
                            perm,
                            flips,
                            negate,
                        }
                        .apply(tt, 2);
                        assert_eq!(
                            canonicalize(var, 2).0,
                            canon,
                            "{tt:#x} variant {var:#x} canonicalizes differently"
                        );
                    }
                }
            }
        }
    }

    /// All 256 3-variable functions: canon invariance under every
    /// transform of the class.
    #[test]
    fn three_var_canon_is_exhaustively_invariant() {
        for tt in 0..256u16 {
            let (canon, t) = canonicalize(tt, 3);
            assert_eq!(t.apply(tt, 3), canon);
            for &perm in permutations(3) {
                for flips in 0..8u8 {
                    let var = NpnTransform {
                        perm,
                        flips,
                        negate: (tt ^ u16::from(flips)) & 1 != 0, // vary both phases across the sweep
                    }
                    .apply(tt, 3);
                    assert_eq!(canonicalize(var, 3).0, canon);
                }
            }
        }
    }

    #[test]
    fn known_classes() {
        // All and-type 2-var functions share one class.
        let and_class: Vec<u16> = vec![
            0b1000, 0b0100, 0b0010, 0b0001, 0b0111, 0b1011, 0b1101, 0b1110,
        ];
        let canon = canonicalize(and_class[0], 2).0;
        for f in and_class {
            assert_eq!(canonicalize(f, 2).0, canon);
        }
        // XOR/XNOR share a class distinct from AND's.
        let x = canonicalize(0b0110, 2).0;
        assert_eq!(canonicalize(0b1001, 2).0, x);
        assert_ne!(x, canon);
    }
}
