//! Local AIG rewriting: rebuild-with-rules plus 2-input-cut NPN
//! resynthesis, and the dangling-node sweep (`compact`).
//!
//! The rewriter re-derives every live AND through [`Aig::and`] in a fresh
//! graph, so the construction-time one-/two-level rules and hash-consing
//! get a second chance after upstream merges have changed fanins. On top
//! of that, each rebuilt node whose two-level neighbourhood spans at most
//! two distinct leaf variables is replaced by the *canonical minimal*
//! implementation of its 2-input function (one of the 16 NPN-classified
//! two-variable functions): constants, single literals, one AND, or an
//! XOR/XNOR pair — never more nodes than the structural form it replaces.

use crate::graph::{Aig, AigLit, AigNode};

/// The outcome of a rebuild-style pass: the new graph plus the old-node →
/// new-literal map used to carry kept literals (annotations) across.
#[derive(Clone, Debug)]
pub struct Rebuilt {
    /// The rebuilt graph.
    pub aig: Aig,
    /// `map[node]` is the literal the old node's plain literal became.
    /// Dead, un-kept nodes map to [`AigLit::FALSE`] and must not be read.
    pub map: Vec<AigLit>,
}

impl Rebuilt {
    /// Translates an old-graph literal into the rebuilt graph.
    pub fn lit(&self, l: AigLit) -> AigLit {
        let m = self.map[l.node() as usize];
        m.with_complement(m.is_complemented() ^ l.is_complemented())
    }

    /// Chains a second rebuild: the result maps original literals straight
    /// into `next`'s graph.
    pub fn then(self, next: Rebuilt) -> Rebuilt {
        Rebuilt {
            map: self.map.iter().map(|&l| next.lit(l)).collect(),
            aig: next.aig,
        }
    }
}

/// Rebuilds `aig`, re-running the construction rules and the 2-cut NPN
/// minimization on every live AND, to a fixpoint (bounded at four rounds —
/// in practice one or two suffice). `keep` lists extra literals that must
/// stay mapped (annotation carriers). Returns the rebuilt graph and the
/// composed literal map.
pub fn rewrite(aig: &Aig, keep: &[AigLit]) -> Rebuilt {
    let mut current = rebuild(aig, keep, true);
    // Further rounds only pay off while the previous one shrank the graph
    // — the common mid-flow case (a graph already normalized at import)
    // stops after the single pass above.
    let mut prev_count = aig.and_count();
    for _ in 0..3 {
        if current.aig.and_count() >= prev_count {
            break;
        }
        prev_count = current.aig.and_count();
        let keep2: Vec<AigLit> = keep.iter().map(|&l| current.lit(l)).collect();
        let next = rebuild(&current.aig, &keep2, true);
        current = Rebuilt {
            map: compose(&current.map, &next),
            aig: next.aig,
        };
    }
    current
}

/// Rebuilds `aig` dropping dead nodes, with no resynthesis beyond the
/// construction rules — the explicit dangling-node sweep.
pub fn compact(aig: &Aig, keep: &[AigLit]) -> Rebuilt {
    rebuild(aig, keep, false)
}

fn compose(first: &[AigLit], then: &Rebuilt) -> Vec<AigLit> {
    first.iter().map(|&l| then.lit(l)).collect()
}

/// One rebuild round: copies inputs/latches, re-derives live ANDs (with the
/// NPN step when `npn` is set), and rewires latches and output ports.
fn rebuild(aig: &Aig, keep: &[AigLit], npn: bool) -> Rebuilt {
    let live = aig.live_marks(keep);
    let mut out = Aig::new(aig.name());
    let mut map: Vec<AigLit> = vec![AigLit::FALSE; aig.node_count()];
    // Ports first (interface preserved), then stray inputs in node order.
    let mut ported: Vec<bool> = vec![false; aig.node_count()];
    for p in aig.input_ports() {
        let lits = out.add_input_port(&p.name, p.lits.len());
        for (&old, &new) in p.lits.iter().zip(&lits) {
            map[old.node() as usize] = new;
            ported[old.node() as usize] = true;
        }
    }
    for (i, n) in aig.nodes().iter().enumerate() {
        if matches!(n, AigNode::Input) && !ported[i] {
            map[i] = out.add_input();
        }
    }
    for l in aig.latches() {
        if live[l.output as usize] {
            map[l.output as usize] = out.add_latch(l.reset, l.init);
        }
    }
    let trans = |map: &[AigLit], l: AigLit| -> AigLit {
        let m = map[l.node() as usize];
        m.with_complement(m.is_complemented() ^ l.is_complemented())
    };
    for (i, n) in aig.nodes().iter().enumerate() {
        if let AigNode::And(a, b) = *n {
            if !live[i] {
                continue;
            }
            let (na, nb) = (trans(&map, a), trans(&map, b));
            map[i] = if npn {
                and_npn(&mut out, na, nb)
            } else {
                out.and(na, nb)
            };
        }
    }
    for old in aig.latches() {
        if !live[old.output as usize] {
            continue;
        }
        let q = map[old.output as usize];
        out.set_latch_next(q, trans(&map, old.next), trans(&map, old.reset_lit));
    }
    for p in aig.output_ports() {
        let lits: Vec<AigLit> = p.lits.iter().map(|&l| trans(&map, l)).collect();
        out.add_output_port(&p.name, &lits);
    }
    Rebuilt { aig: out, map }
}

/// `and(a, b)` with the 2-input-cut NPN step: if the two-level
/// neighbourhood of the conjunction spans at most two distinct leaf nodes,
/// emit the canonical minimal form of its 2-variable function instead of
/// the structural conjunction.
fn and_npn(g: &mut Aig, a: AigLit, b: AigLit) -> AigLit {
    // Collect the leaf nodes of the 2-level cut: a literal's own node when
    // it is not an AND, its fanin nodes otherwise.
    let mut leaves: [u32; 4] = [u32::MAX; 4];
    let mut n_leaves = 0usize;
    let add = |leaves: &mut [u32; 4], n_leaves: &mut usize, node: u32| {
        if !leaves[..*n_leaves].contains(&node) {
            if *n_leaves == 4 {
                return false;
            }
            leaves[*n_leaves] = node;
            *n_leaves += 1;
        }
        true
    };
    for l in [a, b] {
        match g.nodes()[l.node() as usize] {
            AigNode::And(x, y) => {
                if !add(&mut leaves, &mut n_leaves, x.node())
                    || !add(&mut leaves, &mut n_leaves, y.node())
                {
                    return g.and(a, b);
                }
            }
            _ => {
                if !add(&mut leaves, &mut n_leaves, l.node()) {
                    return g.and(a, b);
                }
            }
        }
    }
    if n_leaves > 2 {
        return g.and(a, b);
    }
    // Degenerate cuts (constants in the neighbourhood) still work: the
    // truth-table words below treat them as ordinary variables and the
    // construction rules collapse the result.
    let (x, y) = (leaves[0], if n_leaves == 2 { leaves[1] } else { leaves[0] });
    const WX: u8 = 0b1010;
    const WY: u8 = 0b1100;
    let word = |l: AigLit| -> u8 {
        let base = match g.nodes()[l.node() as usize] {
            AigNode::And(p, q) => {
                let wp =
                    if p.node() == x { WX } else { WY } ^ if p.is_complemented() { 0xF } else { 0 };
                let wq =
                    if q.node() == x { WX } else { WY } ^ if q.is_complemented() { 0xF } else { 0 };
                wp & wq
            }
            AigNode::Const0 => 0,
            _ => {
                if l.node() == x {
                    WX
                } else {
                    WY
                }
            }
        } & 0xF;
        if l.is_complemented() {
            !base & 0xF
        } else {
            base
        }
    };
    // A constant leaf (node 0) contributes the all-zero column via the
    // `AigNode::Const0` arm above, so truth tables that would need that
    // column active simply cannot arise — the match below stays total.
    let tt = word(a) & word(b);
    let lx = AigLit::new(x, false);
    let ly = AigLit::new(y, false);
    match tt {
        0x0 => AigLit::FALSE,
        0xF => AigLit::TRUE,
        0xA => lx,
        0x5 => !lx,
        0xC => ly,
        0x3 => !ly,
        0x8 => g.and(lx, ly),
        0x2 => g.and(lx, !ly),
        0x4 => g.and(!lx, ly),
        0x1 => g.and(!lx, !ly),
        0x7 => !g.and(lx, ly),
        0xD => !g.and(lx, !ly),
        0xB => !g.and(!lx, ly),
        0xE => !g.and(!lx, !ly),
        0x6 => g.xor(lx, ly),
        0x9 => !g.xor(lx, ly),
        _ => unreachable!("4-bit truth table"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_collapses_structural_xor() {
        // Build XOR the long way (4 ANDs via NANDs) and let the rewriter
        // find the 3-node form (or better).
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let nab = !g.and(a, b);
        let x = g.and(a, nab);
        let y = g.and(b, nab);
        let res = g.or(x, y); // = a ^ b
        g.add_output_port("y", &[res]);
        let r = rewrite(&g, &[]);
        assert!(r.aig.and_count() <= 3, "{} ANDs", r.aig.and_count());
        // Function preserved.
        let check = |g: &Aig, out: AigLit| {
            let vals = g.simulate(|n| {
                let i = g.input_nodes().iter().position(|&v| v == n).unwrap();
                [0xAAAA_AAAA_AAAA_AAAAu64, 0xCCCC_CCCC_CCCC_CCCC][i]
            });
            Aig::lit_value(&vals, out) & 0xF
        };
        let old = check(&g, res);
        let new = check(&r.aig, r.aig.output_ports()[0].lits[0]);
        assert_eq!(old, new);
        assert_eq!(old, 0b0110);
    }

    #[test]
    fn compact_drops_dead_nodes_and_latches() {
        use synthir_netlist::ResetKind;
        let mut g = Aig::new("t");
        let a = g.add_input_port("a", 1)[0];
        let b = g.add_input_port("b", 1)[0];
        let _dead = g.and(a, b);
        let dead_latch = g.add_latch(ResetKind::None, false);
        g.set_latch_next(dead_latch, a, AigLit::FALSE);
        let keep = g.and(!a, !b);
        g.add_output_port("y", &[keep]);
        let r = compact(&g, &[]);
        assert_eq!(r.aig.and_count(), 1);
        assert!(r.aig.latches().is_empty() || r.aig.latches().len() < g.latches().len());
    }

    #[test]
    fn rewrite_preserves_interface_and_latches() {
        use synthir_netlist::ResetKind;
        let mut g = Aig::new("t");
        let d = g.add_input_port("d", 2);
        let rst = g.add_input_port("rst", 1)[0];
        let q = g.add_latch(ResetKind::Sync, true);
        let nx = g.and(d[0], d[1]);
        g.set_latch_next(q, nx, rst);
        g.add_output_port("q", &[q]);
        let r = rewrite(&g, &[]);
        assert_eq!(r.aig.input_ports().len(), 2);
        assert_eq!(r.aig.input_ports()[0].name, "d");
        assert_eq!(r.aig.latches().len(), 1);
        let l = r.aig.latches()[0];
        assert_eq!(l.reset, ResetKind::Sync);
        assert!(l.init);
    }
}
