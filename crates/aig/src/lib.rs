//! # synthir-aig
//!
//! A structurally-hashed **And-Inverter Graph** — the optimization core
//! shared by the synthesis flow, the SAT equivalence engine, and the
//! netlist cleanup passes.
//!
//! Industrial logic-optimization flows (ABC and its descendants) converge
//! on one normalized IR: every combinational function is a DAG of 2-input
//! ANDs with complemented edges, hash-consed at construction so constant
//! folding, sharing, and local simplification happen *while the graph is
//! being built* instead of in fixpoint passes over a flat netlist. This
//! crate is that IR for the `synthir` workspace:
//!
//! * [`Aig`] / [`AigLit`] — the graph: flat topological node storage,
//!   complemented edges, two-level hash-consing with constant folding and
//!   one-/two-level rewriting inside [`Aig::and`], latch nodes carrying
//!   netlist flop semantics (reset flavour + init value) unchanged;
//! * [`import`] — `Netlist → Aig`, whole designs or seeded combinational
//!   cones (the CNF encoder's path), preserving port names and flop
//!   semantics and returning the net → literal map annotations ride on;
//! * [`export`] — `Aig → Netlist` with an implicit dangling-node sweep;
//! * [`mod@rewrite`] — local rewriting (2-input-cut NPN resynthesis) and
//!   [`rewrite::compact`];
//! * [`satsweep`] — candidate equivalence classes from 64-bit random
//!   simulation signatures, confirmed by the [`synthir_sat`] CDCL solver
//!   and merged on proof;
//! * [`cuts`] — k-feasible priority-cut enumeration with per-cut truth
//!   tables, the front half of cut-based technology mapping
//!   (`synthir_synth`'s `cutmap` pass);
//! * [`npn`] — NPN canonicalization of ≤ 4-variable truth tables, the
//!   equivalence the mapper matches cut functions against library cells
//!   under;
//! * [`optimize`] — the bundled pipeline the synthesis flow calls.
//!
//! ## Example
//!
//! ```
//! use synthir_aig::{Aig, AigLit};
//!
//! let mut g = Aig::new("demo");
//! let a = g.add_input_port("a", 1)[0];
//! let b = g.add_input_port("b", 1)[0];
//! let y = g.and(a, b);
//! // Hash-consing: the permuted duplicate is the same node…
//! assert_eq!(g.and(b, a), y);
//! // …and contradictions fold at construction time.
//! assert_eq!(g.and(y, !a), AigLit::FALSE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuts;
pub mod export;
pub mod graph;
pub mod import;
pub mod npn;
pub mod rewrite;
pub mod satsweep;

pub use cuts::{enumerate_cuts, Cut};
pub use export::{to_netlist, NetlistExport};
pub use graph::{Aig, AigLit, AigNode, AigPort, FxMap, Latch};
pub use import::{from_netlist, import_cone, ConeImport, NetLits, NetlistImport};
pub use npn::{canonicalize, NpnTransform};
pub use rewrite::{compact, rewrite, Rebuilt};
pub use satsweep::{sat_sweep, SweepOptions, SweepResult};

/// Errors produced by AIG construction and conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum AigError {
    /// The source netlist's combinational part is cyclic.
    Cyclic(String),
    /// A combinational cone import reached the output of a flop that was
    /// not seeded with a value.
    UnseededFlop,
}

impl std::fmt::Display for AigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AigError::Cyclic(e) => write!(f, "cyclic netlist: {e}"),
            AigError::UnseededFlop => {
                write!(f, "combinational cone reaches an unseeded flop output")
            }
        }
    }
}

impl std::error::Error for AigError {}

/// Statistics from one [`optimize`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizeStats {
    /// AND count before optimization.
    pub ands_before: usize,
    /// AND count after rewriting, sweeping, and compaction.
    pub ands_after: usize,
    /// Nodes merged by SAT sweeping (0 when sweeping is off).
    pub sat_merges: usize,
    /// SAT proofs (UNSAT results) during sweeping.
    pub sat_proofs: usize,
    /// SAT refutations (simulation-signature collisions the solver split).
    pub sat_refutations: usize,
}

/// The bundled optimization pipeline: local rewriting to a fixpoint,
/// optional SAT sweeping, and a final compaction — returning the composed
/// old-literal → new-literal map so callers can carry annotations across.
pub fn optimize(
    aig: &Aig,
    keep: &[AigLit],
    sweep: Option<&SweepOptions>,
) -> (Rebuilt, OptimizeStats) {
    let mut stats = OptimizeStats {
        ands_before: aig.and_count(),
        ..Default::default()
    };
    let mut result = rewrite::rewrite(aig, keep);
    if let Some(opts) = sweep {
        let keep2: Vec<AigLit> = keep.iter().map(|&l| result.lit(l)).collect();
        let swept = satsweep::sat_sweep(&result.aig, &keep2, opts);
        stats.sat_merges = swept.merges;
        stats.sat_proofs = swept.proofs;
        stats.sat_refutations = swept.refutations;
        result = result.then(swept.rebuilt);
        let keep3: Vec<AigLit> = keep.iter().map(|&l| result.lit(l)).collect();
        let compacted = rewrite::compact(&result.aig, &keep3);
        result = result.then(compacted);
    }
    stats.ands_after = result.aig.and_count();
    (result, stats)
}
