//! Netlist → AIG conversion: full designs and seeded combinational cones.

use crate::graph::{Aig, AigLit};
use crate::AigError;
use synthir_netlist::{topo, Gate, GateKind, NetId, Netlist, ResetKind};

/// A dense net → literal map (nets are small dense indices, so a flat
/// vector beats hashing on the import hot path).
#[derive(Clone, Debug, Default)]
pub struct NetLits {
    slots: Vec<Option<AigLit>>,
}

impl NetLits {
    fn with_capacity(nets: usize) -> NetLits {
        NetLits {
            slots: vec![None; nets],
        }
    }

    /// The literal of `net`, if the import assigned one.
    pub fn get(&self, net: NetId) -> Option<AigLit> {
        self.slots.get(net.index()).copied().flatten()
    }

    /// Whether `net` has a literal.
    pub fn contains(&self, net: NetId) -> bool {
        self.get(net).is_some()
    }

    fn insert(&mut self, net: NetId, l: AigLit) {
        if net.index() >= self.slots.len() {
            self.slots.resize(net.index() + 1, None);
        }
        self.slots[net.index()] = Some(l);
    }

    /// Iterates over the mapped `(net, literal)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, AigLit)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|l| (NetId(i as u32), l)))
    }
}

/// The result of importing a full netlist: the AIG plus the net → literal
/// map callers use to carry annotations (FSM state vectors, value-set
/// groups) across the round-trip.
#[derive(Clone, Debug)]
pub struct NetlistImport {
    /// The imported graph.
    pub aig: Aig,
    /// A literal for every net of the source netlist that the import
    /// visited (all driven nets, primary inputs, and flop outputs).
    pub lits: NetLits,
}

/// Imports a whole netlist: ports become AIG input/output ports, flops
/// become latches (reset flavour, reset cone, and init value preserved),
/// and every combinational gate is normalized into ANDs and complemented
/// edges — constant folding and structural hashing happen as a side effect
/// of construction.
///
/// Undriven internal nets import as constant false, matching the
/// simulator, BDD, and CNF conventions.
///
/// # Errors
///
/// Returns [`AigError::Cyclic`] if the combinational part is cyclic.
pub fn from_netlist(nl: &Netlist) -> Result<NetlistImport, AigError> {
    let order = topo::topological_order(nl).map_err(|e| AigError::Cyclic(e.to_string()))?;
    let mut imp = Importer {
        aig: Aig::new(nl.name()),
        lits: NetLits::with_capacity(nl.num_nets()),
        seeds: Vec::new(),
    };
    for p in nl.inputs() {
        let port_lits = imp.aig.add_input_port(&p.name, p.nets.len());
        for (&net, &lit) in p.nets.iter().zip(&port_lits) {
            imp.lits.insert(net, lit);
        }
    }
    // Latches first: their outputs are combinational sources, and
    // `topological_order` lists them before the logic anyway.
    for (_, g) in nl.gates() {
        if let GateKind::Dff { reset, init } = g.kind {
            let q = imp.aig.add_latch(reset, init);
            imp.lits.insert(g.output, q);
        }
    }
    // Undriven nets that are not primary inputs read as constant false
    // (the simulator/BDD/CNF convention); map them eagerly so the lazy
    // input-creation path in `net_lit` stays reserved for cone imports.
    for (_, g) in nl.gates() {
        for &i in &g.inputs {
            if nl.driver(i).is_none() && !imp.lits.contains(i) {
                imp.lits.insert(i, AigLit::FALSE);
            }
        }
    }
    for p in nl.outputs() {
        for &n in &p.nets {
            if nl.driver(n).is_none() && !imp.lits.contains(n) {
                imp.lits.insert(n, AigLit::FALSE);
            }
        }
    }
    for gid in order {
        let g = nl.gate(gid);
        if g.kind.is_sequential() {
            continue;
        }
        let lit = imp.gate_lit(g);
        imp.lits.insert(g.output, lit);
    }
    // Wire latch next-state and reset cones now that every net has a
    // literal.
    for (_, g) in nl.gates() {
        if let GateKind::Dff { reset, .. } = g.kind {
            let q = imp.lits.get(g.output).expect("latch mapped");
            let next = imp.net_lit(g.inputs[0]);
            let reset_lit = match reset {
                ResetKind::None => AigLit::FALSE,
                _ => imp.net_lit(g.inputs[1]),
            };
            imp.aig.set_latch_next(q, next, reset_lit);
        }
    }
    for p in nl.outputs() {
        let port_lits: Vec<AigLit> = p.nets.iter().map(|&n| imp.net_lit(n)).collect();
        imp.aig.add_output_port(&p.name, &port_lits);
    }
    debug_assert!(imp.seeds.is_empty(), "full imports pre-map every net");
    Ok(NetlistImport {
        aig: imp.aig,
        lits: imp.lits,
    })
}

/// The result of importing a seeded combinational cone (the CNF encoder's
/// workload): seeded nets become free AIG inputs.
#[derive(Clone, Debug)]
pub struct ConeImport {
    /// The cone-local graph (its inputs are exactly the seeds).
    pub aig: Aig,
    /// A literal for every net the walk visited (targets included).
    pub lits: NetLits,
    /// The seeded nets, paired with the input literal each received.
    pub seeds: Vec<(NetId, AigLit)>,
}

/// Imports the combinational cone of `nl` feeding `targets`, treating every
/// net for which `seeded` returns true as a free input (primary inputs the
/// caller has values for, BMC state literals, bound constants). Undriven
/// unseeded nets import as constant false. The traversal is the shared
/// [`topo::visit_cone`] worklist walk — stack-safe at any depth.
///
/// # Errors
///
/// Returns [`AigError::UnseededFlop`] if the cone reaches the output of a
/// flop that was not seeded — sequential elements have no combinational
/// meaning.
pub fn import_cone(
    nl: &Netlist,
    targets: &[NetId],
    mut seeded: impl FnMut(NetId) -> bool,
) -> Result<ConeImport, AigError> {
    let mut imp = Importer {
        aig: Aig::new(nl.name()),
        lits: NetLits::with_capacity(nl.num_nets()),
        seeds: Vec::new(),
    };
    // `visit_cone` deduplicates visits itself, so the `seeded` predicate
    // alone decides what becomes a free input.
    topo::visit_cone(nl, targets, &mut seeded, |nl, net, driver| {
        let Some(gid) = driver else {
            imp.lits.insert(net, AigLit::FALSE);
            return Ok(());
        };
        let g = nl.gate(gid);
        if g.kind.is_sequential() {
            return Err(AigError::UnseededFlop);
        }
        let lit = imp.gate_lit(g);
        imp.lits.insert(net, lit);
        Ok(())
    })?;
    Ok(ConeImport {
        aig: imp.aig,
        lits: imp.lits,
        seeds: imp.seeds,
    })
}

/// Shared import state: the graph under construction, the net → literal
/// map, and the log of lazily-created seed inputs.
struct Importer {
    aig: Aig,
    lits: NetLits,
    seeds: Vec<(NetId, AigLit)>,
}

impl Importer {
    /// The literal of a net, creating (and logging) a fresh input for nets
    /// the caller seeded but that have no literal yet.
    fn net_lit(&mut self, net: NetId) -> AigLit {
        if let Some(l) = self.lits.get(net) {
            return l;
        }
        let l = self.aig.add_input();
        self.lits.insert(net, l);
        self.seeds.push((net, l));
        l
    }

    /// Normalizes one combinational gate into the AIG.
    ///
    /// # Panics
    ///
    /// Panics on sequential gates (callers filter them).
    fn gate_lit(&mut self, g: &Gate) -> AigLit {
        let ins: Vec<AigLit> = g.inputs.iter().map(|&n| self.net_lit(n)).collect();
        let aig = &mut self.aig;
        use GateKind::*;
        match g.kind {
            Const0 => AigLit::FALSE,
            Const1 => AigLit::TRUE,
            Buf => ins[0],
            Inv => !ins[0],
            And2 | And3 | And4 => aig.and_all(&ins),
            Nand2 | Nand3 | Nand4 => !aig.and_all(&ins),
            Or2 | Or3 | Or4 => aig.or_all(&ins),
            Nor2 | Nor3 | Nor4 => !aig.or_all(&ins),
            Xor2 => aig.xor(ins[0], ins[1]),
            Xnor2 => !aig.xor(ins[0], ins[1]),
            Mux2 => aig.mux(ins[0], ins[2], ins[1]),
            Aoi21 => {
                let ab = aig.and(ins[0], ins[1]);
                !aig.or(ab, ins[2])
            }
            Oai21 => {
                let ab = aig.or(ins[0], ins[1]);
                !aig.and(ab, ins[2])
            }
            Aoi22 => {
                let ab = aig.and(ins[0], ins[1]);
                let cd = aig.and(ins[2], ins[3]);
                !aig.or(ab, cd)
            }
            Oai22 => {
                let ab = aig.or(ins[0], ins[1]);
                let cd = aig.or(ins[2], ins[3]);
                !aig.and(ab, cd)
            }
            Dff { .. } => unreachable!("sequential gates are handled by the caller"),
        }
    }
}
