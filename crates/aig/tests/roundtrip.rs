//! Property tests: `Netlist -> Aig -> Netlist` round trips (with rewriting
//! and SAT sweeping applied) are proved equivalent to the original by the
//! workspace's independent equivalence engines — SAT miters and BDDs for
//! combinational designs, BMC plus random lockstep for sequential ones.

use std::collections::HashMap;
use synthir_aig::{from_netlist, optimize, to_netlist, SweepOptions};
use synthir_netlist::{GateKind, NetId, Netlist, ResetKind};
use synthir_sim::{check_comb_equiv, check_seq_equiv, EquivEngine, EquivOptions};

/// Deterministic xorshift for the generators.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random combinational netlist over every gate kind, `n_in` input bits
/// and `n_out` outputs.
fn random_comb_netlist(n_in: usize, n_out: usize, gates: usize, seed: u64) -> Netlist {
    let mut rng = Rng(seed | 1);
    let mut nl = Netlist::new(format!("rand{seed}"));
    let mut nets: Vec<NetId> = nl.add_input("x", n_in);
    let kinds: Vec<GateKind> = GateKind::all_combinational()
        .into_iter()
        .filter(|k| !k.is_constant())
        .collect();
    // Sprinkle the constants in occasionally too.
    nets.push(nl.const0());
    nets.push(nl.const1());
    for _ in 0..gates {
        let kind = kinds[rng.below(kinds.len())];
        let ins: Vec<NetId> = (0..kind.arity())
            .map(|_| nets[rng.below(nets.len())])
            .collect();
        let y = nl.add_gate(kind, &ins);
        nets.push(y);
    }
    let outs: Vec<NetId> = (0..n_out)
        .map(|_| nets[nets.len() - 1 - rng.below(gates.min(8))])
        .collect();
    nl.add_output("y", &outs);
    nl
}

/// A random sequential netlist: a combinational core plus flop banks
/// covering every reset flavour and both init values.
fn random_seq_netlist(n_in: usize, flops: usize, gates: usize, seed: u64) -> Netlist {
    let mut rng = Rng(seed | 1);
    let mut nl = Netlist::new(format!("randseq{seed}"));
    let rst = nl.add_input("rst", 1)[0];
    let mut nets: Vec<NetId> = nl.add_input("x", n_in);
    // Flop outputs participate in the combinational pool.
    let mut qs: Vec<NetId> = Vec::new();
    for _ in 0..flops {
        let q = nl.add_net();
        qs.push(q);
        nets.push(q);
    }
    let kinds = [
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Inv,
        GateKind::Mux2,
        GateKind::Aoi21,
    ];
    for _ in 0..gates {
        let kind = kinds[rng.below(kinds.len())];
        let ins: Vec<NetId> = (0..kind.arity())
            .map(|_| nets[rng.below(nets.len())])
            .collect();
        nets.push(nl.add_gate(kind, &ins));
    }
    let resets = [ResetKind::None, ResetKind::Sync, ResetKind::Async];
    for (i, &q) in qs.iter().enumerate() {
        let d = nets[nets.len() - 1 - rng.below(gates.min(6))];
        let reset = resets[i % resets.len()];
        let init = i % 2 == 0;
        let kind = GateKind::Dff { reset, init };
        let ins: Vec<NetId> = match reset {
            ResetKind::None => vec![d],
            _ => vec![d, rst],
        };
        nl.attach_gate(kind, &ins, q).unwrap();
    }
    let outs: Vec<NetId> = (0..3)
        .map(|_| nets[nets.len() - 1 - rng.below(5)])
        .collect();
    nl.add_output("y", &outs);
    nl.add_output("q", &qs);
    nl
}

fn sat_opts() -> EquivOptions {
    let mut o = EquivOptions::new();
    o.engine = EquivEngine::Sat;
    o
}

#[test]
fn comb_round_trip_is_equivalent() {
    for seed in 0..24u64 {
        let nl = random_comb_netlist(6, 3, 24, 0xC0 + seed);
        let imp = from_netlist(&nl).unwrap();
        let exp = to_netlist(&imp.aig, &[]);
        // The SAT engine proves the plain round trip…
        let res = check_comb_equiv(&nl, &exp.netlist, &sat_opts()).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: plain round trip");
        // …and the BDD engine independently agrees (6-bit interface).
        let mut bdd = EquivOptions::new();
        bdd.engine = EquivEngine::Bdd;
        let res = check_comb_equiv(&nl, &exp.netlist, &bdd).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: bdd disagrees");
    }
}

#[test]
fn comb_round_trip_with_rewrite_and_sweep_is_equivalent() {
    for seed in 0..16u64 {
        let nl = random_comb_netlist(7, 4, 30, 0x5A0 + seed);
        let imp = from_netlist(&nl).unwrap();
        let (opt, stats) = optimize(&imp.aig, &[], Some(&SweepOptions::default()));
        assert!(
            stats.ands_after <= stats.ands_before,
            "seed {seed}: optimization grew the graph"
        );
        let exp = to_netlist(&opt.aig, &[]);
        let res = check_comb_equiv(&nl, &exp.netlist, &sat_opts()).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: optimized round trip");
    }
}

#[test]
fn seq_round_trip_preserves_flop_semantics() {
    for seed in 0..12u64 {
        let nl = random_seq_netlist(4, 5, 20, 0xF10 + seed);
        let imp = from_netlist(&nl).unwrap();
        let exp = to_netlist(&imp.aig, &[]);
        // Reset flavours and init values survive verbatim.
        let hist = |n: &Netlist| {
            let mut h: HashMap<GateKind, usize> = HashMap::new();
            for (_, g) in n.gates() {
                if g.kind.is_sequential() {
                    *h.entry(g.kind).or_insert(0) += 1;
                }
            }
            h
        };
        let (orig, round) = (hist(&nl), hist(&exp.netlist));
        for (kind, count) in &round {
            assert!(
                orig.get(kind).is_some_and(|c| c >= count),
                "seed {seed}: flop kind {kind:?} appeared from nowhere"
            );
        }
        // BMC proves the first cycles exactly; random lockstep probes deep.
        let res = check_seq_equiv(&nl, &exp.netlist, &sat_opts()).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: BMC found a difference");
        let mut rnd = EquivOptions::new();
        rnd.engine = EquivEngine::Random;
        let res = check_seq_equiv(&nl, &exp.netlist, &rnd).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: lockstep divergence");
    }
}

#[test]
fn seq_round_trip_with_optimization_is_equivalent() {
    for seed in 0..8u64 {
        let nl = random_seq_netlist(4, 4, 18, 0xBEE + seed);
        let imp = from_netlist(&nl).unwrap();
        let (opt, _) = optimize(&imp.aig, &[], Some(&SweepOptions::default()));
        let exp = to_netlist(&opt.aig, &[]);
        let res = check_seq_equiv(&nl, &exp.netlist, &sat_opts()).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: optimized sequential");
        let mut rnd = EquivOptions::new();
        rnd.engine = EquivEngine::Random;
        let res = check_seq_equiv(&nl, &exp.netlist, &rnd).unwrap();
        assert!(res.is_equivalent(), "seed {seed}: lockstep divergence");
    }
}

#[test]
fn round_trip_preserves_ports_and_kept_nets() {
    let nl = random_comb_netlist(5, 2, 12, 99);
    let imp = from_netlist(&nl).unwrap();
    let exp = to_netlist(&imp.aig, &[]);
    let names = |ports: &[synthir_netlist::Port]| -> Vec<(String, usize)> {
        ports
            .iter()
            .map(|p| (p.name.clone(), p.nets.len()))
            .collect()
    };
    assert_eq!(names(nl.inputs()), names(exp.netlist.inputs()));
    assert_eq!(names(nl.outputs()), names(exp.netlist.outputs()));
    // Interior nets marked "keep" survive with nets attached.
    let some_net = nl.gates().next().map(|(_, g)| g.output).unwrap();
    let lit = imp.lits.get(some_net).unwrap();
    let exp = to_netlist(&imp.aig, &[lit]);
    assert!(exp.net_of(lit).is_some());
}

#[test]
fn deep_chain_import_does_not_overflow_the_stack() {
    // 10k-gate inverter chain: the shared visit_cone walk must stay
    // iterative end to end.
    let mut nl = Netlist::new("chain");
    let a = nl.add_input("a", 1)[0];
    let mut n = a;
    for _ in 0..10_000 {
        n = nl.add_gate(GateKind::Inv, &[n]);
    }
    nl.add_output("y", &[n]);
    let imp = from_netlist(&nl).unwrap();
    // The whole chain folds to a single buffered literal.
    assert_eq!(imp.aig.and_count(), 0);
    let exp = to_netlist(&imp.aig, &[]);
    let res = check_comb_equiv(&nl, &exp.netlist, &sat_opts()).unwrap();
    assert!(res.is_equivalent());
}
