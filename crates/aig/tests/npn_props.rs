//! NPN canonicalization property tests: brute-force correctness over the
//! 3- and 4-input functions that actually arise as cut functions of
//! random AIGs — exactly the population the cut-based technology mapper
//! canonicalizes.

use synthir_aig::cuts::enumerate_cuts;
use synthir_aig::npn::{canonicalize, tt_mask, NpnTransform};
use synthir_aig::{Aig, AigLit};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// All permutations of `0..n` padded with identity, n ≤ 4.
fn perms(n: usize) -> Vec<[u8; 4]> {
    let mut out = Vec::new();
    let mut idx = [0u8, 1, 2, 3];
    fn rec(idx: &mut [u8; 4], k: usize, n: usize, out: &mut Vec<[u8; 4]>) {
        if k == n {
            out.push(*idx);
            return;
        }
        for i in k..n {
            idx.swap(k, i);
            rec(idx, k + 1, n, out);
            idx.swap(k, i);
        }
    }
    rec(&mut idx, 0, n, &mut out);
    out
}

/// Collects the distinct support-`n` cut functions of a batch of random
/// AIGs (the support-reduced tables [`enumerate_cuts`] produces).
fn cut_functions(n_vars: usize, seed: u64, rounds: usize) -> Vec<u16> {
    let mut state = seed | 1;
    let mut seen: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
    for _ in 0..rounds {
        let mut g = Aig::new("t");
        let inputs: Vec<AigLit> = (0..5).map(|_| g.add_input()).collect();
        let mut lits = inputs.clone();
        for _ in 0..40 {
            let a = lits[(xorshift(&mut state) % lits.len() as u64) as usize];
            let b = lits[(xorshift(&mut state) % lits.len() as u64) as usize];
            let a = a.with_complement(a.is_complemented() ^ (xorshift(&mut state) & 1 != 0));
            let b = b.with_complement(b.is_complemented() ^ (xorshift(&mut state) & 1 != 0));
            let y = g.and(a, b);
            if !y.is_constant() {
                lits.push(y);
            }
        }
        for cuts in enumerate_cuts(&g, 4, 8) {
            for cut in &cuts {
                if cut.len() == n_vars {
                    seen.insert(cut.tt & tt_mask(n_vars));
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// Exhaustively verifies canonicalization of one function: the returned
/// transform really maps the function onto its canon, *no* transform of
/// the function goes below the canon (minimality, checked over the whole
/// group), and every *distinct variant* in the class canonicalizes to the
/// same representative.
fn check_canon_exhaustively(tt: u16, n: usize) {
    let (canon, t) = canonicalize(tt, n);
    assert_eq!(t.apply(tt, n), canon, "{tt:#06x}: transform is wrong");
    // Walk the full NPN orbit of the function…
    let mut orbit: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
    for perm in perms(n) {
        for flips in 0..1u8 << n {
            for negate in [false, true] {
                let tr = NpnTransform {
                    perm,
                    flips,
                    negate,
                };
                let variant = tr.apply(tt, n);
                // …the canon is the orbit minimum…
                assert!(variant >= canon, "{tt:#06x}: {variant:#06x} below canon");
                orbit.insert(variant);
            }
        }
    }
    // …and members of the orbit canonicalize to it. Full-orbit minimality
    // above is the brute-force core (canon = min over the whole group);
    // class invariance follows from the group structure, so spot-checking
    // a spread of orbit members bounds the quadratic cost without losing
    // the property.
    let orbit: Vec<u16> = orbit.into_iter().collect();
    let step = orbit.len().div_ceil(24).max(1);
    for &variant in orbit.iter().step_by(step) {
        let (vc, vt) = canonicalize(variant, n);
        assert_eq!(
            vc, canon,
            "{tt:#06x}: variant {variant:#06x} canonicalizes differently"
        );
        assert_eq!(vt.apply(variant, n), vc);
    }
}

#[test]
fn three_input_cut_functions_canonicalize_correctly() {
    let fns = cut_functions(3, 0xA5A5_1111_2222_3333, 25);
    assert!(
        fns.len() >= 30,
        "only {} 3-var cut functions found",
        fns.len()
    );
    for tt in fns {
        check_canon_exhaustively(tt, 3);
    }
}

#[test]
fn four_input_cut_functions_canonicalize_correctly() {
    let fns = cut_functions(4, 0x0F0F_9999_CAFE_4444, 25);
    assert!(
        fns.len() >= 40,
        "only {} 4-var cut functions found",
        fns.len()
    );
    for tt in fns {
        check_canon_exhaustively(tt, 4);
    }
}

/// Canonicalization never changes the NPN class of the *library's* cell
/// functions either — the other side of the mapper's matching equation.
#[test]
fn library_cell_functions_canonicalize_correctly() {
    use synthir_netlist::GateKind;
    for kind in GateKind::all_combinational() {
        let n = kind.arity();
        if (2..=4).contains(&n) {
            check_canon_exhaustively(kind.truth_table(), n);
        }
    }
}
