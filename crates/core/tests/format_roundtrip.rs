//! Property tests for the KISS2 interchange format: writing any FSM the
//! random generator can produce and reading it back preserves behaviour.

use proptest::prelude::*;
use synthir_core::format_conv::{from_kiss2, to_kiss2};
use synthir_core::random::random_fsm;
use synthir_core::{FsmSpec, StateId};

/// Checks behavioural equality over every (state, input-minterm) pair,
/// matching states by name (KISS2 carries no state ordering).
fn assert_same_behaviour(a: &FsmSpec, b: &FsmSpec) {
    assert_eq!(a.state_count(), b.state_count());
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_outputs(), b.num_outputs());
    assert_eq!(a.state_name(a.reset_state()), b.state_name(b.reset_state()));
    let b_by_name: std::collections::HashMap<&str, StateId> = (0..b.state_count())
        .map(|i| (b.state_name(StateId(i)), StateId(i)))
        .collect();
    for si in 0..a.state_count() {
        let s = StateId(si);
        let bs = b_by_name[a.state_name(s)];
        for m in 0..1u64 << a.num_inputs() {
            let (an, ao) = a.eval(s, m);
            let (bn, bo) = b.eval(bs, m);
            assert_eq!(
                a.state_name(an),
                b.state_name(bn),
                "state {si} minterm {m}: next state"
            );
            assert_eq!(ao, bo, "state {si} minterm {m}: outputs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KISS2 → FsmSpec → KISS2 on randomized specs: behaviour is preserved
    /// and the second write is a textual fixed point.
    #[test]
    fn kiss2_round_trip_on_random_fsms(
        m in 1usize..5,
        n in 1usize..8,
        s in 2usize..9,
        seed in any::<u64>(),
    ) {
        let spec = random_fsm(m, n, s, seed);
        let text = to_kiss2(&spec);
        let back = from_kiss2(spec.name(), &text).unwrap();
        assert_same_behaviour(&spec, &back);
        let text2 = to_kiss2(&back);
        let back2 = from_kiss2(back.name(), &text2).unwrap();
        prop_assert_eq!(to_kiss2(&back2), text2, "second trip is a fixed point");
    }

    /// The KISS2 trip also preserves hardware behaviour: the re-read spec
    /// lowers to a table module sequentially equivalent to the original's.
    #[test]
    fn kiss2_round_trip_preserves_hardware(seed in any::<u64>()) {
        let spec = random_fsm(2, 4, 5, seed);
        let back = from_kiss2(spec.name(), &to_kiss2(&spec)).unwrap();
        let left = synthir_rtl::elaborate(&spec.to_table_module(false)).unwrap();
        let right = synthir_rtl::elaborate(&back.to_table_module(false)).unwrap();
        let res = synthir_sim::check_seq_equiv(
            &left.netlist,
            &right.netlist,
            &synthir_sim::EquivOptions::new(),
        )
        .unwrap();
        prop_assert!(res.is_equivalent(), "{:?}", res);
    }
}
