//! Annotation derivation.
//!
//! The paper's conclusion: "it is fairly straightforward to automatically
//! determine these state annotations from the FSM tables (or, equivalently,
//! microcode)" — and modules "will have to convey any specialized
//! signal-encoding information to other modules". These helpers are that
//! derivation: FSM metadata and value sets computed *from the tables*, never
//! hand-written.

use crate::fsm::FsmSpec;
use crate::microcode::MicroProgram;
use synthir_logic::ValueSet;
use synthir_rtl::FsmInfo;

/// Derives `fsm_state_vector`-style metadata from an FSM spec (binary
/// encoding over declared states).
pub fn fsm_info_of(spec: &FsmSpec) -> FsmInfo {
    spec.fsm_info()
}

/// Derives the value set of the FSM's *output bus* across all reachable
/// (state, input) pairs — usable to annotate a registered copy of the
/// outputs in a downstream module.
pub fn fsm_output_values(spec: &FsmSpec) -> ValueSet {
    let mut values = std::collections::BTreeSet::new();
    for s in spec.reachable_states() {
        for m in 0..1u64 << spec.num_inputs() {
            let (_, o) = spec.eval(s, m);
            values.insert(o);
        }
    }
    ValueSet::from_values(spec.num_outputs() as u32, values)
}

/// Derives per-field value sets from a microprogram: the annotation a
/// generator attaches to registered field outputs (includes the reset/fill
/// value zero).
pub fn field_values(program: &MicroProgram) -> Vec<(String, ValueSet)> {
    program
        .field_value_sets()
        .into_iter()
        .zip(program.format().fields())
        .map(|(mut set, f)| {
            set.insert(0);
            (f.name.clone(), ValueSet::from_values(f.width as u32, set))
        })
        .collect()
}

/// Derives the µPC value set (reachable program addresses).
pub fn upc_values(program: &MicroProgram) -> ValueSet {
    ValueSet::range(program.upc_bits() as u32, program.instrs().len() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::{Field, MicrocodeFormat, NextCtl};
    use crate::random::{random_fsm, random_microprogram};

    #[test]
    fn fsm_info_has_all_states() {
        let f = random_fsm(2, 4, 5, 1);
        let info = fsm_info_of(&f);
        assert_eq!(info.codes.len(), 5);
        assert_eq!(info.reset_code, 0);
        assert_eq!(info.state_reg, "state");
    }

    #[test]
    fn output_values_cover_behaviour() {
        let f = random_fsm(2, 3, 3, 5);
        let vs = fsm_output_values(&f);
        // Every observed output must be in the set.
        for s in f.reachable_states() {
            for m in 0..4 {
                let (_, o) = f.eval(s, m);
                assert!(vs.contains(o));
            }
        }
    }

    #[test]
    fn field_values_track_program_plus_zero() {
        let fmt = MicrocodeFormat::new(vec![Field::one_hot("u", 4)]);
        let mut p = crate::microcode::MicroProgram::new("t", fmt, 0);
        p.must_emit(&[("u", 0b0100)], NextCtl::Jump(1));
        p.must_emit(&[("u", 0b1000)], NextCtl::Halt);
        let fv = field_values(&p);
        assert_eq!(fv.len(), 1);
        assert_eq!(fv[0].0, "u");
        assert!(fv[0].1.contains(0b0100));
        assert!(fv[0].1.contains(0));
        assert!(!fv[0].1.contains(0b0001));
    }

    #[test]
    fn upc_range() {
        let p = random_microprogram(5, 1, 2);
        let vs = upc_values(&p);
        assert!(vs.contains(4));
        assert!(!vs.contains(5));
    }
}
