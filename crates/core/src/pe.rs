//! The partial-evaluation driver: compile a flexible controller and its
//! specialized instance and compare areas.

use crate::CoreError;
use synthir_netlist::{AreaReport, Library};
use synthir_rtl::{elaborate, Module};
use synthir_synth::flow::{compile, CompileResult};
use synthir_synth::SynthOptions;

/// The compared pair produced by [`evaluate_pair`].
#[derive(Clone, Debug)]
pub struct PeComparison {
    /// Compile result of the flexible (programmable) design.
    pub flexible: CompileResult,
    /// Compile result of the specialized (bound) design.
    pub specialized: CompileResult,
}

impl PeComparison {
    /// Area saved by specialization, as a fraction of the flexible total.
    pub fn savings(&self) -> f64 {
        let full = self.flexible.area.total();
        if full == 0.0 {
            return 0.0;
        }
        (full - self.specialized.area.total()) / full
    }

    /// The two area reports `(flexible, specialized)`.
    pub fn areas(&self) -> (AreaReport, AreaReport) {
        (self.flexible.area, self.specialized.area)
    }
}

/// Compiles a flexible module and its specialized counterpart with the same
/// options and library — one data point of the paper's methodology.
///
/// # Errors
///
/// Returns [`CoreError`] if either module fails elaboration or synthesis.
pub fn evaluate_pair(
    flexible: &Module,
    specialized: &Module,
    lib: &Library,
    opts: &SynthOptions,
) -> Result<PeComparison, CoreError> {
    let ef = elaborate(flexible)?;
    let es = elaborate(specialized)?;
    let flexible = compile(&ef, lib, opts)?;
    let specialized = compile(&es, lib, opts)?;
    Ok(PeComparison {
        flexible,
        specialized,
    })
}

/// Compiles a single module (convenience wrapper used by the experiment
/// harness).
///
/// # Errors
///
/// Returns [`CoreError`] if the module fails elaboration or synthesis.
pub fn compile_module(
    module: &Module,
    lib: &Library,
    opts: &SynthOptions,
) -> Result<CompileResult, CoreError> {
    let e = elaborate(module)?;
    Ok(compile(&e, lib, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_fsm;

    #[test]
    fn specialization_saves_most_of_the_area() {
        let spec = random_fsm(2, 4, 4, 11);
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let cmp = evaluate_pair(
            &spec.to_programmable_module(),
            &spec.to_table_module(false),
            &lib,
            &opts,
        )
        .unwrap();
        assert!(
            cmp.savings() > 0.5,
            "expected >50% savings, got {:.1}%",
            100.0 * cmp.savings()
        );
        // The flexible design keeps its config storage.
        assert!(cmp.flexible.area.sequential > cmp.specialized.area.sequential);
    }

    #[test]
    fn specialized_fsm_behaves_like_its_spec() {
        let spec = random_fsm(2, 3, 3, 7);
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let r = compile_module(&spec.to_table_module(false), &lib, &opts).unwrap();
        let mut sim = synthir_sim::SeqSim::new(&r.netlist).unwrap();
        // Walk the spec alongside the hardware.
        let mut state = spec.reset_state();
        let inputs_seq = [0u64, 3, 1, 2, 3, 0, 1, 3];
        for &inp in &inputs_seq {
            let mut m = std::collections::HashMap::new();
            m.insert("in".to_string(), inp as u128);
            let out = sim.peek(&m);
            let (_, expected_out) = spec.eval(state, inp);
            assert_eq!(out["out"], expected_out, "state {state:?} input {inp}");
            sim.step(&m);
            state = spec.eval(state, inp).0;
        }
    }
}
