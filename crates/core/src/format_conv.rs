//! Interchange-format conversion: microcode re-encoding and KISS2 FSM I/O.
//!
//! "In practice, microcode format varies from being inefficiently encoded
//! but more readable (known as horizontal microcode) or efficiently encoded
//! but difficult to read (vertical). Many microprogramming systems employ
//! horizontal formats to simplify the paths between the controllers and the
//! datapath units." — the paper, §II-B.
//!
//! Two families of converters live here:
//!
//! * [`verticalize`] / [`horizontalize`] re-encode one-hot (horizontal)
//!   microcode fields into packed binary (vertical) and back, rewriting
//!   both the format and every microinstruction. Verticalizing shrinks the
//!   control store; the cost is the decoder logic the paper's horizontal
//!   formats avoid — which is exactly the trade the [`crate::sequencer`]
//!   experiments can measure.
//! * [`to_kiss2`] / [`from_kiss2`] move [`FsmSpec`]s through the KISS2
//!   textual FSM format of the SIS/MCNC benchmark lineage, so external
//!   state machines can be fed into the synthesis flow and generator-built
//!   ones exported to other tools.

use crate::fsm::FsmSpec;
use crate::microcode::{Field, FieldEncoding, MicroInstr, MicroProgram, MicrocodeFormat};
use crate::{CoreError, StateId};
use std::collections::HashMap;
use synthir_logic::cube::Literal;
use synthir_logic::Cube;

/// Converts every one-hot field to a packed binary field of
/// `ceil(log2(lanes + 1))` bits (value 0 = no lane, `i + 1` = lane `i`).
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] if an instruction has a non-one-hot value
/// in a one-hot field.
pub fn verticalize(p: &MicroProgram) -> Result<MicroProgram, CoreError> {
    let fields: Vec<Field> = p
        .format()
        .fields()
        .iter()
        .map(|f| match f.encoding {
            FieldEncoding::Binary => f.clone(),
            FieldEncoding::OneHot => Field::binary(f.name.clone(), packed_bits(f.width)),
        })
        .collect();
    let format = MicrocodeFormat::new(fields);
    let mut out = MicroProgram::new(format!("{}_vertical", p.name()), format, p.num_conds());
    for (addr, i) in p.instrs().iter().enumerate() {
        let mut values = Vec::with_capacity(i.fields.len());
        for (f, &v) in p.format().fields().iter().zip(&i.fields) {
            match f.encoding {
                FieldEncoding::Binary => values.push(v),
                FieldEncoding::OneHot => {
                    if v == 0 {
                        values.push(0);
                    } else if v.count_ones() == 1 {
                        values.push(v.trailing_zeros() as u128 + 1);
                    } else {
                        return Err(CoreError::BadSpec(format!(
                            "instr {addr}: field `{}` not one-hot",
                            f.name
                        )));
                    }
                }
            }
        }
        out.push(MicroInstr {
            fields: values,
            next: i.next,
        });
    }
    Ok(out)
}

/// Converts packed binary lane-select fields (as produced by
/// [`verticalize`]) back to one-hot fields of `lanes` lanes.
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] if a value exceeds the lane count.
pub fn horizontalize(
    p: &MicroProgram,
    lanes_of: &dyn Fn(&str) -> Option<usize>,
) -> Result<MicroProgram, CoreError> {
    let fields: Vec<Field> = p
        .format()
        .fields()
        .iter()
        .map(|f| match lanes_of(&f.name) {
            Some(lanes) => Field::one_hot(f.name.clone(), lanes),
            None => f.clone(),
        })
        .collect();
    let format = MicrocodeFormat::new(fields);
    let mut out = MicroProgram::new(format!("{}_horizontal", p.name()), format, p.num_conds());
    for (addr, i) in p.instrs().iter().enumerate() {
        let mut values = Vec::with_capacity(i.fields.len());
        for (f, &v) in p.format().fields().iter().zip(&i.fields) {
            match lanes_of(&f.name) {
                None => values.push(v),
                Some(lanes) => {
                    if v == 0 {
                        values.push(0);
                    } else if (v as usize) <= lanes {
                        values.push(1u128 << (v - 1));
                    } else {
                        return Err(CoreError::BadSpec(format!(
                            "instr {addr}: lane {v} exceeds {lanes} lanes of `{}`",
                            f.name
                        )));
                    }
                }
            }
        }
        out.push(MicroInstr {
            fields: values,
            next: i.next,
        });
    }
    Ok(out)
}

/// Serializes an FSM to KISS2 text.
///
/// The emitted file carries `.i`/`.o`/`.p`/`.s`/`.r` headers and one
/// `<input-cube> <state> <next-state> <outputs>` term per transition rule,
/// in priority order, followed by one all-don't-care catch-all term per
/// state encoding its default transition. Input cubes and output patterns
/// are printed MSB first (leftmost column = highest bit), matching the PLA
/// convention of `synthir_logic::pla`.
///
/// Reading the text back with [`from_kiss2`] reproduces the spec's
/// behaviour exactly (term order is match priority), though not necessarily
/// its internal rule structure — defaults become explicit catch-all rules.
pub fn to_kiss2(spec: &FsmSpec) -> String {
    let universe = Cube::universe(spec.num_inputs());
    // One term list per state: the rules in priority order, truncated at the
    // first catch-all (later rules and the default can never match), plus an
    // explicit catch-all for the default if none was present.
    let state_terms = |s: StateId| -> Vec<(Cube, StateId, u128)> {
        let mut v = Vec::new();
        for r in spec.rules(s) {
            v.push((r.guard, r.next, r.outputs));
            if r.guard == universe {
                return v;
            }
        }
        let (dn, dout) = spec.default_of(s);
        v.push((universe, dn, dout));
        v
    };
    // Emit state blocks in the order a reader would intern the names (reset
    // first, then first mention, then any never-mentioned orphans), so that
    // write → read → write is a textual fixed point.
    let mut order: Vec<StateId> = vec![spec.reset_state()];
    let mut seen = vec![false; spec.state_count()];
    seen[spec.reset_state().0] = true;
    let mut idx = 0;
    loop {
        while idx < order.len() {
            for (_, next, _) in state_terms(order[idx]) {
                if !seen[next.0] {
                    seen[next.0] = true;
                    order.push(next);
                }
            }
            idx += 1;
        }
        match (0..spec.state_count()).find(|&si| !seen[si]) {
            Some(orphan) => {
                seen[orphan] = true;
                order.push(StateId(orphan));
            }
            None => break,
        }
    }
    let mut terms: Vec<(Cube, StateId, StateId, u128)> = Vec::new();
    for &s in &order {
        for (guard, next, outputs) in state_terms(s) {
            terms.push((guard, s, next, outputs));
        }
    }
    let mut out = format!("# {}\n", spec.name());
    out.push_str(&format!(
        ".i {}\n.o {}\n.p {}\n.s {}\n.r {}\n",
        spec.num_inputs(),
        spec.num_outputs(),
        terms.len(),
        spec.state_count(),
        spec.state_name(spec.reset_state())
    ));
    for (guard, s, next, outputs) in terms {
        out.push_str(&format!(
            "{} {} {} {}\n",
            render_cube(&guard),
            spec.state_name(s),
            spec.state_name(next),
            render_outputs(outputs, spec.num_outputs())
        ));
    }
    out.push_str(".e\n");
    out
}

/// Parses KISS2 text into an [`FsmSpec`] named `name`.
///
/// Supported directives: `.i`, `.o`, `.p` (advisory), `.s` (advisory),
/// `.r`, `.e`/`.end`, and `#` comments. States are created in order of
/// first mention; term order is match priority (the first matching term per
/// state wins, KISS2 files in the MCNC tradition have disjoint terms so the
/// order is then irrelevant). Output `-` columns read as 0. The reset state
/// defaults to the first-mentioned state when `.r` is absent.
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] with a line-numbered message for unknown
/// directives, arity mismatches, or characters outside the cube alphabet.
pub fn from_kiss2(name: impl Into<String>, text: &str) -> Result<FsmSpec, CoreError> {
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut reset_name: Option<String> = None;
    // Terms are collected first: state ids are assigned on first mention,
    // and rules can reference states defined later in the file.
    let mut states: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut terms: Vec<(Cube, usize, usize, u128)> = Vec::new();
    let intern = |name: &str, states: &mut Vec<String>, index: &mut HashMap<String, usize>| {
        *index.entry(name.to_string()).or_insert_with(|| {
            states.push(name.to_string());
            states.len() - 1
        })
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| CoreError::BadSpec(format!("kiss2 line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let dir = parts.next().unwrap_or("");
            let arg = parts.next();
            match dir {
                "i" => {
                    let n: usize = arg
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(|| err(".i needs a count".into()))?;
                    if n > 16 {
                        return Err(err(format!("{n} inputs exceed the 16-bit FSM limit")));
                    }
                    ni = Some(n);
                }
                "o" => {
                    let n: usize = arg
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(|| err(".o needs a count".into()))?;
                    if n > 128 {
                        return Err(err(format!("{n} outputs exceed the 128-bit FSM limit")));
                    }
                    no = Some(n);
                }
                "p" | "s" => {} // advisory counts
                "r" => {
                    let s = arg.ok_or_else(|| err(".r needs a state name".into()))?;
                    reset_name = Some(s.to_string());
                    intern(s, &mut states, &mut index);
                }
                "e" | "end" => break,
                other => return Err(err(format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        let ni = ni.ok_or_else(|| err("term before .i".into()))?;
        let no = no.ok_or_else(|| err("term before .o".into()))?;
        let cols: Vec<&str> = line.split_whitespace().collect();
        // An input-less FSM (ni == 0) has an empty input column, which
        // whitespace-splitting collapses away — its terms have 3 columns.
        let (inp, cur, next, outp) = match (ni, cols.as_slice()) {
            (0, [cur, next, outp]) => ("", *cur, *next, *outp),
            (_, [inp, cur, next, outp]) => (*inp, *cur, *next, *outp),
            _ => {
                return Err(err(format!(
                    "expected `input state next output`, got {} columns",
                    cols.len()
                )))
            }
        };
        if inp.chars().count() != ni {
            return Err(err(format!(
                "input cube `{inp}` has {} columns, expected {ni}",
                inp.chars().count()
            )));
        }
        if outp.chars().count() != no {
            return Err(err(format!(
                "output pattern `{outp}` has {} columns, expected {no}",
                outp.chars().count()
            )));
        }
        let guard = parse_cube(inp, ni).map_err(&err)?;
        let outputs = parse_outputs(outp, no).map_err(&err)?;
        let cur = intern(cur, &mut states, &mut index);
        let next = intern(next, &mut states, &mut index);
        terms.push((guard, cur, next, outputs));
    }
    let (ni, no) = match (ni, no) {
        (Some(i), Some(o)) => (i, o),
        _ => return Err(CoreError::BadSpec("kiss2: missing .i/.o header".into())),
    };
    if states.is_empty() {
        return Err(CoreError::BadSpec("kiss2: no states defined".into()));
    }
    let mut spec = FsmSpec::new(name, ni, no);
    for s in &states {
        spec.add_state(s.clone());
    }
    for (guard, cur, next, outputs) in terms {
        spec.add_rule(StateId(cur), guard, StateId(next), outputs);
    }
    if let Some(r) = reset_name {
        spec.set_reset(StateId(index[&r]));
    }
    Ok(spec)
}

/// Renders a guard cube MSB first (`-` = don't care).
fn render_cube(cube: &Cube) -> String {
    (0..cube.nvars())
        .rev()
        .map(|v| match cube.literal(v) {
            Literal::Positive => '1',
            Literal::Negative => '0',
            Literal::DontCare => '-',
        })
        .collect()
}

/// Parses an MSB-first cube column string.
fn parse_cube(inp: &str, ni: usize) -> Result<Cube, String> {
    let mut value = 0u64;
    let mut care = 0u64;
    for (pos, ch) in inp.chars().enumerate() {
        let bit = ni - 1 - pos;
        match ch {
            '1' => {
                value |= 1 << bit;
                care |= 1 << bit;
            }
            '0' => care |= 1 << bit,
            '-' => {}
            other => return Err(format!("bad input character `{other}`")),
        }
    }
    Ok(Cube::new(ni, value, care))
}

/// Renders an output word MSB first.
fn render_outputs(outputs: u128, no: usize) -> String {
    (0..no)
        .rev()
        .map(|b| if outputs >> b & 1 != 0 { '1' } else { '0' })
        .collect()
}

/// Parses an MSB-first output pattern (`-` reads as 0).
fn parse_outputs(outp: &str, no: usize) -> Result<u128, String> {
    let mut v = 0u128;
    for (pos, ch) in outp.chars().enumerate() {
        let bit = no - 1 - pos;
        match ch {
            '1' => v |= 1 << bit,
            '0' | '-' => {}
            other => return Err(format!("bad output character `{other}`")),
        }
    }
    Ok(v)
}

/// Bits to encode `lanes + 1` values (0 = idle).
fn packed_bits(lanes: usize) -> usize {
    let mut b = 1;
    while (1usize << b) < lanes + 1 {
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::NextCtl;
    use crate::random::random_microprogram;

    #[test]
    fn vertical_is_narrower() {
        let p = random_microprogram(12, 2, 1);
        let v = verticalize(&p).unwrap();
        assert!(v.format().width() < p.format().width());
        v.validate().unwrap();
        // The one-hot "unit" field (4 lanes) packs into 3 bits.
        let unit = v.format().fields()[0].clone();
        assert_eq!(unit.width, 3);
        assert_eq!(unit.encoding, FieldEncoding::Binary);
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = random_microprogram(10, 1, 7);
        let v = verticalize(&p).unwrap();
        let h = horizontalize(&v, &|name| if name == "unit" { Some(4) } else { None }).unwrap();
        assert_eq!(h.format().width(), p.format().width());
        for (a, b) in p.instrs().iter().zip(h.instrs()) {
            assert_eq!(a.fields, b.fields);
            assert_eq!(a.next, b.next);
        }
    }

    #[test]
    fn traces_agree_through_conversion() {
        let p = random_microprogram(8, 2, 3);
        let v = verticalize(&p).unwrap();
        let conds = [0u64, 1, 2, 3, 0, 1];
        let th = p.simulate(&conds, 6);
        let tv = v.simulate(&conds, 6);
        for (cycle, (hf, vf)) in th.iter().zip(&tv).enumerate() {
            // Binary fields identical; one-hot field decodes to same lane.
            assert_eq!(hf[1], vf[1], "cycle {cycle} imm");
            let lane_h = if hf[0] == 0 {
                0
            } else {
                hf[0].trailing_zeros() as u128 + 1
            };
            assert_eq!(lane_h, vf[0], "cycle {cycle} unit lane");
        }
    }

    #[test]
    fn rejects_bad_values() {
        use crate::microcode::{Field, MicrocodeFormat};
        let fmt = MicrocodeFormat::new(vec![Field::binary("u", 3)]);
        let mut p = MicroProgram::new("t", fmt, 0);
        p.must_emit(&[("u", 5)], NextCtl::Halt);
        let e = horizontalize(&p, &|_| Some(4)).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }

    /// Behavioral equality of two FSM specs over every (state, minterm).
    /// States are matched by name — KISS2 carries no state ordering, so the
    /// reader may assign different ids than the writer saw.
    fn specs_behave_identically(a: &FsmSpec, b: &FsmSpec) {
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        assert_eq!(
            a.state_name(a.reset_state()),
            b.state_name(b.reset_state()),
            "reset state"
        );
        let b_by_name: std::collections::HashMap<&str, StateId> = (0..b.state_count())
            .map(|i| (b.state_name(StateId(i)), StateId(i)))
            .collect();
        for si in 0..a.state_count() {
            let s = StateId(si);
            let bs = b_by_name[a.state_name(s)];
            for m in 0..1u64 << a.num_inputs() {
                let (an, ao) = a.eval(s, m);
                let (bn, bo) = b.eval(bs, m);
                assert_eq!(a.state_name(an), b.state_name(bn), "state {si} minterm {m}");
                assert_eq!(ao, bo, "state {si} minterm {m} outputs");
            }
        }
    }

    #[test]
    fn kiss2_round_trips_behaviour() {
        let spec = crate::random::random_fsm(3, 5, 6, 99);
        let text = to_kiss2(&spec);
        assert!(text.contains(".i 3"));
        assert!(text.contains(".o 5"));
        assert!(text.contains(".s 6"));
        let back = from_kiss2(spec.name(), &text).unwrap();
        specs_behave_identically(&spec, &back);
        // And a second trip is textually stable.
        let once = to_kiss2(&back);
        let twice = to_kiss2(&from_kiss2(back.name(), &once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn kiss2_parses_hand_written_file() {
        let text = "\
# toggler
.i 1
.o 1
.s 2
.r off
1 off on 1
- off off 0
1 on off 0
- on on 1
.e
";
        let f = from_kiss2("toggler", text).unwrap();
        assert_eq!(f.state_count(), 2);
        assert_eq!(f.state_name(f.reset_state()), "off");
        let off = f.reset_state();
        let (on, out) = f.eval(off, 1);
        assert_eq!(f.state_name(on), "on");
        assert_eq!(out, 1);
        assert_eq!(f.eval(off, 0).0, off, "catch-all holds state");
        assert_eq!(f.eval(on, 0).1, 1);
    }

    #[test]
    fn kiss2_priority_is_term_order() {
        // Overlapping terms: the first match must win, as in FsmSpec rules.
        let text = ".i 2\n.o 1\n.r a\n1- a b 1\n-1 a a 0\n-- a a 0\n-- b b 0\n";
        let f = from_kiss2("p", text).unwrap();
        let a = f.reset_state();
        assert_eq!(f.state_name(f.eval(a, 0b10).0), "b");
        assert_eq!(f.eval(a, 0b10).1, 1);
        assert_eq!(f.state_name(f.eval(a, 0b01).0), "a");
    }

    #[test]
    fn kiss2_errors_carry_line_numbers() {
        let e = from_kiss2("t", ".i 1\n.o 1\n1 a b\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        let e = from_kiss2("t", "1 a b 1\n").unwrap_err();
        assert!(e.to_string().contains("term before .i"), "{e}");
        let e = from_kiss2("t", ".i 1\n.o 1\n.zap\n").unwrap_err();
        assert!(e.to_string().contains(".zap"), "{e}");
        let e = from_kiss2("t", ".i 1\n.o 1\nx a b 1\n").unwrap_err();
        assert!(e.to_string().contains("bad input character"), "{e}");
        let e = from_kiss2("t", ".i 22\n").unwrap_err();
        assert!(e.to_string().contains("16-bit"), "{e}");
    }

    #[test]
    fn kiss2_round_trips_input_less_fsm() {
        // A 0-input sequencer (pure counter) has empty input columns; the
        // writer and reader must still agree.
        let mut f = FsmSpec::new("counter", 0, 2);
        let a = f.add_state("a");
        let b = f.add_state("b");
        f.set_default(a, b, 0b01);
        f.set_default(b, a, 0b10);
        f.set_reset(a);
        let text = to_kiss2(&f);
        let back = from_kiss2("counter", &text).unwrap();
        specs_behave_identically(&f, &back);
    }

    #[test]
    fn kiss2_output_dash_reads_as_zero() {
        let f = from_kiss2("t", ".i 1\n.o 3\n.r s\n- s s 1-1\n").unwrap();
        assert_eq!(f.eval(f.reset_state(), 0).1, 0b101);
    }

    #[test]
    fn kiss2_lowers_through_the_flow() {
        let spec = from_kiss2(
            "tl",
            ".i 1\n.o 3\n.r g\n1 g y 001\n- g g 001\n1 y r 010\n- y y 010\n1 r g 100\n- r r 100\n",
        )
        .unwrap();
        let t = synthir_rtl::elaborate(&spec.to_table_module(false)).unwrap();
        let c = synthir_rtl::elaborate(&spec.to_case_module()).unwrap();
        let res =
            synthir_sim::check_seq_equiv(&t.netlist, &c.netlist, &synthir_sim::EquivOptions::new())
                .unwrap();
        assert!(res.is_equivalent(), "{res:?}");
    }
}
