//! Horizontal ↔ vertical microcode format conversion.
//!
//! "In practice, microcode format varies from being inefficiently encoded
//! but more readable (known as horizontal microcode) or efficiently encoded
//! but difficult to read (vertical). Many microprogramming systems employ
//! horizontal formats to simplify the paths between the controllers and the
//! datapath units." — the paper, §II-B.
//!
//! These converters re-encode one-hot (horizontal) fields into packed
//! binary (vertical) and back, rewriting both the format and every
//! microinstruction. Verticalizing shrinks the control store; the cost is
//! the decoder logic the paper's horizontal formats avoid — which is
//! exactly the trade the [`crate::sequencer`] experiments can now measure.

use crate::microcode::{Field, FieldEncoding, MicroInstr, MicroProgram, MicrocodeFormat};
use crate::CoreError;

/// Converts every one-hot field to a packed binary field of
/// `ceil(log2(lanes + 1))` bits (value 0 = no lane, `i + 1` = lane `i`).
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] if an instruction has a non-one-hot value
/// in a one-hot field.
pub fn verticalize(p: &MicroProgram) -> Result<MicroProgram, CoreError> {
    let fields: Vec<Field> = p
        .format()
        .fields()
        .iter()
        .map(|f| match f.encoding {
            FieldEncoding::Binary => f.clone(),
            FieldEncoding::OneHot => Field::binary(f.name.clone(), packed_bits(f.width)),
        })
        .collect();
    let format = MicrocodeFormat::new(fields);
    let mut out = MicroProgram::new(format!("{}_vertical", p.name()), format, p.num_conds());
    for (addr, i) in p.instrs().iter().enumerate() {
        let mut values = Vec::with_capacity(i.fields.len());
        for (f, &v) in p.format().fields().iter().zip(&i.fields) {
            match f.encoding {
                FieldEncoding::Binary => values.push(v),
                FieldEncoding::OneHot => {
                    if v == 0 {
                        values.push(0);
                    } else if v.count_ones() == 1 {
                        values.push(v.trailing_zeros() as u128 + 1);
                    } else {
                        return Err(CoreError::BadSpec(format!(
                            "instr {addr}: field `{}` not one-hot",
                            f.name
                        )));
                    }
                }
            }
        }
        out.push(MicroInstr {
            fields: values,
            next: i.next,
        });
    }
    Ok(out)
}

/// Converts packed binary lane-select fields (as produced by
/// [`verticalize`]) back to one-hot fields of `lanes` lanes.
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] if a value exceeds the lane count.
pub fn horizontalize(
    p: &MicroProgram,
    lanes_of: &dyn Fn(&str) -> Option<usize>,
) -> Result<MicroProgram, CoreError> {
    let fields: Vec<Field> = p
        .format()
        .fields()
        .iter()
        .map(|f| match lanes_of(&f.name) {
            Some(lanes) => Field::one_hot(f.name.clone(), lanes),
            None => f.clone(),
        })
        .collect();
    let format = MicrocodeFormat::new(fields);
    let mut out = MicroProgram::new(format!("{}_horizontal", p.name()), format, p.num_conds());
    for (addr, i) in p.instrs().iter().enumerate() {
        let mut values = Vec::with_capacity(i.fields.len());
        for (f, &v) in p.format().fields().iter().zip(&i.fields) {
            match lanes_of(&f.name) {
                None => values.push(v),
                Some(lanes) => {
                    if v == 0 {
                        values.push(0);
                    } else if (v as usize) <= lanes {
                        values.push(1u128 << (v - 1));
                    } else {
                        return Err(CoreError::BadSpec(format!(
                            "instr {addr}: lane {v} exceeds {lanes} lanes of `{}`",
                            f.name
                        )));
                    }
                }
            }
        }
        out.push(MicroInstr {
            fields: values,
            next: i.next,
        });
    }
    Ok(out)
}

/// Bits to encode `lanes + 1` values (0 = idle).
fn packed_bits(lanes: usize) -> usize {
    let mut b = 1;
    while (1usize << b) < lanes + 1 {
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::NextCtl;
    use crate::random::random_microprogram;

    #[test]
    fn vertical_is_narrower() {
        let p = random_microprogram(12, 2, 1);
        let v = verticalize(&p).unwrap();
        assert!(v.format().width() < p.format().width());
        v.validate().unwrap();
        // The one-hot "unit" field (4 lanes) packs into 3 bits.
        let unit = v.format().fields()[0].clone();
        assert_eq!(unit.width, 3);
        assert_eq!(unit.encoding, FieldEncoding::Binary);
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = random_microprogram(10, 1, 7);
        let v = verticalize(&p).unwrap();
        let h = horizontalize(&v, &|name| if name == "unit" { Some(4) } else { None }).unwrap();
        assert_eq!(h.format().width(), p.format().width());
        for (a, b) in p.instrs().iter().zip(h.instrs()) {
            assert_eq!(a.fields, b.fields);
            assert_eq!(a.next, b.next);
        }
    }

    #[test]
    fn traces_agree_through_conversion() {
        let p = random_microprogram(8, 2, 3);
        let v = verticalize(&p).unwrap();
        let conds = [0u64, 1, 2, 3, 0, 1];
        let th = p.simulate(&conds, 6);
        let tv = v.simulate(&conds, 6);
        for (cycle, (hf, vf)) in th.iter().zip(&tv).enumerate() {
            // Binary fields identical; one-hot field decodes to same lane.
            assert_eq!(hf[1], vf[1], "cycle {cycle} imm");
            let lane_h = if hf[0] == 0 {
                0
            } else {
                hf[0].trailing_zeros() as u128 + 1
            };
            assert_eq!(lane_h, vf[0], "cycle {cycle} unit lane");
        }
    }

    #[test]
    fn rejects_bad_values() {
        use crate::microcode::{Field, MicrocodeFormat};
        let fmt = MicrocodeFormat::new(vec![Field::binary("u", 3)]);
        let mut p = MicroProgram::new("t", fmt, 0);
        p.emit(&[("u", 5)], NextCtl::Halt);
        let e = horizontalize(&p, &|_| Some(4)).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }
}
