//! Symbolic finite-state-machine specifications.

use crate::CoreError;
use synthir_logic::Cube;
use synthir_rtl::{Expr, FsmInfo, Memory, Module, RegReset, Register, ResetKind};

/// A state handle within an [`FsmSpec`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// One prioritized transition rule: when `guard` matches the inputs, go to
/// `next` and drive `outputs` (Mealy-style).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Input condition (cube over the FSM's input bits).
    pub guard: Cube,
    /// Successor state.
    pub next: StateId,
    /// Output bits asserted while the rule fires.
    pub outputs: u128,
}

#[derive(Clone, Debug)]
struct StateSpec {
    name: String,
    rules: Vec<Rule>,
    default_next: StateId,
    default_outputs: u128,
}

/// A symbolic FSM: named states, `m` input bits, `n` output bits, and
/// per-state prioritized transition rules with a required default.
///
/// This is the generator-facing controller description of the paper: it can
/// be lowered to the *table-based* coding style
/// ([`FsmSpec::to_table_module`]) or the *direct* style
/// ([`FsmSpec::to_case_module`]), with or without the FSM annotations whose
/// effect Fig. 6 measures.
#[derive(Clone, Debug)]
pub struct FsmSpec {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    states: Vec<StateSpec>,
    reset: StateId,
}

impl FsmSpec {
    /// Creates an FSM with `m` input bits and `n` output bits.
    ///
    /// # Panics
    ///
    /// Panics if `m > 16` or `n > 128`.
    pub fn new(name: impl Into<String>, num_inputs: usize, num_outputs: usize) -> Self {
        assert!(num_inputs <= 16, "at most 16 input bits supported");
        assert!(num_outputs <= 128, "at most 128 output bits supported");
        FsmSpec {
            name: name.into(),
            num_inputs,
            num_outputs,
            states: Vec::new(),
            reset: StateId(0),
        }
    }

    /// FSM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input bits.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output bits.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Adds a state whose default behaviour is to stay put with all-zero
    /// outputs; returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(self.states.len());
        self.states.push(StateSpec {
            name: name.into(),
            rules: Vec::new(),
            default_next: id,
            default_outputs: 0,
        });
        id
    }

    /// Sets the reset state.
    pub fn set_reset(&mut self, s: StateId) -> &mut Self {
        self.reset = s;
        self
    }

    /// The reset state.
    pub fn reset_state(&self) -> StateId {
        self.reset
    }

    /// Adds a prioritized rule to a state.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range or the guard arity differs from the
    /// input count.
    pub fn add_rule(&mut self, state: StateId, guard: Cube, next: StateId, outputs: u128) {
        assert!(state.0 < self.states.len(), "bad state id");
        assert!(next.0 < self.states.len(), "bad next-state id");
        assert_eq!(guard.nvars(), self.num_inputs, "guard arity");
        self.states[state.0].rules.push(Rule {
            guard,
            next,
            outputs,
        });
    }

    /// Sets a state's default transition (fires when no rule matches).
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn set_default(&mut self, state: StateId, next: StateId, outputs: u128) {
        assert!(state.0 < self.states.len(), "bad state id");
        assert!(next.0 < self.states.len(), "bad next-state id");
        self.states[state.0].default_next = next;
        self.states[state.0].default_outputs = outputs;
    }

    /// Builds an FSM from dense next-state and output tables:
    /// `next[s][i]` / `out[s][i]` for every state `s` and input minterm `i`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadSpec`] on ragged tables or out-of-range
    /// next states.
    pub fn from_dense(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        next: &[Vec<usize>],
        out: &[Vec<u128>],
    ) -> Result<Self, CoreError> {
        let s = next.len();
        if out.len() != s || s == 0 {
            return Err(CoreError::BadSpec("table state counts differ".into()));
        }
        let mut spec = FsmSpec::new(name, num_inputs, num_outputs);
        for i in 0..s {
            spec.add_state(format!("s{i}"));
        }
        for (si, (nrow, orow)) in next.iter().zip(out).enumerate() {
            if nrow.len() != 1 << num_inputs || orow.len() != 1 << num_inputs {
                return Err(CoreError::BadSpec(format!(
                    "state {si}: expected {} minterm entries",
                    1 << num_inputs
                )));
            }
            for (m, (&nx, &ov)) in nrow.iter().zip(orow).enumerate() {
                if nx >= s {
                    return Err(CoreError::BadSpec(format!(
                        "state {si} minterm {m}: next {nx} out of range"
                    )));
                }
                spec.add_rule(
                    StateId(si),
                    Cube::minterm(num_inputs, m as u64),
                    StateId(nx),
                    ov,
                );
            }
        }
        Ok(spec)
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// A state's prioritized rules, in match order.
    pub fn rules(&self, s: StateId) -> &[Rule] {
        &self.states[s.0].rules
    }

    /// A state's default transition `(next, outputs)` — what fires when no
    /// rule matches.
    pub fn default_of(&self, s: StateId) -> (StateId, u128) {
        let st = &self.states[s.0];
        (st.default_next, st.default_outputs)
    }

    /// A state's name.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.states[s.0].name
    }

    /// Bits needed to encode the states in binary.
    pub fn state_bits(&self) -> usize {
        let mut b = 1;
        while (1usize << b) < self.states.len() {
            b += 1;
        }
        b
    }

    /// Evaluates one step: the successor state and outputs for a state and
    /// input minterm.
    pub fn eval(&self, state: StateId, input: u64) -> (StateId, u128) {
        let s = &self.states[state.0];
        for r in &s.rules {
            if r.guard.contains_minterm(input) {
                return (r.next, r.outputs);
            }
        }
        (s.default_next, s.default_outputs)
    }

    /// The states reachable from reset.
    pub fn reachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![self.reset];
        seen[self.reset.0] = true;
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for m in 0..1u64 << self.num_inputs {
                let (n, _) = self.eval(s, m);
                if !seen[n.0] {
                    seen[n.0] = true;
                    stack.push(n);
                }
            }
        }
        out.sort();
        out
    }

    /// Lowers the FSM to table words: `(next_words, out_words)`, addressed
    /// by `state_code | (input << state_bits)`. Rows for unused state codes
    /// are filled with zeros — the "whatever the script wrote there" filler
    /// the paper's table-based experiments inherit.
    pub fn to_table_words(&self) -> (Vec<u128>, Vec<u128>) {
        let sb = self.state_bits();
        let depth = 1usize << (sb + self.num_inputs);
        let mut next_words = vec![0u128; depth];
        let mut out_words = vec![0u128; depth];
        for addr in 0..depth {
            let code = addr & ((1 << sb) - 1);
            let input = (addr >> sb) as u64;
            if code < self.states.len() {
                let (n, o) = self.eval(StateId(code), input);
                next_words[addr] = n.0 as u128;
                out_words[addr] = o;
            }
        }
        (next_words, out_words)
    }

    /// The FSM metadata (`fsm_state_vector` equivalent) derived from the
    /// spec, in binary encoding over the declared states.
    pub fn fsm_info(&self) -> FsmInfo {
        FsmInfo {
            state_reg: "state".into(),
            codes: (0..self.states.len() as u128).collect(),
            reset_code: self.reset.0 as u128,
        }
    }

    /// Lowers to the *table-based* coding style of the paper's Fig. 2: a
    /// next-state memory and an output memory addressed by
    /// `{inputs, state}`. With `annotated` the generator additionally
    /// attaches the FSM metadata (the paper's `set_fsm_state_vector`
    /// work-around), enabling re-encoding in the synthesis flow.
    pub fn to_table_module(&self, annotated: bool) -> Module {
        let sb = self.state_bits();
        let (next_words, out_words) = self.to_table_words();
        let mut m = Module::new(format!("{}_table", self.name));
        m.add_input("in", self.num_inputs);
        m.add_memory(Memory {
            name: "next_table".into(),
            width: sb,
            depth: next_words.len(),
            contents: Some(next_words),
            write_port: None,
        });
        m.add_memory(Memory {
            name: "out_table".into(),
            width: self.num_outputs,
            depth: out_words.len(),
            contents: Some(out_words),
            write_port: None,
        });
        let addr = Expr::concat(vec![Expr::reference("state"), Expr::reference("in")]);
        m.add_register(Register {
            name: "state".into(),
            width: sb,
            next: Expr::read_mem("next_table", addr.clone()),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: self.reset.0 as u128,
            },
        });
        m.add_output("out", self.num_outputs, Expr::read_mem("out_table", addr));
        if annotated {
            m.set_fsm(self.fsm_info());
        }
        m
    }

    /// Lowers to the fully flexible (runtime-programmable) table style: both
    /// tables live in writable configuration memories with a shared write
    /// port (`cfg_addr`/`cfg_next`/`cfg_out`/`cfg_wen`).
    pub fn to_programmable_module(&self) -> Module {
        let sb = self.state_bits();
        let depth = 1usize << (sb + self.num_inputs);
        let mut m = Module::new(format!("{}_flex", self.name));
        m.add_input("in", self.num_inputs);
        m.add_input("cfg_addr", sb + self.num_inputs);
        m.add_input("cfg_next", sb);
        m.add_input("cfg_out", self.num_outputs);
        m.add_input("cfg_wen", 1);
        m.add_memory(Memory {
            name: "next_table".into(),
            width: sb,
            depth,
            contents: None,
            write_port: Some(("cfg_addr".into(), "cfg_next".into(), "cfg_wen".into())),
        });
        m.add_memory(Memory {
            name: "out_table".into(),
            width: self.num_outputs,
            depth,
            contents: None,
            write_port: Some(("cfg_addr".into(), "cfg_out".into(), "cfg_wen".into())),
        });
        let addr = Expr::concat(vec![Expr::reference("state"), Expr::reference("in")]);
        m.add_register(Register {
            name: "state".into(),
            width: sb,
            next: Expr::read_mem("next_table", addr.clone()),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: self.reset.0 as u128,
            },
        });
        m.add_output("out", self.num_outputs, Expr::read_mem("out_table", addr));
        m
    }

    /// Lowers to the *direct* coding style: per-bit sum-of-products logic
    /// minimized from the tables (with unused state codes as don't-cares),
    /// with the FSM metadata attached — modelling the tool-recommended
    /// case-statement idiom that synthesis recognizes automatically.
    pub fn to_case_module(&self) -> Module {
        let sb = self.state_bits();
        let nvars = sb + self.num_inputs;
        assert!(nvars <= 20, "case-style FSM too wide to minimize");
        let mut m = Module::new(format!("{}_case", self.name));
        m.add_input("in", self.num_inputs);
        let addr = Expr::concat(vec![Expr::reference("state"), Expr::reference("in")]);
        m.add_wire("sel", nvars, addr);

        let dc = synthir_logic::TruthTable::from_fn(nvars, |mm| {
            (mm & ((1 << sb) - 1)) >= self.states.len()
        });
        // Build the per-bit truth tables for next-state and output logic,
        // then hand the whole multi-output PLA to the batch minimizer: each
        // bit is an independent job, minimized concurrently under the
        // `parallel` feature (identical results to the serial path).
        let bit_tt = |bit_fn: &dyn Fn(usize) -> bool| -> synthir_logic::TruthTable {
            synthir_logic::TruthTable::from_fn(nvars, bit_fn)
        };
        let mut tts: Vec<synthir_logic::TruthTable> = Vec::with_capacity(sb + self.num_outputs);
        for b in 0..sb {
            tts.push(bit_tt(&|mm| {
                let code = mm & ((1 << sb) - 1);
                if code >= self.states.len() {
                    return false;
                }
                let input = (mm >> sb) as u64;
                let (n, _) = self.eval(StateId(code), input);
                n.0 >> b & 1 != 0
            }));
        }
        for b in 0..self.num_outputs {
            tts.push(bit_tt(&|mm| {
                let code = mm & ((1 << sb) - 1);
                if code >= self.states.len() {
                    return false;
                }
                let input = (mm >> sb) as u64;
                let (_, o) = self.eval(StateId(code), input);
                o >> b & 1 != 0
            }));
        }
        let covers = synthir_logic::espresso::minimize_tt_batch(
            &tts,
            Some(&dc),
            &synthir_logic::espresso::EspressoOptions::default(),
        );
        let mut exprs = covers.iter().map(|c| cover_expr_on("sel", c));
        let next_bits: Vec<Expr> = (0..sb).map(|_| exprs.next().expect("next bit")).collect();
        let out_bits: Vec<Expr> = (0..self.num_outputs)
            .map(|_| exprs.next().expect("output bit"))
            .collect();
        m.add_register(Register {
            name: "state".into(),
            width: sb,
            next: Expr::concat(next_bits),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: self.reset.0 as u128,
            },
        });
        m.add_output("out", self.num_outputs, Expr::concat(out_bits));
        m.set_fsm(self.fsm_info());
        m
    }
}

/// [`synthir_rtl::styles::cover_expr`] generalized to an arbitrary bus name.
pub fn cover_expr_on(bus: &str, cover: &synthir_logic::Cover) -> Expr {
    use synthir_logic::cube::Literal;
    if cover.is_empty() {
        return Expr::bit(false);
    }
    let mut terms: Vec<Expr> = Vec::new();
    for cube in cover.cubes() {
        let mut lits: Vec<Expr> = Vec::new();
        for v in 0..cube.nvars() {
            match cube.literal(v) {
                Literal::DontCare => {}
                Literal::Positive => lits.push(Expr::reference(bus).index(v)),
                Literal::Negative => lits.push(Expr::reference(bus).index(v).not()),
            }
        }
        let term = if lits.is_empty() {
            Expr::bit(true)
        } else {
            let mut acc = lits.remove(0);
            for l in lits {
                acc = acc.and(l);
            }
            acc
        };
        terms.push(term);
    }
    let mut acc = terms.remove(0);
    for t in terms {
        acc = acc.or(t);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Traffic light: GREEN -> YELLOW (on `expire`) -> RED -> GREEN.
    fn traffic() -> FsmSpec {
        let mut f = FsmSpec::new("traffic", 1, 3);
        let g = f.add_state("green");
        let y = f.add_state("yellow");
        let r = f.add_state("red");
        // Output bit per lamp.
        f.set_default(g, g, 0b001);
        f.set_default(y, y, 0b010);
        f.set_default(r, r, 0b100);
        let expire = Cube::new(1, 1, 1);
        f.add_rule(g, expire, y, 0b001);
        f.add_rule(y, expire, r, 0b010);
        f.add_rule(r, expire, g, 0b100);
        f.set_reset(g);
        f
    }

    #[test]
    fn eval_steps_through_states() {
        let f = traffic();
        let (s1, o1) = f.eval(StateId(0), 1);
        assert_eq!(s1, StateId(1));
        assert_eq!(o1, 0b001);
        let (s2, _) = f.eval(s1, 0);
        assert_eq!(s2, s1, "default holds state");
    }

    #[test]
    fn reachability() {
        let mut f = traffic();
        let orphan = f.add_state("orphan");
        assert_eq!(f.reachable_states().len(), 3);
        assert!(!f.reachable_states().contains(&orphan));
    }

    #[test]
    fn table_words_layout() {
        let f = traffic();
        let (next, out) = f.to_table_words();
        let sb = f.state_bits();
        assert_eq!(next.len(), 1 << (sb + 1));
        // state 0 (green), input 1 -> yellow (1).
        let addr = 1 << sb;
        assert_eq!(next[addr], 1);
        assert_eq!(out[addr], 0b001);
        // Unused code 3 rows are zero-filled.
        let addr3 = 3;
        assert_eq!(next[addr3], 0);
    }

    #[test]
    fn lowerings_elaborate() {
        let f = traffic();
        for m in [
            f.to_table_module(false),
            f.to_table_module(true),
            f.to_case_module(),
            f.to_programmable_module(),
        ] {
            let e = synthir_rtl::elaborate(&m).expect("elaborates");
            assert!(e.netlist.num_gates() > 0);
        }
        // Annotated table carries FSM metadata; plain does not.
        assert!(f.to_table_module(true).fsm.is_some());
        assert!(f.to_table_module(false).fsm.is_none());
        assert!(f.to_case_module().fsm.is_some());
    }

    #[test]
    fn table_and_case_styles_behave_identically() {
        let f = traffic();
        let t = synthir_rtl::elaborate(&f.to_table_module(false)).unwrap();
        let c = synthir_rtl::elaborate(&f.to_case_module()).unwrap();
        let res =
            synthir_sim::check_seq_equiv(&t.netlist, &c.netlist, &synthir_sim::EquivOptions::new())
                .unwrap();
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn dense_construction_validates() {
        let bad = FsmSpec::from_dense("x", 1, 1, &[vec![0, 7]], &[vec![0, 0]]);
        assert!(matches!(bad, Err(CoreError::BadSpec(_))));
        let good = FsmSpec::from_dense(
            "x",
            1,
            1,
            &[vec![1, 0], vec![0, 1]],
            &[vec![0, 1], vec![1, 0]],
        )
        .unwrap();
        assert_eq!(good.state_count(), 2);
        assert_eq!(good.eval(StateId(0), 0), (StateId(1), 0));
    }

    #[test]
    fn rule_priority() {
        let mut f = FsmSpec::new("p", 2, 1);
        let a = f.add_state("a");
        let b = f.add_state("b");
        let c = f.add_state("c");
        // First matching rule wins: input bit0 -> b, else bit1 -> c.
        f.add_rule(a, Cube::new(2, 0b01, 0b01), b, 1);
        f.add_rule(a, Cube::new(2, 0b10, 0b10), c, 0);
        assert_eq!(f.eval(a, 0b11).0, b);
        assert_eq!(f.eval(a, 0b10).0, c);
        assert_eq!(f.eval(a, 0b00).0, a);
    }
}
