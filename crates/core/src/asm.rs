//! A tiny microcode assembler.
//!
//! The paper argues microcode survives as a controller IR partly because
//! "design flows \[can\] continue using existing microprogramming tools".
//! This module is such a tool: a line-oriented assembler for
//! [`MicroProgram`]s, so controllers can be written as text:
//!
//! ```text
//! ; dma engine
//! idle:  nop                          ; wait
//!        jnz start, copy
//!        jmp idle
//! copy:  set engine=0b0001, burst=7
//!        set engine=0b0010, burst=7
//!        jnz more, copy
//!        set irq=1
//!        jmp idle
//! ```
//!
//! Each line is `[label:] op [args] [; comment]` with ops:
//! `nop` (no fields, fall through), `set f=v, ...` (assign fields, fall
//! through), `jmp label`, `jnz cond, label` (cond-jump, may follow a `set`
//! on the same line via `set ... ; jnz` being two lines), `halt`.

use crate::microcode::{MicroInstr, MicroProgram, MicrocodeFormat, NextCtl};
use crate::CoreError;
use std::collections::HashMap;

/// Assembles source text into a microprogram.
///
/// Condition names are given in `conds` (index = condition input number).
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] with a line-numbered message on syntax
/// errors, unknown fields/labels/conditions, or overflowing values.
pub fn assemble(
    name: &str,
    format: MicrocodeFormat,
    conds: &[&str],
    source: &str,
) -> Result<MicroProgram, CoreError> {
    let mut lines: Vec<(usize, Option<String>, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let no_comment = raw.split(';').next().unwrap_or("").trim();
        if no_comment.is_empty() {
            continue;
        }
        let (label, rest) = match no_comment.split_once(':') {
            Some((l, r)) => (Some(l.trim().to_string()), r.trim().to_string()),
            None => (None, no_comment.to_string()),
        };
        lines.push((lineno + 1, label, rest));
    }
    // First pass: label addresses.
    let mut labels: HashMap<String, usize> = HashMap::new();
    for (addr, (lineno, label, _)) in lines.iter().enumerate() {
        if let Some(l) = label {
            if labels.insert(l.clone(), addr).is_some() {
                return Err(CoreError::BadSpec(format!(
                    "line {lineno}: duplicate label `{l}`"
                )));
            }
        }
    }
    // Second pass: instructions.
    let mut p = MicroProgram::new(name, format, conds.len());
    for (addr, (lineno, _, text)) in lines.iter().enumerate() {
        let (body, flow_suffix) = match text.split_once('|') {
            Some((b, f)) => (b.trim(), Some(f.trim())),
            None => (text.trim(), None),
        };
        let (op, args) = match body.split_once(char::is_whitespace) {
            Some((o, a)) => (o.trim(), a.trim()),
            None => (body, ""),
        };
        let err = |msg: String| CoreError::BadSpec(format!("line {lineno}: {msg}"));
        let lookup_label = |l: &str| {
            labels
                .get(l)
                .copied()
                .ok_or_else(|| err(format!("unknown label `{l}`")))
        };
        let mut fields = vec![0u128; p.format().fields().len()];
        let mut next = NextCtl::Seq;
        match op {
            "nop" => {
                if !args.is_empty() {
                    return Err(err("nop takes no arguments".into()));
                }
            }
            "halt" => {
                if !args.is_empty() {
                    return Err(err("halt takes no arguments".into()));
                }
                next = NextCtl::Halt;
            }
            "jmp" => {
                next = NextCtl::Jump(lookup_label(args)?);
            }
            "jnz" => {
                let (c, l) = args
                    .split_once(',')
                    .ok_or_else(|| err("jnz needs `cond, label`".into()))?;
                let cond = conds
                    .iter()
                    .position(|&n| n == c.trim())
                    .ok_or_else(|| err(format!("unknown condition `{}`", c.trim())))?;
                next = NextCtl::CondJump {
                    cond,
                    target: lookup_label(l.trim())?,
                };
            }
            "set" => {
                for assign in args.split(',') {
                    let (f, v) = assign
                        .split_once('=')
                        .ok_or_else(|| err(format!("bad assignment `{assign}`")))?;
                    let fi = p
                        .format()
                        .field_index(f.trim())
                        .ok_or_else(|| err(format!("unknown field `{}`", f.trim())))?;
                    fields[fi] = parse_value(v.trim()).map_err(&err)?;
                }
            }
            other => return Err(err(format!("unknown op `{other}`"))),
        }
        if let Some(flow) = flow_suffix {
            if !matches!(next, NextCtl::Seq) {
                return Err(err("flow suffix on a flow op".into()));
            }
            let (fop, fargs) = match flow.split_once(char::is_whitespace) {
                Some((o, a)) => (o.trim(), a.trim()),
                None => (flow, ""),
            };
            next = match fop {
                "jmp" => NextCtl::Jump(lookup_label(fargs)?),
                "jnz" => {
                    let (c, l) = fargs
                        .split_once(',')
                        .ok_or_else(|| err("jnz needs `cond, label`".into()))?;
                    let cond = conds
                        .iter()
                        .position(|&n| n == c.trim())
                        .ok_or_else(|| err(format!("unknown condition `{}`", c.trim())))?;
                    NextCtl::CondJump {
                        cond,
                        target: lookup_label(l.trim())?,
                    }
                }
                "halt" => NextCtl::Halt,
                other => return Err(err(format!("unknown flow op `{other}`"))),
            };
        }
        // A `set` line may be the last: make it halt implicitly if it would
        // fall off the end.
        if matches!(next, NextCtl::Seq) && addr + 1 == lines.len() {
            next = NextCtl::Halt;
        }
        p.push(MicroInstr { fields, next });
    }
    p.validate()?;
    Ok(p)
}

fn parse_value(s: &str) -> Result<u128, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u128::from_str_radix(hex, 16)
    } else if let Some(bin) = s.strip_prefix("0b") {
        u128::from_str_radix(bin, 2)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("bad value `{s}`"))
}

/// Disassembles a program back to assembler text (labels `L<addr>` are
/// emitted only where targeted).
pub fn disassemble(p: &MicroProgram, conds: &[&str]) -> String {
    let mut targets: Vec<bool> = vec![false; p.instrs().len()];
    for i in p.instrs() {
        match i.next {
            NextCtl::Jump(t) | NextCtl::CondJump { target: t, .. } => targets[t] = true,
            _ => {}
        }
    }
    let mut out = String::new();
    for (addr, i) in p.instrs().iter().enumerate() {
        let label = if targets[addr] {
            format!("L{addr}:")
        } else {
            String::new()
        };
        let assigns: Vec<String> = i
            .fields
            .iter()
            .zip(p.format().fields())
            .filter(|(&v, _)| v != 0)
            .map(|(&v, f)| format!("{}={:#x}", f.name, v))
            .collect();
        let body = if assigns.is_empty() {
            "nop".to_string()
        } else {
            format!("set {}", assigns.join(", "))
        };
        let flow = match i.next {
            NextCtl::Seq => String::new(),
            NextCtl::Jump(t) => format!(" | jmp L{t}"),
            NextCtl::CondJump { cond, target } => {
                let cname = conds.get(cond).copied().unwrap_or("?");
                format!(" | jnz {cname}, L{target}")
            }
            NextCtl::Halt => " | halt".to_string(),
        };
        out.push_str(&format!("{label:8}{body}{flow}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::Field;

    fn fmt() -> MicrocodeFormat {
        MicrocodeFormat::new(vec![
            Field::one_hot("engine", 4),
            Field::binary("burst", 3),
            Field::binary("irq", 1),
        ])
    }

    const DMA: &str = r"
; dma copy loop
idle:  nop
       jnz start, copy   ; wait for start
       jmp idle
copy:  set engine=0b0001, burst=7
       set engine=0b0010, burst=7
       jnz more, copy
       set irq=1
       jmp idle
";

    #[test]
    fn assembles_and_runs() {
        let p = assemble("dma", fmt(), &["start", "more"], DMA).unwrap();
        assert_eq!(p.instrs().len(), 8);
        p.validate().unwrap();
        // Reference-simulate: start on cycle 1.
        // Path: 0 (nop), 1 (jnz taken), 3, 4, 5 (jnz not taken), 6 (irq).
        let trace = p.simulate(&[0, 1, 0, 0, 0, 0, 0], 7);
        assert_eq!(trace[2][0], 0b0001);
        assert_eq!(trace[3][0], 0b0010);
        assert_eq!(trace[5][2], 1, "irq");
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble("t", fmt(), &[], "a: jmp b\nb: jmp a").unwrap();
        assert_eq!(p.instrs()[0].next, NextCtl::Jump(1));
        assert_eq!(p.instrs()[1].next, NextCtl::Jump(0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", fmt(), &[], "nop\nbogus 3").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = assemble("t", fmt(), &[], "jmp nowhere").unwrap_err();
        assert!(e.to_string().contains("nowhere"));
        let e = assemble("t", fmt(), &["c"], "set engine=5\nhalt").unwrap_err();
        // 5 is not one-hot... wait: 5 = 0b101 has two bits -> validate fails.
        assert!(e.to_string().contains("one-hot"), "{e}");
    }

    #[test]
    fn trailing_set_becomes_halt() {
        let p = assemble("t", fmt(), &[], "set irq=1").unwrap();
        assert_eq!(p.instrs()[0].next, NextCtl::Halt);
    }

    #[test]
    fn disassemble_round_trips_semantics() {
        let p = assemble("dma", fmt(), &["start", "more"], DMA).unwrap();
        let text = disassemble(&p, &["start", "more"]);
        let p2 = assemble("dma2", fmt(), &["start", "more"], &text).unwrap();
        assert_eq!(p.instrs().len(), p2.instrs().len());
        for (a, b) in p.instrs().iter().zip(p2.instrs()) {
            assert_eq!(a.fields, b.fields);
            assert_eq!(a.next, b.next);
        }
    }
}
