//! # synthir-core
//!
//! Controller intermediate representations for chip generators — the
//! primary contribution of *Kelley et al., "Intermediate Representations for
//! Controllers in Chip Generators" (DATE 2011)*.
//!
//! The paper argues that a chip generator should describe flexible
//! controllers as **tables** — FSM transition tables and microprograms —
//! and emit them in a form that a partial-evaluating synthesis flow can
//! specialize into efficient fixed logic. This crate is that representation
//! layer:
//!
//! * [`fsm::FsmSpec`] — a symbolic finite-state-machine specification that
//!   can be lowered to either the *table-based* coding style (lookup
//!   memories for next-state and output logic, Fig. 2 of the paper) or the
//!   *direct* style the tool's FSM extraction understands;
//! * [`microcode`] — microinstruction formats (horizontal/vertical fields),
//!   microprograms, and sequencing control (the paper's Fig. 3);
//! * [`sequencer`] — lowering of a microprogram to a microcode sequencer
//!   module: µPC, microcode store (programmable or bound), condition
//!   dispatch, and per-field outputs;
//! * [`anno`] — derivation of the annotations the paper shows are needed
//!   for full optimization: `fsm_state_vector` metadata and value-set
//!   annotations of non-optimally-encoded (e.g. one-hot) output fields,
//!   both computed *from the tables themselves*;
//! * [`pe`] — the partial-evaluation driver: compile the flexible and the
//!   specialized instance of a controller and compare;
//! * [`random`] — the seeded random design generators used by the paper's
//!   experiments (their Python scripts, reborn).
//!
//! ## Example: a specialized FSM matches its table
//!
//! ```
//! use synthir_core::fsm::FsmSpec;
//! use synthir_core::random::random_fsm;
//!
//! let spec = random_fsm(2, 3, 5, 42);
//! assert_eq!(spec.state_count(), 5);
//! let module = spec.to_table_module(false);
//! let elab = synthir_rtl::elaborate(&module).unwrap();
//! assert!(elab.netlist.num_gates() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anno;
pub mod asm;
pub mod format_conv;
pub mod fsm;
pub mod microcode;
pub mod minimize;
pub mod pe;
pub mod random;
pub mod sequencer;

pub use fsm::{FsmSpec, StateId};
pub use microcode::{Field, FieldEncoding, MicroInstr, MicroProgram, MicrocodeFormat, NextCtl};

/// Errors produced by the controller-IR layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A specification failed validation.
    BadSpec(String),
    /// RTL elaboration failed.
    Rtl(synthir_rtl::RtlError),
    /// Synthesis failed.
    Synth(synthir_synth::SynthError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadSpec(e) => write!(f, "bad specification: {e}"),
            CoreError::Rtl(e) => write!(f, "rtl error: {e}"),
            CoreError::Synth(e) => write!(f, "synthesis error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::BadSpec(_) => None,
            CoreError::Rtl(e) => Some(e),
            CoreError::Synth(e) => Some(e),
        }
    }
}

impl From<synthir_rtl::RtlError> for CoreError {
    fn from(e: synthir_rtl::RtlError) -> Self {
        CoreError::Rtl(e)
    }
}

impl From<synthir_synth::SynthError> for CoreError {
    fn from(e: synthir_synth::SynthError) -> Self {
        CoreError::Synth(e)
    }
}
