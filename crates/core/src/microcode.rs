//! Microinstruction formats and microprograms (the paper's Fig. 3).

use crate::CoreError;

/// How a microcode field encodes its value.
///
/// Horizontal formats (the common choice, per the paper) store fully decoded
/// — often one-hot — fields to avoid decoding logic between controller and
/// datapath; vertical formats pack values in binary. The paper's state
/// propagation discussion is precisely about recovering the optimization
/// opportunities that one-hot (non-optimally encoded) fields hide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FieldEncoding {
    /// Packed binary value.
    Binary,
    /// One lane per value; exactly one (or zero) bit set.
    OneHot,
}

/// One field of a microinstruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field name (becomes an output bus of the sequencer).
    pub name: String,
    /// Field width in bits.
    pub width: usize,
    /// Encoding convention for the field's values.
    pub encoding: FieldEncoding,
}

impl Field {
    /// A binary field.
    pub fn binary(name: impl Into<String>, width: usize) -> Self {
        Field {
            name: name.into(),
            width,
            encoding: FieldEncoding::Binary,
        }
    }

    /// A one-hot field with `lanes` lanes.
    pub fn one_hot(name: impl Into<String>, lanes: usize) -> Self {
        Field {
            name: name.into(),
            width: lanes,
            encoding: FieldEncoding::OneHot,
        }
    }
}

/// A microinstruction format: an ordered list of fields.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MicrocodeFormat {
    fields: Vec<Field>,
}

impl MicrocodeFormat {
    /// Creates a format from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        MicrocodeFormat { fields }
    }

    /// The fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Total packed width of all fields.
    pub fn width(&self) -> usize {
        self.fields.iter().map(|f| f.width).sum()
    }

    /// The bit offset of field `i` within the packed word.
    pub fn offset(&self, i: usize) -> usize {
        self.fields[..i].iter().map(|f| f.width).sum()
    }

    /// Finds a field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Validates the format itself: at least one field, no duplicate or
    /// empty names, no zero-width fields, and a total packed width that
    /// fits the `u128` words the sequencer and table lowering use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadSpec`] describing the first problem found.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.fields.is_empty() {
            return Err(CoreError::BadSpec("format has no fields".into()));
        }
        for (i, f) in self.fields.iter().enumerate() {
            if f.name.is_empty() {
                return Err(CoreError::BadSpec(format!("field {i} has an empty name")));
            }
            if f.width == 0 {
                return Err(CoreError::BadSpec(format!(
                    "field `{}` has zero width",
                    f.name
                )));
            }
            if self.fields[..i].iter().any(|g| g.name == f.name) {
                return Err(CoreError::BadSpec(format!(
                    "duplicate field name `{}`",
                    f.name
                )));
            }
        }
        if self.width() > 128 {
            return Err(CoreError::BadSpec(format!(
                "format is {} bits wide; the limit is 128",
                self.width()
            )));
        }
        Ok(())
    }

    /// Packs per-field values into one word.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs or a value overflows its field.
    pub fn pack(&self, values: &[u128]) -> u128 {
        assert_eq!(values.len(), self.fields.len(), "field count mismatch");
        let mut word = 0u128;
        let mut off = 0;
        for (f, &v) in self.fields.iter().zip(values) {
            if f.width < 128 {
                assert!(v < 1 << f.width, "value overflows field `{}`", f.name);
            }
            word |= v << off;
            off += f.width;
        }
        word
    }

    /// Unpacks a word into per-field values.
    pub fn unpack(&self, word: u128) -> Vec<u128> {
        let mut out = Vec::with_capacity(self.fields.len());
        let mut off = 0;
        for f in &self.fields {
            let mask = if f.width == 128 {
                u128::MAX
            } else {
                (1u128 << f.width) - 1
            };
            out.push(word >> off & mask);
            off += f.width;
        }
        out
    }
}

/// Sequencing control of one microinstruction.
///
/// The expected transition of a microcode sequencer is the trivial increment
/// (`Seq`); jumps and conditional dispatches are flagged explicitly, which
/// is exactly why sequencers need less next-state logic than general FSMs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextCtl {
    /// Fall through to the next microinstruction.
    Seq,
    /// Unconditional jump to an address.
    Jump(usize),
    /// If condition input `cond` is high, jump to `target`, else fall
    /// through.
    CondJump {
        /// Index of the condition input.
        cond: usize,
        /// Jump target address.
        target: usize,
    },
    /// Spin on this microinstruction forever (end of program).
    Halt,
}

/// One microinstruction: field values plus sequencing.
#[derive(Clone, Debug, PartialEq)]
pub struct MicroInstr {
    /// Per-field values, in format order.
    pub fields: Vec<u128>,
    /// Sequencing control.
    pub next: NextCtl,
}

/// A complete microprogram over a format.
#[derive(Clone, Debug)]
pub struct MicroProgram {
    name: String,
    format: MicrocodeFormat,
    instrs: Vec<MicroInstr>,
    num_conds: usize,
}

impl MicroProgram {
    /// Creates an empty program with `num_conds` condition inputs.
    pub fn new(name: impl Into<String>, format: MicrocodeFormat, num_conds: usize) -> Self {
        MicroProgram {
            name: name.into(),
            format,
            instrs: Vec::new(),
            num_conds,
        }
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The microinstruction format.
    pub fn format(&self) -> &MicrocodeFormat {
        &self.format
    }

    /// Number of condition inputs.
    pub fn num_conds(&self) -> usize {
        self.num_conds
    }

    /// The microinstructions.
    pub fn instrs(&self) -> &[MicroInstr] {
        &self.instrs
    }

    /// Appends a microinstruction; returns its address.
    pub fn push(&mut self, instr: MicroInstr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// Appends an instruction built from `(field, value)` pairs; unnamed
    /// fields default to zero.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadSpec`] on unknown field names or a value
    /// that overflows its field, so callers assembling from untrusted text
    /// surface a diagnostic instead of crashing.
    pub fn emit(&mut self, assigns: &[(&str, u128)], next: NextCtl) -> Result<usize, CoreError> {
        let mut values = vec![0u128; self.format.fields().len()];
        for (name, v) in assigns {
            let i = self
                .format
                .field_index(name)
                .ok_or_else(|| CoreError::BadSpec(format!("unknown field `{name}`")))?;
            let width = self.format.fields()[i].width;
            if width < 128 && *v >= 1 << width {
                return Err(CoreError::BadSpec(format!(
                    "value {v:#x} overflows field `{name}` ({width} bits)"
                )));
            }
            values[i] = *v;
        }
        Ok(self.push(MicroInstr {
            fields: values,
            next,
        }))
    }

    /// [`MicroProgram::emit`] for statically-known programs.
    ///
    /// # Panics
    ///
    /// Panics on unknown field names or overflowing values — a programming
    /// error in the builder, not a data error.
    pub fn must_emit(&mut self, assigns: &[(&str, u128)], next: NextCtl) -> usize {
        self.emit(assigns, next).expect("static microprogram")
    }

    /// µPC width for this program.
    pub fn upc_bits(&self) -> usize {
        let mut b = 1;
        while (1usize << b) < self.instrs.len().max(2) {
            b += 1;
        }
        b
    }

    /// Validates targets, condition indices and field values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadSpec`] with a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.format.validate()?;
        if self.instrs.is_empty() {
            return Err(CoreError::BadSpec("empty microprogram".into()));
        }
        for (a, i) in self.instrs.iter().enumerate() {
            if i.fields.len() != self.format.fields().len() {
                return Err(CoreError::BadSpec(format!(
                    "instr {a}: field count mismatch"
                )));
            }
            for (f, &v) in self.format.fields().iter().zip(&i.fields) {
                if f.width < 128 && v >= 1 << f.width {
                    return Err(CoreError::BadSpec(format!(
                        "instr {a}: value {v:#x} overflows field `{}`",
                        f.name
                    )));
                }
                if f.encoding == FieldEncoding::OneHot && v.count_ones() > 1 {
                    return Err(CoreError::BadSpec(format!(
                        "instr {a}: field `{}` is one-hot but has {} bits set",
                        f.name,
                        v.count_ones()
                    )));
                }
            }
            let check_target = |t: usize| {
                if t >= self.instrs.len() {
                    Err(CoreError::BadSpec(format!(
                        "instr {a}: jump target {t} out of range"
                    )))
                } else {
                    Ok(())
                }
            };
            match i.next {
                NextCtl::Seq => {
                    if a + 1 >= self.instrs.len() {
                        return Err(CoreError::BadSpec(format!(
                            "instr {a}: falls off the end of the program"
                        )));
                    }
                }
                NextCtl::Jump(t) => check_target(t)?,
                NextCtl::CondJump { cond, target } => {
                    check_target(target)?;
                    if cond >= self.num_conds {
                        return Err(CoreError::BadSpec(format!(
                            "instr {a}: condition {cond} out of range"
                        )));
                    }
                }
                NextCtl::Halt => {}
            }
        }
        Ok(())
    }

    /// Executes the program in software: from address 0, applying the given
    /// condition values each cycle; returns the per-cycle field values.
    /// A reference model for testing the generated hardware.
    pub fn simulate(&self, conds: &[u64], cycles: usize) -> Vec<Vec<u128>> {
        let mut upc = 0usize;
        let mut trace = Vec::with_capacity(cycles);
        for cycle in 0..cycles {
            let i = &self.instrs[upc];
            trace.push(i.fields.clone());
            let cond_word = conds.get(cycle).copied().unwrap_or(0);
            upc = match i.next {
                NextCtl::Seq => upc + 1,
                NextCtl::Jump(t) => t,
                NextCtl::CondJump { cond, target } => {
                    if cond_word >> cond & 1 != 0 {
                        target
                    } else {
                        upc + 1
                    }
                }
                NextCtl::Halt => upc,
            };
        }
        trace
    }

    /// The distinct values each field takes across the program (used to
    /// derive value-set annotations).
    pub fn field_value_sets(&self) -> Vec<std::collections::BTreeSet<u128>> {
        let nf = self.format.fields().len();
        let mut sets = vec![std::collections::BTreeSet::new(); nf];
        for i in &self.instrs {
            for (fi, &v) in i.fields.iter().enumerate() {
                sets[fi].insert(v);
            }
        }
        // Rows beyond the program length read as zero words.
        if self.instrs.len() < (1 << self.upc_bits()) {
            for s in &mut sets {
                s.insert(0);
            }
        }
        sets
    }

    /// The addresses reachable from address 0 through the program's static
    /// control flow. Rows outside this set (padding, leftover microcode
    /// from other configurations) can never execute — the knowledge behind
    /// the paper's "Manual" unreachable-state optimization.
    pub fn reachable_addresses(&self) -> Vec<usize> {
        if self.instrs.is_empty() {
            return Vec::new();
        }
        let mut seen = vec![false; self.instrs.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut out = Vec::new();
        while let Some(a) = stack.pop() {
            out.push(a);
            let push = |t: usize, seen: &mut Vec<bool>, stack: &mut Vec<usize>| {
                if t < self.instrs.len() && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            };
            match self.instrs[a].next {
                NextCtl::Seq => push(a + 1, &mut seen, &mut stack),
                NextCtl::Jump(t) => push(t, &mut seen, &mut stack),
                NextCtl::CondJump { target, .. } => {
                    push(a + 1, &mut seen, &mut stack);
                    push(target, &mut seen, &mut stack);
                }
                NextCtl::Halt => {}
            }
        }
        out.sort_unstable();
        out
    }

    /// Like [`MicroProgram::field_value_sets`], restricted to reachable
    /// rows (the correct basis for generator-derived annotations when the
    /// table carries unreachable filler).
    pub fn field_value_sets_reachable(&self) -> Vec<std::collections::BTreeSet<u128>> {
        let nf = self.format.fields().len();
        let mut sets = vec![std::collections::BTreeSet::new(); nf];
        for a in self.reachable_addresses() {
            for (fi, &v) in self.instrs[a].fields.iter().enumerate() {
                sets[fi].insert(v);
            }
        }
        sets
    }

    /// Minimized sum-of-products covers of the bound control store: one
    /// cover per packed field bit, as a function of the µPC, with
    /// unreachable addresses (padding rows and dead microcode) as
    /// don't-cares.
    ///
    /// This is the two-level form a fully partially-evaluated control store
    /// converges to; the bits are independent outputs of one PLA, so they
    /// are minimized as a batch (concurrently under `synthir-logic`'s
    /// `parallel` feature, with results identical to the serial path).
    ///
    /// # Panics
    ///
    /// Panics if the µPC is wider than
    /// [`synthir_logic::MAX_TT_INPUTS`] (a microprogram of more than 2^24
    /// rows).
    pub fn minimized_field_covers(&self) -> Vec<synthir_logic::Cover> {
        let abits = self.upc_bits();
        assert!(
            abits <= synthir_logic::MAX_TT_INPUTS,
            "microprogram too long to collapse to truth tables"
        );
        let width = self.format.width();
        let mut reachable = vec![false; self.instrs.len()];
        for a in self.reachable_addresses() {
            reachable[a] = true;
        }
        let dc =
            synthir_logic::TruthTable::from_fn(abits, |a| a >= self.instrs.len() || !reachable[a]);
        let words: Vec<u128> = self
            .instrs
            .iter()
            .map(|i| self.format.pack(&i.fields))
            .collect();
        let tts: Vec<synthir_logic::TruthTable> = (0..width)
            .map(|b| {
                synthir_logic::TruthTable::from_fn(abits, |a| {
                    a < words.len() && words[a] >> b & 1 != 0
                })
            })
            .collect();
        synthir_logic::espresso::minimize_tt_batch(
            &tts,
            Some(&dc),
            &synthir_logic::espresso::EspressoOptions::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt() -> MicrocodeFormat {
        MicrocodeFormat::new(vec![
            Field::one_hot("pipe", 4),
            Field::binary("len", 3),
            Field::binary("go", 1),
        ])
    }

    #[test]
    fn pack_unpack_round_trip() {
        let f = fmt();
        assert_eq!(f.width(), 8);
        assert_eq!(f.offset(1), 4);
        let w = f.pack(&[0b0100, 5, 1]);
        assert_eq!(f.unpack(w), vec![0b0100, 5, 1]);
    }

    #[test]
    #[should_panic(expected = "overflows field")]
    fn pack_checks_width() {
        fmt().pack(&[0, 9, 0]);
    }

    /// Regression: `emit` used to panic on unknown fields, which crashed
    /// `synthir ucode` on bad input instead of printing a diagnostic.
    #[test]
    fn emit_reports_unknown_fields_and_overflow_as_errors() {
        let mut p = MicroProgram::new("t", fmt(), 0);
        let e = p.emit(&[("bogus", 1)], NextCtl::Halt).unwrap_err();
        assert!(e.to_string().contains("unknown field `bogus`"), "{e}");
        let e = p.emit(&[("len", 9)], NextCtl::Halt).unwrap_err();
        assert!(e.to_string().contains("overflows field `len`"), "{e}");
        assert!(p.instrs().is_empty(), "failed emits must not append");
        assert!(p.emit(&[("len", 7)], NextCtl::Halt).is_ok());
    }

    #[test]
    fn format_validation_catches_bad_formats() {
        assert!(MicrocodeFormat::new(vec![]).validate().is_err());
        let dup = MicrocodeFormat::new(vec![Field::binary("a", 1), Field::binary("a", 2)]);
        assert!(dup
            .validate()
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        let zero = MicrocodeFormat::new(vec![Field::binary("a", 0)]);
        assert!(zero
            .validate()
            .unwrap_err()
            .to_string()
            .contains("zero width"));
        let wide = MicrocodeFormat::new(vec![Field::binary("a", 100), Field::binary("b", 100)]);
        assert!(wide.validate().unwrap_err().to_string().contains("128"));
        assert!(fmt().validate().is_ok());
        // Program validation picks the format check up.
        let mut p = MicroProgram::new("t", dup, 0);
        p.push(MicroInstr {
            fields: vec![0, 0],
            next: NextCtl::Halt,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn emit_and_validate() {
        let mut p = MicroProgram::new("t", fmt(), 2);
        p.must_emit(&[("pipe", 0b0001), ("go", 1)], NextCtl::Seq);
        p.must_emit(
            &[("pipe", 0b0010), ("len", 3)],
            NextCtl::CondJump { cond: 0, target: 0 },
        );
        p.must_emit(&[], NextCtl::Halt);
        p.validate().unwrap();
        assert_eq!(p.upc_bits(), 2);
    }

    #[test]
    fn validation_catches_bad_programs() {
        let mut p = MicroProgram::new("t", fmt(), 1);
        assert!(p.validate().is_err()); // empty
        p.must_emit(&[], NextCtl::Jump(5));
        assert!(p.validate().is_err()); // bad target
        let mut p2 = MicroProgram::new("t", fmt(), 1);
        p2.must_emit(&[], NextCtl::Seq);
        assert!(p2.validate().is_err()); // falls off the end
        let mut p3 = MicroProgram::new("t", fmt(), 1);
        p3.must_emit(&[], NextCtl::CondJump { cond: 3, target: 0 });
        assert!(p3.validate().is_err()); // bad condition index
        let mut p4 = MicroProgram::new("t", fmt(), 1);
        p4.push(MicroInstr {
            fields: vec![0b0011, 0, 0],
            next: NextCtl::Halt,
        });
        assert!(p4.validate().is_err()); // one-hot violation
    }

    #[test]
    fn simulate_follows_control_flow() {
        let mut p = MicroProgram::new("t", fmt(), 1);
        p.must_emit(&[("pipe", 0b0001)], NextCtl::Seq);
        p.must_emit(
            &[("pipe", 0b0010)],
            NextCtl::CondJump { cond: 0, target: 0 },
        );
        p.must_emit(&[("pipe", 0b1000)], NextCtl::Halt);
        p.validate().unwrap();
        // Condition low: fall through to halt.
        let t = p.simulate(&[0, 0, 0, 0], 4);
        assert_eq!(t[0][0], 0b0001);
        assert_eq!(t[1][0], 0b0010);
        assert_eq!(t[2][0], 0b1000);
        assert_eq!(t[3][0], 0b1000);
        // Condition high at the branch: loop back.
        let t = p.simulate(&[0, 1, 0, 0], 4);
        assert_eq!(t[2][0], 0b0001);
    }

    #[test]
    fn field_value_sets_include_fill() {
        let mut p = MicroProgram::new("t", fmt(), 1);
        p.must_emit(&[("pipe", 0b0001)], NextCtl::Jump(1));
        p.must_emit(&[("pipe", 0b0010)], NextCtl::Halt);
        let sets = p.field_value_sets();
        // 2 instrs, upc_bits = 1, table exactly full: no zero fill needed;
        // pipe takes {1, 2}.
        assert_eq!(sets[0], [0b0001u128, 0b0010].into_iter().collect());
        let mut p = MicroProgram::new("t", fmt(), 1);
        p.must_emit(&[("pipe", 0b0001)], NextCtl::Jump(1));
        p.must_emit(&[("pipe", 0b0010)], NextCtl::Jump(2));
        p.must_emit(&[("pipe", 0b0100)], NextCtl::Halt);
        let sets = p.field_value_sets();
        // Table depth 4 > 3 instrs: zero fill included.
        assert!(sets[0].contains(&0));
    }

    #[test]
    fn minimized_field_covers_match_store_on_reachable_rows() {
        let mut p = MicroProgram::new("t", fmt(), 1);
        p.must_emit(&[("pipe", 0b0001), ("len", 5)], NextCtl::Seq);
        p.must_emit(
            &[("pipe", 0b0010), ("go", 1)],
            NextCtl::CondJump { cond: 0, target: 0 },
        );
        p.must_emit(&[("pipe", 0b1000), ("len", 2)], NextCtl::Jump(4));
        p.must_emit(&[("pipe", 0b0100)], NextCtl::Halt); // unreachable: 2 jumps past it
        p.must_emit(&[("pipe", 0b0100), ("len", 7)], NextCtl::Halt);
        p.validate().unwrap();
        let covers = p.minimized_field_covers();
        assert_eq!(covers.len(), p.format().width());
        for a in p.reachable_addresses() {
            let word = p.format().pack(&p.instrs()[a].fields);
            for (b, c) in covers.iter().enumerate() {
                assert_eq!(
                    c.eval(a as u64),
                    word >> b & 1 != 0,
                    "address {a}, control bit {b}"
                );
            }
        }
        // Address 3 is unreachable, so the covers are free there — but
        // every cover must still be a function of the 3-bit µPC only.
        for c in &covers {
            assert_eq!(c.nvars(), p.upc_bits());
        }
    }
}
