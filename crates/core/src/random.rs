//! Seeded random design generators — the reproduction of the paper's
//! "Python scripts then generated random configuration parameters".

use crate::fsm::FsmSpec;
use crate::microcode::{Field, MicroInstr, MicroProgram, MicrocodeFormat, NextCtl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random combinational table of `depth` words (`depth` must be a power
/// of two) and `width` output bits, as swept in the paper's Fig. 5
/// experiment.
///
/// # Panics
///
/// Panics if `depth` is not a power of two or `width > 128`.
pub fn random_table(depth: usize, width: usize, seed: u64) -> Vec<u128> {
    assert!(
        depth.is_power_of_two(),
        "table depth must be a power of two"
    );
    assert!(width <= 128, "at most 128 output bits");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF155 ^ ((depth as u64) << 32) ^ width as u64);
    (0..depth).map(|_| random_word(&mut rng, width)).collect()
}

fn random_word(rng: &mut StdRng, width: usize) -> u128 {
    let mut v = 0u128;
    for chunk in 0..width.div_ceil(64) {
        let bits = (width - chunk * 64).min(64);
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        v |= ((rng.gen::<u64>() & mask) as u128) << (chunk * 64);
    }
    v
}

/// A random `s`-state FSM with `m` input bits and `n` output bits, as swept
/// in the Fig. 6 experiment. Transitions and outputs are uniform random per
/// (state, input-minterm); every state is made reachable by forcing state
/// `i` to step to state `i+1` on the all-ones input.
///
/// # Panics
///
/// Panics if `m > 12`, `n > 128`, or `s < 2`.
pub fn random_fsm(m: usize, n: usize, s: usize, seed: u64) -> FsmSpec {
    assert!(m <= 12, "at most 12 input bits");
    assert!(n <= 128, "at most 128 output bits");
    assert!(s >= 2, "at least two states");
    let mut rng = StdRng::seed_from_u64(
        seed ^ 0xF166 ^ ((m as u64) << 48) ^ ((n as u64) << 32) ^ ((s as u64) << 16),
    );
    let minterms = 1usize << m;
    let next: Vec<Vec<usize>> = (0..s)
        .map(|si| {
            (0..minterms)
                .map(|mm| {
                    if mm == minterms - 1 {
                        (si + 1) % s // chain guarantees reachability
                    } else {
                        rng.gen_range(0..s)
                    }
                })
                .collect()
        })
        .collect();
    let out: Vec<Vec<u128>> = (0..s)
        .map(|_| (0..minterms).map(|_| random_word(&mut rng, n)).collect())
        .collect();
    FsmSpec::from_dense(format!("rand_m{m}_n{n}_s{s}"), m, n, &next, &out)
        .expect("dense tables are well-formed by construction")
}

/// A random microprogram of `len` instructions over a format with one
/// one-hot unit-select field and a couple of binary immediate fields; used
/// by the sequencer experiments and tests.
pub fn random_microprogram(len: usize, num_conds: usize, seed: u64) -> MicroProgram {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E0 ^ ((len as u64) << 8));
    let fmt = MicrocodeFormat::new(vec![
        Field::one_hot("unit", 4),
        Field::binary("imm", 4),
        Field::binary("strobe", 1),
    ]);
    let mut p = MicroProgram::new(format!("rand_up_{len}"), fmt, num_conds);
    for a in 0..len {
        let unit = 1u128 << rng.gen_range(0..4);
        let imm = rng.gen_range(0..16) as u128;
        let strobe = rng.gen_range(0..2) as u128;
        let next = if a == len - 1 {
            NextCtl::Halt
        } else {
            match rng.gen_range(0..4) {
                0 => NextCtl::Jump(rng.gen_range(0..len)),
                1 if num_conds > 0 => NextCtl::CondJump {
                    cond: rng.gen_range(0..num_conds),
                    target: rng.gen_range(0..len),
                },
                _ => NextCtl::Seq,
            }
        };
        p.push(MicroInstr {
            fields: vec![unit, imm, strobe],
            next,
        });
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_deterministic_per_seed() {
        let a = random_table(64, 16, 7);
        let b = random_table(64, 16, 7);
        let c = random_table(64, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&w| w < 1 << 16));
    }

    #[test]
    fn wide_tables_fill_all_bits() {
        let t = random_table(8, 100, 3);
        // Some word must have a bit above position 64.
        assert!(t.iter().any(|&w| w >> 64 != 0));
        assert!(t.iter().all(|&w| w >> 100 == 0));
    }

    #[test]
    fn fsms_are_closed_and_reachable() {
        for (m, n, s) in [(2, 2, 2), (2, 8, 3), (8, 16, 17)] {
            let f = random_fsm(m, n, s, 99);
            assert_eq!(f.state_count(), s);
            assert_eq!(f.reachable_states().len(), s, "m={m} n={n} s={s}");
        }
    }

    #[test]
    fn microprograms_validate() {
        for seed in 0..10 {
            let p = random_microprogram(12, 2, seed);
            p.validate().unwrap();
        }
        let p = random_microprogram(5, 0, 3);
        p.validate().unwrap();
    }
}
