//! FSM state minimization by partition refinement.
//!
//! A generator that assembles controllers from reusable fragments routinely
//! produces behaviourally duplicate states. Merging them *in the IR* —
//! before any RTL exists — shrinks the tables the synthesis flow has to
//! partially evaluate, complementing the netlist-level unreachable-state
//! pruning of `synthir-synth`'s FSM pass. This is the classic
//! Moore-refinement algorithm on the Mealy machine's (next, output)
//! signature.

use crate::fsm::{FsmSpec, StateId};
use synthir_logic::Cube;

/// The result of minimizing an [`FsmSpec`].
#[derive(Clone, Debug)]
pub struct Minimized {
    /// The minimized machine.
    pub spec: FsmSpec,
    /// For each original state, the representative it was merged into
    /// (indexed by original state id).
    pub class_of: Vec<usize>,
}

/// Minimizes an FSM: drops states unreachable from reset and merges
/// behaviourally equivalent states.
///
/// Two states are equivalent iff for every input minterm they emit the same
/// outputs and step to equivalent states. The result preserves the observable
/// behaviour from the reset state exactly.
pub fn minimize_fsm(spec: &FsmSpec) -> Minimized {
    let reachable = spec.reachable_states();
    let minterms = 1u64 << spec.num_inputs();
    // Thread fan-out only pays off when the signature sweeps amount to
    // real work; small machines (the common case) stay on the serial path
    // rather than spending more on thread spawns than on evaluation.
    let parallel_worthwhile = reachable.len() as u64 * minterms >= 4096;
    let signature_map = |f: &(dyn Fn(&StateId) -> Vec<u128> + Sync)| -> Vec<Vec<u128>> {
        if parallel_worthwhile {
            synthir_logic::par::par_map(&reachable, f)
        } else {
            reachable.iter().map(f).collect()
        }
    };

    // Initial partition: states with identical output rows. The per-state
    // output signatures are independent (one FSM evaluation sweep each), so
    // they are computed concurrently; the grouping below stays serial and
    // order-dependent, making the result identical to the serial pass.
    let mut class_of_reachable: Vec<usize> = Vec::with_capacity(reachable.len());
    {
        let state_sigs: Vec<Vec<u128>> =
            signature_map(&|&s| (0..minterms).map(|m| spec.eval(s, m).1).collect());
        let mut signatures: Vec<Vec<u128>> = Vec::new();
        for sig in state_sigs {
            match signatures.iter().position(|x| *x == sig) {
                Some(i) => class_of_reachable.push(i),
                None => {
                    signatures.push(sig);
                    class_of_reachable.push(signatures.len() - 1);
                }
            }
        }
    }

    // Refine until stable: split classes whose members step to different
    // classes on some input.
    loop {
        let mut new_sigs: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut next_class: Vec<usize> = Vec::with_capacity(reachable.len());
        let idx_of = |s: StateId, reachable: &[StateId]| {
            reachable
                .binary_search(&s)
                .expect("closed under transition")
        };
        // Step signatures are again independent per state: fan out (when
        // worthwhile), then group serially.
        let step_fn = |&s: &StateId| -> Vec<usize> {
            (0..minterms)
                .map(|m| class_of_reachable[idx_of(spec.eval(s, m).0, &reachable)])
                .collect()
        };
        let step_sigs: Vec<Vec<usize>> = if parallel_worthwhile {
            synthir_logic::par::par_map(&reachable, step_fn)
        } else {
            reachable.iter().map(step_fn).collect()
        };
        for (ri, step_sig) in step_sigs.into_iter().enumerate() {
            let key = (class_of_reachable[ri], step_sig);
            match new_sigs.iter().position(|x| *x == key) {
                Some(i) => next_class.push(i),
                None => {
                    new_sigs.push(key);
                    next_class.push(new_sigs.len() - 1);
                }
            }
        }
        let stable = next_class == class_of_reachable;
        class_of_reachable = next_class;
        if stable {
            break;
        }
    }

    // Build the minimized machine: one state per class, transitions copied
    // from each class representative via dense minterm rules.
    let n_classes = class_of_reachable.iter().max().map(|m| m + 1).unwrap_or(0);
    let mut mini = FsmSpec::new(
        format!("{}_min", spec.name()),
        spec.num_inputs(),
        spec.num_outputs(),
    );
    let mut reps: Vec<StateId> = vec![StateId(usize::MAX); n_classes];
    for (ri, &s) in reachable.iter().enumerate() {
        let c = class_of_reachable[ri];
        if reps[c] == StateId(usize::MAX) {
            reps[c] = s;
        }
    }
    for (c, &rep) in reps.iter().enumerate() {
        mini.add_state(format!("c{c}_{}", spec.state_name(rep)));
    }
    let class_of_state = |s: StateId| {
        let ri = reachable.binary_search(&s).expect("reachable");
        class_of_reachable[ri]
    };
    for (c, &rep) in reps.iter().enumerate() {
        for m in 0..minterms {
            let (next, out) = spec.eval(rep, m);
            mini.add_rule(
                StateId(c),
                Cube::minterm(spec.num_inputs(), m),
                StateId(class_of_state(next)),
                out,
            );
        }
    }
    mini.set_reset(StateId(class_of_state(spec.reset_state())));

    // Full-length class map (unreachable states map to their own class 0 by
    // convention — they no longer exist).
    let mut class_of = vec![usize::MAX; spec.state_count()];
    for (ri, &s) in reachable.iter().enumerate() {
        class_of[s.0] = class_of_reachable[ri];
    }
    Minimized {
        spec: mini,
        class_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-state machine where two states are behavioural twins.
    fn with_twins() -> FsmSpec {
        let mut f = FsmSpec::new("twins", 1, 2);
        let a = f.add_state("a");
        let b1 = f.add_state("b1");
        let b2 = f.add_state("b2");
        let c = f.add_state("c");
        let go = Cube::new(1, 1, 1);
        // a alternates into b1/b2 which behave identically.
        f.add_rule(a, go, b1, 0b01);
        f.set_default(a, b2, 0b01);
        f.add_rule(b1, go, c, 0b10);
        f.set_default(b1, b1, 0b10);
        f.add_rule(b2, go, c, 0b10);
        f.set_default(b2, b2, 0b10);
        f.add_rule(c, go, a, 0b11);
        f.set_default(c, c, 0b11);
        f
    }

    #[test]
    fn merges_twin_states() {
        let f = with_twins();
        let min = minimize_fsm(&f);
        assert_eq!(min.spec.state_count(), 3);
        assert_eq!(min.class_of[1], min.class_of[2], "twins share a class");
        assert_ne!(min.class_of[0], min.class_of[1]);
    }

    #[test]
    fn preserves_behaviour() {
        let f = with_twins();
        let min = minimize_fsm(&f).spec;
        let mut s_orig = f.reset_state();
        let mut s_min = min.reset_state();
        let inputs = [1u64, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0];
        for &i in &inputs {
            let (n1, o1) = f.eval(s_orig, i);
            let (n2, o2) = min.eval(s_min, i);
            assert_eq!(o1, o2, "outputs diverge");
            s_orig = n1;
            s_min = n2;
        }
    }

    #[test]
    fn drops_unreachable_states() {
        let mut f = with_twins();
        let orphan = f.add_state("orphan");
        f.set_default(orphan, orphan, 0b11);
        let min = minimize_fsm(&f);
        assert_eq!(min.spec.state_count(), 3);
        assert_eq!(min.class_of[orphan.0], usize::MAX);
    }

    #[test]
    fn already_minimal_machines_are_unchanged_in_size() {
        // A modulo-3 counter has no equivalent states.
        let mut f = FsmSpec::new("mod3", 1, 2);
        let s0 = f.add_state("s0");
        let s1 = f.add_state("s1");
        let s2 = f.add_state("s2");
        let tick = Cube::new(1, 1, 1);
        f.add_rule(s0, tick, s1, 0);
        f.add_rule(s1, tick, s2, 1);
        f.add_rule(s2, tick, s0, 2);
        let min = minimize_fsm(&f);
        assert_eq!(min.spec.state_count(), 3);
    }

    #[test]
    fn random_fsms_never_grow_and_stay_equivalent() {
        for seed in 0..8u64 {
            let f = crate::random::random_fsm(2, 3, 6, seed);
            let min = minimize_fsm(&f);
            assert!(min.spec.state_count() <= f.state_count());
            // Lockstep walk.
            let mut a = f.reset_state();
            let mut b = min.spec.reset_state();
            let mut x = seed;
            for _ in 0..64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i = x >> 60 & 0b11;
                let (na, oa) = f.eval(a, i);
                let (nb, ob) = min.spec.eval(b, i);
                assert_eq!(oa, ob, "seed {seed}");
                a = na;
                b = nb;
            }
        }
    }
}
