//! Lowering microprograms to microcode-sequencer hardware (Fig. 3 of the
//! paper): µPC, microcode store, condition dispatch, per-field outputs.

use crate::microcode::{MicroProgram, NextCtl};
use crate::CoreError;
use synthir_logic::ValueSet;
use synthir_rtl::{Expr, FsmInfo, Memory, Module, RegReset, Register, ResetKind};

/// Options controlling sequencer generation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequencerOptions {
    /// Store the microcode in a runtime-writable configuration memory (the
    /// "Full" flexible design) instead of binding it.
    pub flexible: bool,
    /// Register the field outputs (adds a pipeline flop per field bit —
    /// the flop boundary of the paper's Fig. 8 discussion).
    pub register_outputs: bool,
    /// Attach FSM metadata for the µPC (the generator-derived
    /// `fsm_state_vector` annotation). Only meaningful for bound microcode.
    pub annotate_fsm: bool,
    /// Attach value-set annotations on registered field outputs, derived
    /// from the program contents (the generator-derived state annotation of
    /// Fig. 8). Requires `register_outputs` and bound microcode.
    pub annotate_fields: bool,
}

/// The control-word layout of a generated sequencer.
#[derive(Clone, Debug, PartialEq)]
pub struct ControlWordLayout {
    /// Width of the packed field section.
    pub fields_width: usize,
    /// Offset of the 2-bit mode section (00 seq, 01 jump, 10 cond-jump,
    /// 11 halt).
    pub mode_offset: usize,
    /// Offset and width of the condition-select section.
    pub cond_offset: usize,
    /// Condition-select width.
    pub cond_width: usize,
    /// Offset of the jump-target section.
    pub target_offset: usize,
    /// µPC / target width.
    pub target_width: usize,
}

impl ControlWordLayout {
    /// Computes the layout for a program.
    pub fn for_program(p: &MicroProgram) -> Self {
        let fields_width = p.format().width();
        let cond_width = cond_sel_bits(p.num_conds());
        let target_width = p.upc_bits();
        ControlWordLayout {
            fields_width,
            mode_offset: fields_width,
            cond_offset: fields_width + 2,
            cond_width,
            target_offset: fields_width + 2 + cond_width,
            target_width,
        }
    }

    /// Total control-word width.
    pub fn width(&self) -> usize {
        self.target_offset + self.target_width
    }

    /// Encodes one microinstruction into a control word.
    pub fn encode(&self, p: &MicroProgram, i: &crate::microcode::MicroInstr) -> u128 {
        let mut w = p.format().pack(&i.fields);
        let (mode, cond, target) = match i.next {
            NextCtl::Seq => (0b00u128, 0usize, 0usize),
            NextCtl::Jump(t) => (0b01, 0, t),
            NextCtl::CondJump { cond, target } => (0b10, cond, target),
            NextCtl::Halt => (0b11, 0, 0),
        };
        w |= mode << self.mode_offset;
        w |= (cond as u128) << self.cond_offset;
        w |= (target as u128) << self.target_offset;
        w
    }
}

fn cond_sel_bits(num_conds: usize) -> usize {
    if num_conds <= 1 {
        return num_conds; // 0 conds: no field; 1 cond: 1 selector bit (fixed 0)
    }
    let mut b = 1;
    while (1usize << b) < num_conds {
        b += 1;
    }
    b
}

/// Generates the sequencer module for a microprogram.
///
/// The module's interface:
/// * input `cond` (`max(1, num_conds)` bits) — branch conditions,
/// * one output bus per microcode field (named after the field),
/// * with [`SequencerOptions::flexible`]: config write port
///   `cfg_addr`/`cfg_data`/`cfg_wen`.
///
/// # Errors
///
/// Returns [`CoreError::BadSpec`] if the program fails validation or the
/// control word exceeds 128 bits.
pub fn generate(p: &MicroProgram, opts: SequencerOptions) -> Result<Module, CoreError> {
    p.validate()?;
    let layout = ControlWordLayout::for_program(p);
    if layout.width() > 128 {
        return Err(CoreError::BadSpec(format!(
            "control word of {} bits exceeds 128",
            layout.width()
        )));
    }
    let ub = p.upc_bits();
    let depth = 1usize << ub;
    let cw = layout.width();
    let mut m = Module::new(format!(
        "{}_{}",
        p.name(),
        if opts.flexible { "full" } else { "bound" }
    ));
    let num_cond_bits = p.num_conds().max(1);
    m.add_input("cond", num_cond_bits);

    // Microcode store.
    if opts.flexible {
        m.add_input("cfg_addr", ub);
        m.add_input("cfg_data", cw);
        m.add_input("cfg_wen", 1);
        m.add_memory(Memory {
            name: "ucode".into(),
            width: cw,
            depth,
            contents: None,
            write_port: Some(("cfg_addr".into(), "cfg_data".into(), "cfg_wen".into())),
        });
    } else {
        let words: Vec<u128> = (0..depth)
            .map(|a| p.instrs().get(a).map(|i| layout.encode(p, i)).unwrap_or(0))
            .collect();
        m.add_memory(Memory {
            name: "ucode".into(),
            width: cw,
            depth,
            contents: Some(words),
            write_port: None,
        });
    }
    m.add_wire("cw", cw, Expr::read_mem("ucode", Expr::reference("upc")));

    // Next-µPC logic.
    let mode0 = Expr::reference("cw").index(layout.mode_offset);
    let mode1 = Expr::reference("cw").index(layout.mode_offset + 1);
    let target = Expr::reference("cw").slice(layout.target_offset, layout.target_width);
    let inc = Expr::reference("upc").inc();
    // Selected condition bit: mux over the cond inputs by the cond-select
    // field (single condition: bit 0 directly).
    let sel_cond = if p.num_conds() <= 1 {
        Expr::reference("cond").index(0)
    } else {
        bit_select(
            "cond",
            num_cond_bits,
            &Expr::reference("cw").slice(layout.cond_offset, layout.cond_width),
            layout.cond_width,
        )
    };
    let cond_next = sel_cond.mux(inc.clone(), target.clone());
    let next_upc = mode1.mux(
        // mode1 = 0: seq (00) or jump (01)
        mode0.clone().mux(inc, target),
        // mode1 = 1: cond-jump (10) or halt (11)
        mode0.mux(cond_next, Expr::reference("upc")),
    );
    m.add_register(Register {
        name: "upc".into(),
        width: ub,
        next: next_upc,
        reset: RegReset {
            kind: ResetKind::Sync,
            value: 0,
        },
    });

    // Field outputs. Annotations derive from *reachable* rows only — the
    // generator knows the program's control flow, so it can assert tighter
    // sets than the raw table contents suggest.
    let value_sets = p.field_value_sets_reachable();
    for (fi, f) in p.format().fields().iter().enumerate() {
        let off = p.format().offset(fi);
        let slice = Expr::reference("cw").slice(off, f.width);
        if opts.register_outputs {
            let reg = format!("{}_r", f.name);
            m.add_register(Register {
                name: reg.clone(),
                width: f.width,
                next: slice,
                reset: RegReset {
                    kind: ResetKind::Sync,
                    value: 0,
                },
            });
            m.add_output(&f.name, f.width, Expr::reference(&reg));
            if opts.annotate_fields && !opts.flexible {
                let mut values = value_sets[fi].clone();
                values.insert(0); // the reset value
                m.annotate(reg, ValueSet::from_values(f.width as u32, values));
            }
        } else {
            m.add_output(&f.name, f.width, slice);
        }
    }

    if opts.annotate_fsm && !opts.flexible {
        m.set_fsm(FsmInfo {
            state_reg: "upc".into(),
            codes: p
                .reachable_addresses()
                .into_iter()
                .map(|a| a as u128)
                .collect(),
            reset_code: 0,
        });
    }
    Ok(m)
}

/// Builds `bus[sel]` as a mux tree (`sel` is `sel_width` bits; out-of-range
/// selects read as bit 0 semantics of the padded tree).
fn bit_select(bus: &str, bus_width: usize, sel: &Expr, sel_width: usize) -> Expr {
    fn rec(bus: &str, lo: usize, bus_width: usize, sel: &Expr, level: usize) -> Expr {
        if level == 0 {
            let idx = lo.min(bus_width - 1);
            return Expr::reference(bus).index(idx);
        }
        let half = 1usize << (level - 1);
        let low = rec(bus, lo, bus_width, sel, level - 1);
        let high = rec(bus, lo + half, bus_width, sel, level - 1);
        sel.clone().index(level - 1).mux(low, high)
    }
    rec(bus, 0, bus_width, sel, sel_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::{Field, MicroInstr, MicrocodeFormat};
    use std::collections::HashMap;

    fn demo_program() -> MicroProgram {
        let fmt = MicrocodeFormat::new(vec![Field::one_hot("pipe", 4), Field::binary("len", 2)]);
        let mut p = MicroProgram::new("demo", fmt, 2);
        p.must_emit(&[("pipe", 0b0001), ("len", 1)], NextCtl::Seq);
        p.must_emit(
            &[("pipe", 0b0010), ("len", 2)],
            NextCtl::CondJump { cond: 1, target: 0 },
        );
        p.must_emit(&[("pipe", 0b1000)], NextCtl::Jump(2));
        p
    }

    #[test]
    fn layout_and_encoding() {
        let p = demo_program();
        let layout = ControlWordLayout::for_program(&p);
        assert_eq!(layout.fields_width, 6);
        assert_eq!(layout.target_width, 2);
        let w = layout.encode(&p, &p.instrs()[1]);
        // fields at bottom.
        assert_eq!(w & 0x3F, (0b0010 | (2 << 4)) as u128);
        // mode = 10.
        assert_eq!(w >> layout.mode_offset & 0b11, 0b10);
        assert_eq!(w >> layout.cond_offset & 0b1, 1);
        assert_eq!(w >> layout.target_offset & 0b11, 0);
    }

    #[test]
    fn generated_hardware_matches_reference_simulation() {
        let p = demo_program();
        let m = generate(&p, SequencerOptions::default()).unwrap();
        let e = synthir_rtl::elaborate(&m).unwrap();
        let mut sim = synthir_sim::SeqSim::new(&e.netlist).unwrap();
        // Drive cond=0b10 on cycle 1 so the cond-jump at addr 1 fires.
        let cond_seq = [0u64, 0b10, 0, 0, 0, 0];
        let sw_trace = p.simulate(&cond_seq, 6);
        for (cycle, expected) in sw_trace.iter().enumerate() {
            let mut inputs = HashMap::new();
            inputs.insert("cond".to_string(), cond_seq[cycle] as u128);
            let out = sim.step(&inputs);
            assert_eq!(out["pipe"], expected[0], "cycle {cycle} pipe");
            assert_eq!(out["len"], expected[1], "cycle {cycle} len");
        }
    }

    #[test]
    fn flexible_variant_has_config_memory() {
        let p = demo_program();
        let full = generate(
            &p,
            SequencerOptions {
                flexible: true,
                ..Default::default()
            },
        )
        .unwrap();
        let bound = generate(&p, SequencerOptions::default()).unwrap();
        let ef = synthir_rtl::elaborate(&full).unwrap();
        let eb = synthir_rtl::elaborate(&bound).unwrap();
        // Flexible: ucode storage flops (depth 4 x cw) + upc.
        assert!(ef.netlist.flop_count() > eb.netlist.flop_count() + 10);
        // Bound: only the upc flops.
        assert_eq!(eb.netlist.flop_count(), p.upc_bits());
    }

    #[test]
    fn annotations_derived_from_program() {
        let p = demo_program();
        let m = generate(
            &p,
            SequencerOptions {
                register_outputs: true,
                annotate_fsm: true,
                annotate_fields: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.fsm.is_some());
        assert_eq!(m.annotations.len(), 2);
        // The pipe field's value set: program values + reset 0.
        let pipe = &m.annotations[0];
        assert!(pipe.values.contains(0b0001));
        assert!(pipe.values.contains(0));
        assert!(!pipe.values.contains(0b0011));
        let e = synthir_rtl::elaborate(&m).unwrap();
        assert_eq!(e.annotations.len(), 2);
    }

    #[test]
    fn registered_outputs_lag_by_one_cycle() {
        let p = demo_program();
        let m = generate(
            &p,
            SequencerOptions {
                register_outputs: true,
                ..Default::default()
            },
        )
        .unwrap();
        let e = synthir_rtl::elaborate(&m).unwrap();
        let mut sim = synthir_sim::SeqSim::new(&e.netlist).unwrap();
        let idle = HashMap::new();
        let out0 = sim.step(&idle);
        assert_eq!(out0["pipe"], 0, "reset value before first sample");
        let out1 = sim.step(&idle);
        assert_eq!(out1["pipe"], 0b0001);
    }

    #[test]
    fn rejects_invalid_program() {
        let fmt = MicrocodeFormat::new(vec![Field::binary("x", 1)]);
        let mut p = MicroProgram::new("bad", fmt, 0);
        p.push(MicroInstr {
            fields: vec![0],
            next: NextCtl::Jump(9),
        });
        assert!(generate(&p, SequencerOptions::default()).is_err());
    }
}
