//! Oracle tests for the optimized URP kernel: for hundreds of seeded random
//! covers (up to 12 variables), the optimized `complement`, `is_tautology`,
//! `remove_contained_cubes`, and `minimize` must agree exactly with a
//! brute-force truth-table oracle — and with the pre-optimization kernel
//! preserved in `synthir_logic::naive` where results are semantic. The
//! batch (parallel) minimizer must be bit-identical to the serial one.

use synthir_logic::espresso::{minimize, minimize_batch, minimize_tt_batch, EspressoOptions};
use synthir_logic::naive;
use synthir_logic::{Cover, Cube, TruthTable};

const SEEDS: u64 = 220;

/// Deterministic xorshift stream.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// A random cover over `nvars <= 12` variables with a mix of wide and
/// narrow cubes (and occasional duplicates, to exercise containment).
fn random_cover(seed: u64) -> Cover {
    let mut next = stream(seed);
    let nvars = 2 + (next() % 11) as usize; // 2..=12
    let ncubes = 1 + (next() % 24) as usize;
    let density = 25 + next() % 70; // 25%..95% literal density
    let mut cubes: Vec<Cube> = (0..ncubes)
        .map(|_| {
            let mut care = 0u64;
            let mut value = 0u64;
            for v in 0..nvars {
                if next() % 100 < density {
                    care |= 1 << v;
                    if next().is_multiple_of(2) {
                        value |= 1 << v;
                    }
                }
            }
            Cube::new(nvars, value, care)
        })
        .collect();
    if ncubes > 2 && next().is_multiple_of(4) {
        let dup = cubes[0];
        cubes.push(dup); // duplicate cube
    }
    Cover::from_cubes(nvars, cubes)
}

/// Brute-force truth table of a cover (the oracle).
fn oracle_tt(f: &Cover) -> TruthTable {
    TruthTable::from_fn(f.nvars(), |m| f.eval(m as u64))
}

#[test]
fn complement_agrees_with_truth_table_oracle() {
    for seed in 0..SEEDS {
        let f = random_cover(seed);
        let tt = oracle_tt(&f);
        let comp = f.complement();
        for m in 0..tt.num_minterms() {
            assert_eq!(comp.eval(m as u64), !tt.eval(m), "seed {seed}, minterm {m}");
        }
        // Complement output is single-cube minimal (the URP merge invariant).
        let mut cleaned = comp.clone();
        cleaned.remove_contained_cubes();
        assert_eq!(
            cleaned.cube_count(),
            comp.cube_count(),
            "seed {seed}: complement emitted a contained cube"
        );
    }
}

#[test]
fn tautology_agrees_with_truth_table_oracle_and_naive() {
    let mut tautologies = 0;
    for seed in 0..SEEDS {
        let f = random_cover(seed);
        let tt = oracle_tt(&f);
        let expect = (0..tt.num_minterms()).all(|m| tt.eval(m));
        assert_eq!(f.is_tautology(), expect, "seed {seed}");
        assert_eq!(naive::is_tautology_naive(&f), expect, "seed {seed} (naive)");
        tautologies += expect as usize;
        // Force some guaranteed tautologies too: f ∪ ¬f.
        let both = f.union(&f.complement());
        assert!(both.is_tautology(), "seed {seed}: f ∪ ¬f");
    }
    // The random mix must exercise both outcomes.
    assert!(tautologies > 0, "no tautologies sampled");
}

#[test]
fn containment_removal_agrees_with_oracle_and_naive() {
    for seed in 0..SEEDS {
        let f = random_cover(seed);
        let tt = oracle_tt(&f);
        let mut fast = f.clone();
        fast.remove_contained_cubes();
        let mut slow = f.clone();
        naive::remove_contained_cubes_naive(&mut slow);
        // Same function, and same surviving cube multiset (the optimized
        // sweep keeps original order; the naive one does too).
        assert_eq!(oracle_tt(&fast), tt, "seed {seed}: function changed");
        assert_eq!(
            fast.cubes(),
            slow.cubes(),
            "seed {seed}: optimized and naive containment disagree"
        );
        // Minimality: no survivor contains another.
        for (i, a) in fast.cubes().iter().enumerate() {
            for (j, b) in fast.cubes().iter().enumerate() {
                assert!(
                    i == j || !a.contains_cube(b),
                    "seed {seed}: cube {i} still contains cube {j}"
                );
            }
        }
    }
}

#[test]
fn minimize_agrees_with_truth_table_oracle() {
    let opts = EspressoOptions::default();
    for seed in 0..SEEDS {
        let f = random_cover(seed);
        let tt = oracle_tt(&f);
        let min = minimize(&f, None, &opts);
        assert_eq!(
            oracle_tt(&min),
            tt,
            "seed {seed}: minimize changed the function"
        );
        // And never worse than the de-duplicated input.
        let mut start = f.clone();
        start.remove_contained_cubes();
        assert!(
            min.cube_count() <= start.cube_count().max(1),
            "seed {seed}: minimize grew the cover"
        );
    }
}

#[test]
fn minimize_respects_dont_cares_against_oracle() {
    let opts = EspressoOptions::default();
    for seed in 0..SEEDS / 2 {
        let on = random_cover(seed);
        let mut next = stream(seed ^ 0xDC);
        let dc_tt = TruthTable::from_fn(on.nvars(), |m| {
            !on.eval(m as u64) && next().is_multiple_of(4)
        });
        let dc = Cover::from_truth_table(&dc_tt);
        let min = minimize(&on, Some(&dc), &opts);
        for m in 0..dc_tt.num_minterms() {
            if !dc_tt.eval(m) {
                assert_eq!(
                    min.eval(m as u64),
                    on.eval(m as u64),
                    "seed {seed}, minterm {m}"
                );
            }
        }
    }
}

#[test]
fn batch_minimization_is_deterministic_and_equals_serial() {
    let opts = EspressoOptions::default();
    let jobs: Vec<Cover> = (0..48).map(random_cover).collect();
    // minimize_batch over heterogeneous jobs (different nvars are fine —
    // each job is independent).
    let batch_a = minimize_batch(&jobs, None, &opts);
    let batch_b = minimize_batch(&jobs, None, &opts);
    for (i, (a, b)) in batch_a.iter().zip(&batch_b).enumerate() {
        assert_eq!(a.cubes(), b.cubes(), "job {i}: batch not deterministic");
    }
    for (i, (job, got)) in jobs.iter().zip(&batch_a).enumerate() {
        let serial = minimize(job, None, &opts);
        assert_eq!(got.cubes(), serial.cubes(), "job {i}: batch != serial");
    }
    // Truth-table batch path, shared DC.
    let tts: Vec<TruthTable> = (0..12u64)
        .map(|s| {
            TruthTable::from_fn(7, move |m| {
                (m as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ s) >> 61 & 1 != 0
            })
        })
        .collect();
    let dc = TruthTable::from_fn(7, |m| m % 13 == 0 && !tts.iter().any(|t| t.eval(m)));
    let batch = minimize_tt_batch(&tts, Some(&dc), &opts);
    for (i, (tt, cover)) in tts.iter().zip(&batch).enumerate() {
        let serial = minimize(
            &Cover::from_truth_table(tt),
            Some(&Cover::from_truth_table(&dc)),
            &opts,
        );
        assert_eq!(cover.cubes(), serial.cubes(), "tt job {i}: batch != serial");
    }
}

#[test]
fn optimized_and_naive_minimize_are_semantically_equal() {
    let opts = EspressoOptions::default();
    for seed in 0..SEEDS / 2 {
        let f = random_cover(seed);
        let tt = oracle_tt(&f);
        let fast = minimize(&f, None, &opts);
        let slow = naive::minimize_naive(&f, None, &opts);
        assert_eq!(oracle_tt(&fast), tt, "seed {seed} (optimized)");
        assert_eq!(oracle_tt(&slow), tt, "seed {seed} (naive)");
    }
}
