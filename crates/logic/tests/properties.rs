//! Property-based tests on the boolean kernel's invariants.

use proptest::prelude::*;
use synthir_logic::espresso::{minimize, EspressoOptions};
use synthir_logic::{Bdd, BitVec, Cover, Cube, TruthTable, ValueSet};

/// An arbitrary truth table over `n` variables, from a random u64 seed.
fn tt_from_seed(n: usize, seed: u64) -> TruthTable {
    TruthTable::from_fn(n, |m| {
        let h = (m as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed)
            .rotate_left((seed % 61) as u32)
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h >> 62 & 1 != 0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitvec_double_negation(len in 1usize..200, seed in any::<u64>()) {
        let bv = BitVec::from_fn(len, |i| (seed >> (i % 64)) & 1 != 0);
        let mut twice = bv.clone();
        twice.not_assign();
        twice.not_assign();
        prop_assert_eq!(twice, bv);
    }

    #[test]
    fn bitvec_demorgan(len in 1usize..130, a in any::<u64>(), b in any::<u64>()) {
        let x = BitVec::from_fn(len, |i| (a >> (i % 64)) & 1 != 0);
        let y = BitVec::from_fn(len, |i| (b.rotate_left(i as u32 % 64)) & 1 != 0);
        let mut and_then_not = x.clone();
        and_then_not.and_assign(&y);
        and_then_not.not_assign();
        let mut nx = x.clone();
        nx.not_assign();
        let mut ny = y.clone();
        ny.not_assign();
        let mut or_of_nots = nx;
        or_of_nots.or_assign(&ny);
        prop_assert_eq!(and_then_not, or_of_nots);
    }

    #[test]
    fn espresso_preserves_function(n in 2usize..7, seed in any::<u64>()) {
        let tt = tt_from_seed(n, seed);
        let min = minimize(
            &Cover::from_truth_table(&tt),
            None,
            &EspressoOptions::default(),
        );
        prop_assert_eq!(min.to_truth_table(n), tt);
    }

    #[test]
    fn espresso_never_grows_the_cover(n in 2usize..6, seed in any::<u64>()) {
        let tt = tt_from_seed(n, seed);
        let start = Cover::from_truth_table(&tt);
        let min = minimize(&start, None, &EspressoOptions::default());
        prop_assert!(min.cube_count() <= start.cube_count().max(1));
    }

    #[test]
    fn espresso_respects_dont_cares(n in 2usize..6, seed in any::<u64>(), dseed in any::<u64>()) {
        let on = tt_from_seed(n, seed);
        let dc_raw = tt_from_seed(n, dseed);
        // DC must not overlap ON.
        let dc = TruthTable::from_fn(n, |m| dc_raw.eval(m) && !on.eval(m));
        let min = minimize(
            &Cover::from_truth_table(&on),
            Some(&Cover::from_truth_table(&dc)),
            &EspressoOptions::default(),
        );
        for m in 0..on.num_minterms() {
            if !dc.eval(m) {
                prop_assert_eq!(min.eval(m as u64), on.eval(m), "minterm {}", m);
            }
        }
    }

    #[test]
    fn cover_complement_is_involutive_on_semantics(n in 1usize..6, seed in any::<u64>()) {
        let tt = tt_from_seed(n, seed);
        let c = Cover::from_truth_table(&tt);
        let cc = c.complement().complement();
        prop_assert_eq!(cc.to_truth_table(n), tt);
    }

    #[test]
    fn cube_intersection_is_conjunction(
        v1 in any::<u64>(), c1 in any::<u64>(), v2 in any::<u64>(), c2 in any::<u64>()
    ) {
        let a = Cube::new(8, v1, c1);
        let b = Cube::new(8, v2, c2);
        match a.intersect(&b) {
            Some(i) => {
                for m in 0..256u64 {
                    prop_assert_eq!(
                        i.contains_minterm(m),
                        a.contains_minterm(m) && b.contains_minterm(m)
                    );
                }
            }
            None => {
                for m in 0..256u64 {
                    prop_assert!(!(a.contains_minterm(m) && b.contains_minterm(m)));
                }
            }
        }
    }

    #[test]
    fn bdd_matches_truth_table(n in 1usize..7, seed in any::<u64>()) {
        let tt = tt_from_seed(n, seed);
        let mut bdd = Bdd::new();
        let f = bdd.from_truth_table(&tt);
        for m in 0..tt.num_minterms() {
            prop_assert_eq!(bdd.eval(f, m as u64), tt.eval(m));
        }
        prop_assert_eq!(bdd.sat_count(f, n as u32), tt.count_ones() as u128);
    }

    #[test]
    fn bdd_canonical_for_equal_functions(n in 1usize..6, seed in any::<u64>()) {
        let tt = tt_from_seed(n, seed);
        let mut bdd = Bdd::new();
        let f = bdd.from_truth_table(&tt);
        // Build the same function through a different route: OR of minterms.
        let mut g = bdd.constant(false);
        for m in tt.iter_ones() {
            let mut term = bdd.constant(true);
            for v in 0..n {
                let var = bdd.var(v as u32);
                let lit = if m >> v & 1 != 0 { var } else { bdd.not(var) };
                term = bdd.and(term, lit);
            }
            g = bdd.or(g, term);
        }
        prop_assert_eq!(f, g);
    }

    #[test]
    fn valueset_map_is_image(width in 1u32..10, k in 1usize..12, seed in any::<u64>()) {
        let values: Vec<u128> = (0..k)
            .map(|i| (seed.rotate_left(i as u32 * 7) as u128) & ((1 << width) - 1))
            .collect();
        let s = ValueSet::from_values(width, values.clone());
        let mapped = s.map(width, |v| (v ^ 0b1) & ((1 << width) - 1));
        for v in values {
            prop_assert!(mapped.contains((v ^ 0b1) & ((1 << width) - 1)));
        }
    }

    #[test]
    fn valueset_widen_monotone(width in 1u32..8, k in 1usize..40) {
        let s = ValueSet::from_values(
            width,
            (0..k as u128).map(|v| v & ((1 << width) - 1)),
        );
        let w = s.widen(16);
        match (s.len(), w.len()) {
            (Some(orig), Some(kept)) => prop_assert!(kept == orig && orig <= 16),
            (Some(orig), None) => prop_assert!(orig > 16),
            _ => prop_assert!(false, "widen of explicit set must stay explicit or go All"),
        }
    }

    /// PLA → Cover → PLA identity: serializing random multi-output covers
    /// and parsing them back is lossless, structurally and semantically.
    #[test]
    fn pla_round_trip_identity(n in 1usize..8, outs in 1usize..5, seed in any::<u64>()) {
        use synthir_logic::pla::{from_pla, to_pla, Pla};
        let covers: Vec<Cover> = (0..outs)
            .map(|i| {
                let tt = tt_from_seed(n, seed.wrapping_add(i as u64 * 0x9E37));
                minimize(&Cover::from_truth_table(&tt), None, &EspressoOptions::default())
            })
            .collect();
        let text = to_pla(&covers);
        let back = from_pla(&text).unwrap();
        // Identity up to cube order: terms shared between outputs merge
        // into one line, which can reorder a cover's cube list.
        prop_assert_eq!(back.len(), covers.len());
        for (b, c) in back.iter().zip(&covers) {
            let mut bc: Vec<_> = b.cubes().to_vec();
            let mut cc: Vec<_> = c.cubes().to_vec();
            let key = |x: &Cube| (x.value_mask(), x.care_mask());
            bc.sort_by_key(key);
            cc.sort_by_key(key);
            prop_assert_eq!(bc, cc, "cube-set identity");
            prop_assert_eq!(b.to_truth_table(n), c.to_truth_table(n));
        }
        // And the full document model agrees with itself after a re-render.
        let doc = Pla::parse(&text).unwrap();
        prop_assert_eq!(Pla::parse(&doc.render()).unwrap(), doc);
    }

    /// Typed PLA round trip: a random ON/OFF/DC partition survives
    /// render → parse under fd, fr, and fdr semantics.
    #[test]
    fn typed_pla_round_trip(n in 1usize..6, seed in any::<u64>(), which in 0usize..3) {
        use synthir_logic::pla::{Pla, PlaType};
        let kind = [PlaType::Fd, PlaType::Fr, PlaType::Fdr][which];
        // Partition the minterms of one output three ways from the seed.
        let mut on = Cover::empty(n);
        let mut dc = Cover::empty(n);
        let mut off = Cover::empty(n);
        for m in 0..1u64 << n {
            let h = (m + 1).wrapping_mul(seed | 1).rotate_left(11) % 3;
            match h {
                0 => on.push(Cube::minterm(n, m)),
                1 if kind.has_dc() => dc.push(Cube::minterm(n, m)),
                2 if kind.has_off() => off.push(Cube::minterm(n, m)),
                _ => {}
            }
        }
        let pla = Pla {
            num_inputs: n,
            num_outputs: 1,
            input_labels: None,
            output_labels: None,
            kind,
            on: vec![on],
            dc: vec![dc],
            off: vec![off],
        };
        let back = Pla::parse(&pla.render()).unwrap();
        prop_assert_eq!(back, pla);
    }

    /// Minimizing a typed PLA preserves the specified behaviour: the result
    /// covers the ON-set and stays off the OFF-set / implicit OFF-set.
    #[test]
    fn pla_minimization_respects_planes(n in 1usize..6, seed in any::<u64>()) {
        use synthir_logic::pla::{Pla, PlaType};
        let mut text = format!(".i {n}\n.o 1\n.type fr\n");
        for m in 0..1u64 << n {
            let h = (m + 1).wrapping_mul(seed | 1).rotate_left(9) % 3;
            let ch = match h { 0 => '1', 1 => '0', _ => '~' };
            let cols: String = (0..n).rev().map(|b| if m >> b & 1 != 0 { '1' } else { '0' }).collect();
            text.push_str(&format!("{cols} {ch}\n"));
        }
        let pla = Pla::parse(&text).unwrap();
        prop_assert_eq!(pla.kind, PlaType::Fr);
        let min = pla.minimized(&EspressoOptions::default());
        for m in 0..1u64 << n {
            if pla.on[0].eval(m) {
                prop_assert!(min.on[0].eval(m), "minterm {} lost", m);
            }
            if pla.off[0].eval(m) {
                prop_assert!(!min.on[0].eval(m), "minterm {} violates OFF-set", m);
            }
        }
        prop_assert!(min.on[0].cube_count() <= pla.on[0].cube_count().max(1));
    }
}
