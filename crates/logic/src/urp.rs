//! The unate recursive paradigm (URP) core of the boolean kernel.
//!
//! Tautology checking and complementation are the two operations every
//! espresso sweep leans on (IRREDUNDANT's coverage checks and the OFF-set
//! construction respectively), so they are implemented here once, directly
//! on raw `Vec<Cube>` buffers, with the full set of classic accelerations
//! from Brayton et al.'s ESPRESSO book:
//!
//! * **unate reduction** — a variable appearing with a single polarity lets
//!   every cube carrying it be deleted before recursing (tautology) or lets
//!   the two cofactor complements be merged without tagging one branch
//!   (complement);
//! * **small-support leaves** — a cover whose support fits in six variables
//!   is evaluated exactly in a single `u64` minterm bitmap, terminating the
//!   recursion far above the single-cube base case;
//! * **component decomposition** — a cover that splits into disjoint-support
//!   components is a tautology iff one component is;
//! * **minterm-count bound** — if the cubes cannot even count up to
//!   2^|support| minterms, the cover cannot be a tautology;
//! * **cofactor memoisation** — complements of repeated sub-covers (keyed on
//!   the sorted cube signature) are computed once;
//! * **scratch-buffer pool** — cofactor buffers are recycled across the
//!   recursion instead of being reallocated at every level, and the
//!   single-cube containment sweep is signature-pruned so EXPAND /
//!   IRREDUNDANT / REDUCE stop paying an O(n²) full-comparison scan.
//!
//! [`crate::naive`] retains the seed implementations; the `bench_espresso`
//! benchmark and the oracle property tests compare the two.

use crate::Cube;
use std::collections::HashMap;

/// Minterm bitmaps of the first six variables over a 64-minterm space:
/// bit `m` of `VAR_MASK[v]` is set iff minterm `m` has variable `v` = 1.
const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A pool of reusable cube buffers: the recursion allocates from here and
/// returns buffers on the way out, so a whole minimization sweep settles
/// into a handful of allocations.
#[derive(Default)]
pub(crate) struct ScratchPool {
    free: Vec<Vec<Cube>>,
}

impl ScratchPool {
    fn take(&mut self) -> Vec<Cube> {
        let mut b = self.free.pop().unwrap_or_default();
        b.clear();
        b
    }

    fn put(&mut self, b: Vec<Cube>) {
        // Cap the pool so a pathological recursion cannot hoard memory.
        if self.free.len() < 64 {
            self.free.push(b);
        }
    }
}

std::thread_local! {
    static POOL: std::cell::RefCell<ScratchPool> =
        std::cell::RefCell::new(ScratchPool::default());
}

/// Runs `f` with the thread-local scratch pool.
fn with_pool<R>(f: impl FnOnce(&mut ScratchPool) -> R) -> R {
    POOL.with(|p| f(&mut p.borrow_mut()))
}

/// Removes every cube contained in another single cube of the buffer,
/// preserving the relative order of the survivors.
///
/// The scan sorts an index permutation by ascending literal count (largest
/// cubes first) and tests each cube only against previously kept cubes; the
/// containment test itself is two word-wide mask comparisons, and a cube can
/// only be contained by a cube with a `care` subset of its own, so the sort
/// acts as a signature filter: no candidate is ever compared against a cube
/// it could not possibly be inside.
pub(crate) fn single_cube_containment(cubes: &mut Vec<Cube>) {
    if cubes.len() < 2 {
        return;
    }
    let mut order: Vec<u32> = (0..cubes.len() as u32).collect();
    // Ascending literal count; ties by original index so duplicate cubes
    // keep their first occurrence, matching the historical behaviour.
    order.sort_by_key(|&i| (cubes[i as usize].literal_count(), i));
    let mut keep = vec![true; cubes.len()];
    let mut kept: Vec<(u64, u64, u32)> = Vec::with_capacity(cubes.len());
    for &i in &order {
        let c = cubes[i as usize];
        let (cv, cc) = (c.value_mask(), c.care_mask());
        let mut contained = false;
        for &(kv, kc, _) in &kept {
            // kc ⊆ cc and agreeing values on kc ⟺ the kept cube covers c.
            if kc & !cc == 0 && (kv ^ cv) & kc == 0 {
                contained = true;
                break;
            }
        }
        if contained {
            keep[i as usize] = false;
        } else {
            kept.push((cv, cc, i));
        }
    }
    let mut idx = 0;
    cubes.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// Per-variable positive/negative literal masks of a buffer, plus whether
/// any cube is the universe.
fn polarity_masks(cubes: &[Cube]) -> (u64, u64, bool) {
    let mut pos = 0u64;
    let mut neg = 0u64;
    let mut universal = false;
    for c in cubes {
        let care = c.care_mask();
        universal |= care == 0;
        pos |= c.value_mask();
        neg |= care & !c.value_mask();
    }
    (pos, neg, universal)
}

/// The most binate variable of the buffer, or `None` if the cover is unate.
/// Binateness is ranked by `min(pos, neg)` occurrences with total count as
/// tie-break, matching espresso's `SELECT` heuristic.
fn most_binate_variable(cubes: &[Cube]) -> Option<usize> {
    let mut pos = [0u32; 64];
    let mut neg = [0u32; 64];
    for c in cubes {
        let mut m = c.care_mask();
        let v = c.value_mask();
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if v >> i & 1 != 0 {
                pos[i] += 1;
            } else {
                neg[i] += 1;
            }
            m &= m - 1;
        }
    }
    let mut best: Option<(usize, u64)> = None;
    for i in 0..64 {
        if pos[i] > 0 && neg[i] > 0 {
            let score = (pos[i].min(neg[i]) as u64) << 32 | (pos[i] + neg[i]) as u64;
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((i, score));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// The most frequently used variable (for branching on unate covers).
fn most_frequent_variable(cubes: &[Cube]) -> Option<usize> {
    let mut count = [0u32; 64];
    for c in cubes {
        let mut m = c.care_mask();
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            count[i] += 1;
            m &= m - 1;
        }
    }
    (0..64)
        .filter(|&i| count[i] > 0)
        .max_by_key(|&i| (count[i], std::cmp::Reverse(i)))
}

/// Cofactors `cubes` with respect to `var = value` into `out`.
fn cofactor_into(cubes: &[Cube], var: usize, value: bool, out: &mut Vec<Cube>) {
    out.clear();
    let bit = 1u64 << var;
    for c in cubes {
        let care = c.care_mask();
        if care & bit != 0 && (c.value_mask() & bit != 0) != value {
            continue; // opposite literal: empty cofactor
        }
        out.push(Cube::new(c.nvars(), c.value_mask() & !bit, care & !bit));
    }
}

/// Exact tautology check of a small-support buffer: every cube constrains
/// only variables inside `support` (|support| ≤ 6), so the union of the
/// cubes' minterm sets fits one `u64` bitmap.
fn tautology_leaf(cubes: &[Cube], support: u64) -> bool {
    let k = support.count_ones() as usize;
    // Compact support variables to bit positions 0..k.
    let mut vars = [0usize; 6];
    let mut m = support;
    let mut idx = 0;
    while m != 0 {
        vars[idx] = m.trailing_zeros() as usize;
        idx += 1;
        m &= m - 1;
    }
    let full: u64 = if k == 6 {
        u64::MAX
    } else {
        (1u64 << (1 << k)) - 1
    };
    let mut acc = 0u64;
    for c in cubes {
        let mut mask = full;
        for (j, &v) in vars.iter().take(k).enumerate() {
            let bit = 1u64 << v;
            if c.care_mask() & bit != 0 {
                mask &= if c.value_mask() & bit != 0 {
                    VAR_MASK[j]
                } else {
                    !VAR_MASK[j]
                };
            }
        }
        acc |= mask;
        if acc == full {
            return true;
        }
    }
    false
}

/// Whether the buffer covers all 2^nvars minterms.
pub(crate) fn is_tautology(cubes: &[Cube]) -> bool {
    with_pool(|pool| {
        let mut buf = pool.take();
        buf.extend_from_slice(cubes);
        let r = tautology_rec(&mut buf, pool);
        pool.put(buf);
        r
    })
}

fn tautology_rec(buf: &mut Vec<Cube>, pool: &mut ScratchPool) -> bool {
    // Unate reduction to a fixpoint: cubes with a literal on a single-
    // polarity variable can never help cover the cofactor in which that
    // literal is false, so they are deleted outright.
    let (pos, neg) = loop {
        if buf.is_empty() {
            return false;
        }
        let (pos, neg, universal) = polarity_masks(buf);
        if universal {
            return true;
        }
        let support = pos | neg;
        let unate = support & !(pos & neg);
        if unate == 0 {
            break (pos, neg);
        }
        buf.retain(|c| c.care_mask() & unate == 0);
    };
    let support = pos | neg;
    let k = support.count_ones() as usize;

    // Small-support leaf: exact bitmap evaluation.
    if k <= 6 {
        return tautology_leaf(buf, support);
    }

    // Minterm-count lower bound: within the support space each cube covers
    // 2^(k - literals) minterms; if even the (overlap-ignoring) sum falls
    // short of 2^k the cover cannot be a tautology.
    let mut total: u128 = 0;
    let goal: u128 = 1u128 << k;
    for c in buf.iter() {
        total += 1u128 << (k - c.literal_count());
        if total >= goal {
            break;
        }
    }
    if total < goal {
        return false;
    }

    // Component decomposition: disjoint-support components are independent,
    // and a sum of disjoint functions is a tautology iff one term is.
    let mut comps: Vec<u64> = Vec::new();
    for c in buf.iter() {
        let mut m = c.care_mask();
        let mut j = 0;
        while j < comps.len() {
            if comps[j] & m != 0 {
                m |= comps.swap_remove(j);
            } else {
                j += 1;
            }
        }
        comps.push(m);
    }
    if comps.len() > 1 {
        for comp in comps {
            let mut sub = pool.take();
            sub.extend(buf.iter().filter(|c| c.care_mask() & comp != 0).copied());
            let r = tautology_rec(&mut sub, pool);
            pool.put(sub);
            if r {
                return true;
            }
        }
        return false;
    }

    // Binate branch (a binate variable must exist here: the cover is not
    // unate after reduction).
    let var = most_binate_variable(buf).expect("reduced cover has a binate variable");
    let mut b = pool.take();
    cofactor_into(buf, var, false, &mut b);
    let r0 = tautology_rec(&mut b, pool);
    if !r0 {
        pool.put(b);
        return false;
    }
    cofactor_into(buf, var, true, &mut b);
    let r1 = tautology_rec(&mut b, pool);
    pool.put(b);
    r1
}

/// The minterm bitmap of a cube in compacted leaf coordinates.
fn leaf_cube_mask(k: usize, value: u64, care: u64, full: u64) -> u64 {
    let mut mask = full;
    for (j, var_mask) in VAR_MASK.iter().enumerate().take(k) {
        if care >> j & 1 != 0 {
            mask &= if value >> j & 1 != 0 {
                *var_mask
            } else {
                !*var_mask
            };
        }
    }
    mask & full
}

/// Exact complement of a small-support buffer (|support| ≤ 6): computes the
/// uncovered minterm bitmap and extracts greedy prime cubes from it. This
/// leaf terminates the complement recursion well above the single-cube base
/// case.
fn complement_leaf(nvars: usize, cubes: &[Cube], support: u64) -> Vec<Cube> {
    let k = support.count_ones() as usize;
    let mut vars = [0usize; 6];
    let mut m = support;
    let mut idx = 0;
    while m != 0 {
        vars[idx] = m.trailing_zeros() as usize;
        idx += 1;
        m &= m - 1;
    }
    let full: u64 = if k == 6 {
        u64::MAX
    } else {
        (1u64 << (1 << k)) - 1
    };
    // Covered minterms of the leaf space.
    let mut covered = 0u64;
    for c in cubes {
        let mut value = 0u64;
        let mut care = 0u64;
        for (j, &v) in vars.iter().take(k).enumerate() {
            let bit = 1u64 << v;
            if c.care_mask() & bit != 0 {
                care |= 1 << j;
                if c.value_mask() & bit != 0 {
                    value |= 1 << j;
                }
            }
        }
        covered |= leaf_cube_mask(k, value, care, full);
        if covered == full {
            return Vec::new();
        }
    }
    // Greedy prime extraction from the uncovered set: grow each seed
    // minterm by dropping literals while the cube stays inside ¬covered.
    // The final containment pass keeps the leaf output single-cube minimal
    // (a later, larger prime can swallow an earlier one), which the merge
    // steps above rely on.
    let mut out = Vec::new();
    let mut uncovered = full & !covered;
    while uncovered != 0 {
        let seed = uncovered.trailing_zeros() as u64;
        let mut value = seed;
        let mut care = (1u64 << k) - 1;
        let mut mask = 1u64 << seed;
        for j in 0..k {
            let cand_care = care & !(1 << j);
            let cand = leaf_cube_mask(k, value, cand_care, full);
            if cand & covered == 0 {
                care = cand_care;
                value &= cand_care;
                mask = cand;
            }
        }
        // Map back to global variables.
        let mut gv = 0u64;
        let mut gc = 0u64;
        for (j, &v) in vars.iter().take(k).enumerate() {
            if care >> j & 1 != 0 {
                gc |= 1 << v;
                if value >> j & 1 != 0 {
                    gv |= 1 << v;
                }
            }
        }
        out.push(Cube::new(nvars, gv, gc));
        uncovered &= !mask;
    }
    single_cube_containment(&mut out);
    out
}

/// Memo key: the sorted cube list of a sub-cover.
type CoverKey = Box<[Cube]>;

/// Memoize only medium-and-larger nodes: below this the key sort, hash,
/// and result clone cost more than recomputing the complement.
const MEMO_MIN_CUBES: usize = 8;

/// Per-call context of a complement computation.
pub(crate) struct ComplementCtx<'p> {
    pool: &'p mut ScratchPool,
    memo: HashMap<CoverKey, Vec<Cube>>,
}

/// The complement of the buffer as a new cube list.
pub(crate) fn complement(nvars: usize, cubes: &[Cube]) -> Vec<Cube> {
    with_pool(|pool| {
        let mut ctx = ComplementCtx {
            pool,
            memo: HashMap::new(),
        };
        let mut buf: Vec<Cube> = cubes.to_vec();
        single_cube_containment(&mut buf);
        complement_rec(nvars, &buf, &mut ctx)
    })
}

/// De Morgan complement of a single cube: one single-literal cube per
/// literal, with the opposite polarity.
fn demorgan(nvars: usize, c: &Cube) -> Vec<Cube> {
    let mut out = Vec::with_capacity(c.literal_count());
    let mut m = c.care_mask();
    let v = c.value_mask();
    while m != 0 {
        let i = m.trailing_zeros();
        let bit = 1u64 << i;
        out.push(Cube::new(nvars, !v & bit, bit));
        m &= m - 1;
    }
    out
}

fn complement_rec(nvars: usize, cubes: &[Cube], ctx: &mut ComplementCtx) -> Vec<Cube> {
    if cubes.is_empty() {
        return vec![Cube::universe(nvars)];
    }
    if cubes.iter().any(|c| c.literal_count() == 0) {
        return Vec::new();
    }
    if cubes.len() == 1 {
        return demorgan(nvars, &cubes[0]);
    }

    let (pos, neg, _) = polarity_masks(cubes);
    let support = pos | neg;

    // Small-support leaf: exact bitmap complement with greedy prime cubes.
    if support.count_ones() <= 6 {
        return complement_leaf(nvars, cubes, support);
    }

    // Memo lookup on the canonical (sorted) cube signature — for nodes big
    // enough that recomputing beats the key cost. Cofactors of covers with
    // shared structure recur across branches; computing each complement
    // once turns the recursion into a DAG walk.
    let memoize = cubes.len() >= MEMO_MIN_CUBES;
    let key: Option<CoverKey> = if memoize {
        let mut k = cubes.to_vec();
        k.sort_unstable();
        Some(k.into_boxed_slice())
    } else {
        None
    };
    if let Some(k) = &key {
        if let Some(hit) = ctx.memo.get(k) {
            return hit.clone();
        }
    }
    let binate = most_binate_variable(cubes);
    let var = binate
        .or_else(|| most_frequent_variable(cubes))
        .expect("non-empty non-universal cover has a literal");
    let bit = 1u64 << var;

    let mut b0 = ctx.pool.take();
    cofactor_into(cubes, var, false, &mut b0);
    if b0.len() >= MEMO_MIN_CUBES {
        single_cube_containment(&mut b0);
    }
    let c0 = complement_rec(nvars, &b0, ctx);
    ctx.pool.put(b0);

    let mut b1 = ctx.pool.take();
    cofactor_into(cubes, var, true, &mut b1);
    if b1.len() >= MEMO_MIN_CUBES {
        single_cube_containment(&mut b1);
    }
    let c1 = complement_rec(nvars, &b1, ctx);
    ctx.pool.put(b1);

    // The merges below preserve single-cube minimality without a cleanup
    // pass: within a branch the recursion result is containment-free by
    // induction; across branches the opposite `var` tags rule containment
    // out; and an untagged (shared) cube can neither contain nor be
    // contained by a tagged one without violating the branch's internal
    // minimality. The only genuine cross-set case is the unate merge, where
    // a tagged ¬F-smaller-branch cube can be swallowed by an untagged cube
    // of the larger branch — filtered explicitly below.
    let mut out: Vec<Cube>;
    if binate.is_none() && neg & bit == 0 {
        // var appears only positively: F₀ ⊆ F₁, hence ¬F₁ ⊆ ¬F₀ and
        // ¬F = ¬F₁ + ¬var·¬F₀ — the v=1 branch needs no literal tag.
        out = merge_unate(nvars, c1, &c0, bit, 0);
    } else if binate.is_none() && pos & bit == 0 {
        // Only negatively: mirror image.
        out = merge_unate(nvars, c0, &c1, bit, bit);
    } else {
        // Binate merge: a cube present in both branch complements covers
        // its minterms independently of var, so it is emitted untagged
        // (x·c + ¬x·c = c); the rest get their branch literal.
        out = Vec::with_capacity(c0.len() + c1.len());
        let mut in_c1: HashMap<Cube, bool> = c1.iter().map(|&c| (c, false)).collect();
        for c in &c0 {
            if let Some(used) = in_c1.get_mut(c) {
                *used = true;
                out.push(*c);
            } else {
                out.push(Cube::new(nvars, c.value_mask(), c.care_mask() | bit));
            }
        }
        for c in &c1 {
            if !in_c1[c] {
                out.push(Cube::new(nvars, c.value_mask() | bit, c.care_mask() | bit));
            }
        }
    }
    if let Some(k) = key {
        ctx.memo.insert(k, out.clone());
    }
    out
}

/// Unate complement merge: `untagged ∪ (tag·c)` for each `c` in `tagged`,
/// where `tag` sets the split variable's literal (`tag_value` selects the
/// polarity bit). Tagged cubes already covered by an untagged cube are
/// dropped, keeping the output containment-free.
fn merge_unate(
    nvars: usize,
    untagged: Vec<Cube>,
    tagged: &[Cube],
    bit: u64,
    tag_value: u64,
) -> Vec<Cube> {
    let mut out = untagged;
    let keep_from = out.len();
    'tagged: for c in tagged {
        for u in &out[..keep_from] {
            // `u` has no literal on `bit`, so u ⊇ tag·c ⟺ u ⊇ c.
            if u.care_mask() & !c.care_mask() == 0
                && (u.value_mask() ^ c.value_mask()) & u.care_mask() == 0
            {
                continue 'tagged;
            }
        }
        out.push(Cube::new(
            nvars,
            c.value_mask() | tag_value,
            c.care_mask() | bit,
        ));
    }
    out
}

/// The smallest single cube containing the complement of the buffer
/// (espresso's SCCC), or `None` when the complement is empty (the buffer
/// is a tautology).
///
/// This is REDUCE's inner operation. The full complement is never built:
/// one unate recursion computes the supercube directly, with an exact
/// bitmap leaf for supports of up to six variables, merging branch results
/// by cube supercube.
pub(crate) fn supercube_of_complement(nvars: usize, cubes: &[Cube]) -> Option<Cube> {
    with_pool(|pool| sccc_rec(nvars, cubes, pool))
}

fn sccc_rec(nvars: usize, buf: &[Cube], pool: &mut ScratchPool) -> Option<Cube> {
    if buf.is_empty() {
        return Some(Cube::universe(nvars));
    }
    let (pos, neg, universal) = polarity_masks(buf);
    if universal {
        return None;
    }
    let support = pos | neg;

    // Small-support leaf: the complement's minterm bitmap directly yields
    // the supercube (a literal survives iff every uncovered minterm agrees
    // on it).
    if support.count_ones() <= 6 {
        return sccc_leaf(nvars, buf, support);
    }

    let var = most_binate_variable(buf)
        .or_else(|| most_frequent_variable(buf))
        .expect("non-universal cover has a literal");
    let bit = 1u64 << var;
    let mut b = pool.take();
    cofactor_into(buf, var, false, &mut b);
    let s0 = sccc_rec(nvars, &b, pool);
    cofactor_into(buf, var, true, &mut b);
    let s1 = sccc_rec(nvars, &b, pool);
    pool.put(b);
    match (s0, s1) {
        (None, None) => None,
        // Complement lives only on one side: tag it with that side's
        // literal.
        (Some(a), None) => Some(Cube::new(nvars, a.value_mask(), a.care_mask() | bit)),
        (None, Some(b1)) => Some(Cube::new(
            nvars,
            b1.value_mask() | bit,
            b1.care_mask() | bit,
        )),
        // Both sides: the split literal vanishes and the remaining literals
        // are those the two branch supercubes agree on.
        (Some(a), Some(b1)) => {
            let common = a.care_mask() & b1.care_mask() & !(a.value_mask() ^ b1.value_mask());
            Some(Cube::new(nvars, a.value_mask() & common, common))
        }
    }
}

/// SCCC leaf: supercube of the uncovered minterms of a ≤6-variable-support
/// buffer.
fn sccc_leaf(nvars: usize, cubes: &[Cube], support: u64) -> Option<Cube> {
    let k = support.count_ones() as usize;
    let mut vars = [0usize; 6];
    let mut m = support;
    let mut idx = 0;
    while m != 0 {
        vars[idx] = m.trailing_zeros() as usize;
        idx += 1;
        m &= m - 1;
    }
    let full: u64 = if k == 6 {
        u64::MAX
    } else {
        (1u64 << (1 << k)) - 1
    };
    let mut covered = 0u64;
    for c in cubes {
        let mut value = 0u64;
        let mut care = 0u64;
        for (j, &v) in vars.iter().take(k).enumerate() {
            let bit = 1u64 << v;
            if c.care_mask() & bit != 0 {
                care |= 1 << j;
                if c.value_mask() & bit != 0 {
                    value |= 1 << j;
                }
            }
        }
        covered |= leaf_cube_mask(k, value, care, full);
        if covered == full {
            return None;
        }
    }
    let uncovered = full & !covered;
    let mut gv = 0u64;
    let mut gc = 0u64;
    for (j, &v) in vars.iter().take(k).enumerate() {
        if uncovered & !VAR_MASK[j] & full == 0 {
            // Every uncovered minterm has variable j = 1.
            gc |= 1 << v;
            gv |= 1 << v;
        } else if uncovered & VAR_MASK[j] == 0 {
            gc |= 1 << v;
        }
    }
    Some(Cube::new(nvars, gv, gc))
}

/// Whether the sub-cover `rest ∪ dc`, cofactored against `target`, covers
/// `target` entirely — the IRREDUNDANT / coverage primitive. Operates on
/// borrowed slices and pooled buffers only.
pub(crate) fn cofactored_tautology(rest: impl Iterator<Item = Cube>, target: &Cube) -> bool {
    with_pool(|pool| {
        let mut buf = pool.take();
        for c in rest {
            if let Some(k) = c.cofactor_cube(target) {
                buf.push(k);
            }
        }
        let r = tautology_rec(&mut buf, pool);
        pool.put(buf);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_eval(cubes: &[Cube], m: u64) -> bool {
        cubes.iter().any(|c| c.contains_minterm(m))
    }

    fn seeded_cubes(nvars: usize, n: usize, seed: u64) -> Vec<Cube> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        (0..n)
            .map(|_| {
                let care = next() & ((1u64 << nvars) - 1);
                Cube::new(nvars, next(), care)
            })
            .collect()
    }

    #[test]
    fn tautology_matches_exhaustive_eval() {
        for seed in 0..120u64 {
            let n = 3 + (seed % 8) as usize; // 3..=10 vars
            let cubes = seeded_cubes(n, 2 + (seed % 13) as usize, seed);
            let expect = (0..1u64 << n).all(|m| cover_eval(&cubes, m));
            assert_eq!(is_tautology(&cubes), expect, "seed {seed}");
        }
    }

    #[test]
    fn complement_matches_exhaustive_eval() {
        for seed in 0..120u64 {
            let n = 2 + (seed % 9) as usize; // 2..=10 vars
            let cubes = seeded_cubes(n, 1 + (seed % 11) as usize, seed ^ 0xABC);
            let comp = complement(n, &cubes);
            for m in 0..1u64 << n {
                assert_eq!(
                    cover_eval(&comp, m),
                    !cover_eval(&cubes, m),
                    "seed {seed} minterm {m}"
                );
            }
        }
    }

    #[test]
    fn containment_keeps_function_and_first_duplicates() {
        let a = Cube::new(3, 0b001, 0b001);
        let ab = Cube::new(3, 0b011, 0b011);
        let mut v = vec![ab, a, ab, a];
        single_cube_containment(&mut v);
        assert_eq!(v, vec![a]);
        for seed in 0..60u64 {
            let n = 2 + (seed % 7) as usize;
            let orig = seeded_cubes(n, 3 + (seed % 17) as usize, seed ^ 0x51);
            let mut red = orig.clone();
            single_cube_containment(&mut red);
            assert!(red.len() <= orig.len());
            for m in 0..1u64 << n {
                assert_eq!(cover_eval(&red, m), cover_eval(&orig, m), "seed {seed}");
            }
        }
    }

    #[test]
    fn sccc_matches_complement_supercube() {
        for seed in 0..150u64 {
            let n = 2 + (seed % 9) as usize;
            let cubes = seeded_cubes(n, 1 + (seed % 9) as usize, seed ^ 0xDEAD);
            let sc = supercube_of_complement(n, &cubes);
            // Reference: supercube of the uncovered minterms.
            let mut value = 0u64;
            let mut care = 0u64;
            let mut any = false;
            for m in 0..1u64 << n {
                if !cover_eval(&cubes, m) {
                    if !any {
                        value = m;
                        care = (1u64 << n) - 1;
                        any = true;
                    } else {
                        let common = care & !(value ^ m);
                        care = common;
                        value &= common;
                    }
                }
            }
            match sc {
                None => assert!(!any, "seed {seed}: complement nonempty but SCCC None"),
                Some(c) => {
                    assert!(any, "seed {seed}: complement empty but SCCC Some");
                    assert_eq!(
                        (c.value_mask(), c.care_mask()),
                        (value, care),
                        "seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn leaf_handles_full_support_width() {
        // 6-var XOR-ish cover: not a tautology.
        let cubes = seeded_cubes(6, 5, 99);
        let expect = (0..64u64).all(|m| cover_eval(&cubes, m));
        assert_eq!(is_tautology(&cubes), expect);
        // Universe split across one variable: tautology through the leaf.
        let t = vec![Cube::new(6, 0, 1), Cube::new(6, 1, 1)];
        assert!(is_tautology(&t));
    }
}
