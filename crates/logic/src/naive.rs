//! Reference (pre-optimization) kernel algorithms.
//!
//! These are the seed implementations of complementation, tautology
//! checking, single-cube containment, and the espresso loop, kept verbatim
//! so that:
//!
//! * the oracle property tests can check the optimized `urp` kernel
//!   against an independent implementation (in addition to the brute-force
//!   truth-table oracle), and
//! * the `bench_espresso` benchmark can measure the speedup of the
//!   optimized kernel against the exact code it replaced, tracked across
//!   PRs in `BENCH_espresso.json`.
//!
//! Nothing in the production flow calls into this module.

use crate::espresso::EspressoOptions;
use crate::{Cover, Cube};

/// Seed tautology check: binate Shannon recursion with no unate reduction,
/// leaf evaluation, or pruning.
pub fn is_tautology_naive(f: &Cover) -> bool {
    if f.cubes().iter().any(|c| c.literal_count() == 0) {
        return true;
    }
    if f.is_empty() {
        return false;
    }
    match most_binate_variable_naive(f) {
        None => false,
        Some(var) => {
            is_tautology_naive(&f.cofactor(var, false))
                && is_tautology_naive(&f.cofactor(var, true))
        }
    }
}

fn most_binate_variable_naive(f: &Cover) -> Option<usize> {
    let nvars = f.nvars();
    let mut pos = vec![0usize; nvars];
    let mut neg = vec![0usize; nvars];
    for c in f.cubes() {
        let care = c.care_mask();
        let value = c.value_mask();
        for v in 0..nvars {
            if care >> v & 1 != 0 {
                if value >> v & 1 != 0 {
                    pos[v] += 1;
                } else {
                    neg[v] += 1;
                }
            }
        }
    }
    (0..nvars)
        .filter(|&v| pos[v] > 0 && neg[v] > 0)
        .max_by_key(|&v| pos[v].min(neg[v]) * 1024 + pos[v] + neg[v])
}

/// Seed single-cube containment: the O(n²) pairwise scan.
pub fn remove_contained_cubes_naive(f: &mut Cover) {
    let cubes: Vec<Cube> = f.cubes().to_vec();
    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..cubes.len() {
            if i != j
                && keep[j]
                && cubes[j].contains_cube(&cubes[i])
                && (cubes[i] != cubes[j] || i > j)
            {
                keep[i] = false;
                break;
            }
        }
    }
    *f = Cover::from_cubes(
        f.nvars(),
        cubes
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| keep[i])
            .map(|(_, c)| c),
    );
}

/// Seed complement: plain Shannon recursion splitting on the most-used
/// variable, with the O(n²) containment cleanup at every merge.
pub fn complement_naive(f: &Cover) -> Cover {
    let nvars = f.nvars();
    if f.cubes().iter().any(|c| c.literal_count() == 0) {
        return Cover::empty(nvars);
    }
    if f.is_empty() {
        return Cover::tautology_cover(nvars);
    }
    if f.cube_count() == 1 {
        let c = &f.cubes()[0];
        let mut out = Cover::empty(nvars);
        for v in 0..nvars {
            match c.literal(v) {
                crate::cube::Literal::DontCare => {}
                crate::cube::Literal::Positive => out.push(Cube::new(nvars, 0, 1u64 << v)),
                crate::cube::Literal::Negative => out.push(Cube::new(nvars, 1u64 << v, 1u64 << v)),
            }
        }
        return out;
    }
    let var = {
        let mut counts = vec![0usize; nvars];
        for c in f.cubes() {
            for (v, count) in counts.iter_mut().enumerate() {
                if c.care_mask() >> v & 1 != 0 {
                    *count += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(v, _)| v)
            .expect("nonempty")
    };
    let c0 = complement_naive(&f.cofactor(var, false));
    let c1 = complement_naive(&f.cofactor(var, true));
    let mut out = Cover::empty(nvars);
    for c in c0.cubes() {
        if let Some(k) = c.intersect(&Cube::new(nvars, 0, 1u64 << var)) {
            out.push(k);
        }
    }
    for c in c1.cubes() {
        if let Some(k) = c.intersect(&Cube::new(nvars, 1u64 << var, 1u64 << var)) {
            out.push(k);
        }
    }
    remove_contained_cubes_naive(&mut out);
    out
}

fn covers_cube_naive(f: &Cover, cube: &Cube) -> bool {
    is_tautology_naive(&f.cofactor_cube(cube))
}

fn cost(f: &Cover) -> usize {
    f.cube_count() * 256 + f.literal_count()
}

fn intersects_cover(c: &Cube, cover: &Cover) -> bool {
    cover.cubes().iter().any(|k| c.distance(k) == 0)
}

fn expand_naive(f: &mut Cover, off: &Cover) {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| cubes[i].literal_count());
    for &i in &order {
        let mut c = cubes[i];
        for v in 0..nvars {
            if c.literal(v) == crate::cube::Literal::DontCare {
                continue;
            }
            let raised = c.with_literal(v, crate::cube::Literal::DontCare);
            if !intersects_cover(&raised, off) {
                c = raised;
            }
        }
        cubes[i] = c;
    }
    *f = Cover::from_cubes(nvars, cubes);
    remove_contained_cubes_naive(f);
}

fn irredundant_naive(f: &mut Cover, dc: &Cover) {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].literal_count()));
    let mut alive = vec![true; cubes.len()];
    for &i in &order {
        alive[i] = false;
        let rest = Cover::from_cubes(
            nvars,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| alive[j])
                .map(|(_, c)| *c)
                .chain(dc.cubes().iter().copied()),
        );
        if !covers_cube_naive(&rest, &cubes[i]) {
            alive[i] = true;
        }
    }
    let kept: Vec<Cube> = cubes
        .drain(..)
        .enumerate()
        .filter(|&(j, _)| alive[j])
        .map(|(_, c)| c)
        .collect();
    *f = Cover::from_cubes(nvars, kept);
}

fn supercube(f: &Cover) -> Option<Cube> {
    let mut it = f.cubes().iter();
    let first = *it.next()?;
    let mut value = first.value_mask();
    let mut care = first.care_mask();
    for c in it {
        let common = care & c.care_mask() & !(value ^ c.value_mask());
        care = common;
        value &= common;
    }
    Some(Cube::new(f.nvars(), value, care))
}

fn reduce_naive(f: &mut Cover, dc: &Cover) {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    for i in 0..cubes.len() {
        let rest = Cover::from_cubes(
            nvars,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| *c)
                .chain(dc.cubes().iter().copied()),
        );
        let not_rest = complement_naive(&rest.cofactor_cube(&cubes[i]));
        if let Some(sc) = supercube(&not_rest) {
            if let Some(reduced) = cubes[i].intersect(&sc) {
                cubes[i] = reduced;
            }
        }
    }
    *f = Cover::from_cubes(nvars, cubes);
}

/// Seed espresso loop built entirely on the naive primitives above — the
/// pre-optimization `minimize`, used as the benchmark baseline.
pub fn minimize_naive(on: &Cover, dc: Option<&Cover>, opts: &EspressoOptions) -> Cover {
    let nvars = on.nvars();
    if on.is_empty() {
        return Cover::empty(nvars);
    }
    let empty_dc = Cover::empty(nvars);
    let dc = dc.unwrap_or(&empty_dc);
    let care_union = on.union(dc);
    if is_tautology_naive(&care_union) {
        return Cover::tautology_cover(nvars);
    }
    let off = complement_naive(&care_union);

    let mut f = on.clone();
    remove_contained_cubes_naive(&mut f);
    let mut best = f.clone();
    let mut best_cost = cost(&best);

    for iter in 0..opts.max_iterations {
        expand_naive(&mut f, &off);
        irredundant_naive(&mut f, dc);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else if iter > 0 {
            break;
        }
        if opts.reduce {
            reduce_naive(&mut f, dc);
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn naive_minimize_still_covers_exactly() {
        for seed in 0..10u64 {
            let tt = TruthTable::from_fn(5, |m| {
                (m as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed) >> 62 & 1 != 0
            });
            let min = minimize_naive(&Cover::from_truth_table(&tt), None, &Default::default());
            assert_eq!(min.to_truth_table(5), tt, "seed {seed}");
        }
    }

    #[test]
    fn naive_and_optimized_complements_agree_semantically() {
        for seed in 0..40u64 {
            let tt = TruthTable::from_fn(6, |m| {
                (m as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F ^ seed) >> 61 & 1 != 0
            });
            let f = Cover::from_truth_table(&tt);
            let fast = f.complement();
            let slow = complement_naive(&f);
            for m in 0..64u64 {
                assert_eq!(fast.eval(m), slow.eval(m), "seed {seed} minterm {m}");
            }
        }
    }
}
