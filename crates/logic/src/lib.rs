//! # synthir-logic
//!
//! Boolean-function kernel for the `synthir` chip-generator toolkit.
//!
//! This crate provides the combinational-logic mathematics that every other
//! layer of the reproduction of *Kelley et al., "Intermediate Representations
//! for Controllers in Chip Generators" (DATE 2011)* is built on:
//!
//! * [`BitVec`] — a growable bit-vector used for truth-table storage and
//!   bit-parallel simulation,
//! * [`TruthTable`] — a complete single-output boolean function of up to 24
//!   variables,
//! * [`Cube`] and [`Cover`] — three-valued product terms and sum-of-products
//!   covers over up to 64 variables,
//! * [`espresso`] — an espresso-style two-level minimizer
//!   (EXPAND / IRREDUNDANT / REDUCE),
//! * [`Bdd`] — a small reduced-ordered BDD manager used for equivalence
//!   checking and reachability,
//! * [`ValueSet`] — the *state propagation and folding* domain of the paper:
//!   the set of `k` values (`1 <= k <= 2^n`) an `n`-bit signal is known to
//!   take.
//!
//! ## Kernel architecture
//!
//! The hot path of every experiment is two-level minimization, so the cube
//! algebra underneath it is implemented as a *unate recursive paradigm*
//! core (private module `urp`): tautology and complementation run with
//! unate-variable reduction, exact 6-variable bitmap leaves, disjoint-
//! support component decomposition, a minterm-count bound, a cofactor memo
//! keyed on cover signatures, and pooled scratch buffers; single-cube
//! containment is signature-pruned (sorted by literal count with
//! `care`-mask subset bit-tests) instead of the historical O(n²) scan. The
//! seed implementations survive in [`naive`] as the oracle / benchmark
//! baseline, and [`par`] provides the deterministic thread-parallel map
//! that [`espresso::minimize_batch`] uses to minimize independent PLA
//! outputs concurrently (cargo feature `parallel`, enabled by default).
//!
//! ## Example
//!
//! ```
//! use synthir_logic::TruthTable;
//!
//! // f = a & b | !a & c  over variables [a, b, c]
//! let f = TruthTable::from_fn(3, |m| {
//!     let (a, b, c) = (m & 1 != 0, m & 2 != 0, m & 4 != 0);
//!     (a && b) || (!a && c)
//! });
//! let cover = synthir_logic::espresso::minimize_tt(&f, None);
//! assert!(cover.cube_count() <= 3);
//! assert_eq!(cover.to_truth_table(3), f);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod bitvec;
pub mod cover;
pub mod cube;
pub mod espresso;
pub mod naive;
pub mod par;
pub mod pla;
pub mod truthtable;
mod urp;
pub mod valueset;

pub use bdd::{Bdd, BddRef};
pub use bitvec::BitVec;
pub use cover::Cover;
pub use cube::Cube;
pub use truthtable::TruthTable;
pub use valueset::ValueSet;

/// Maximum number of variables supported by [`Cube`]/[`Cover`].
pub const MAX_CUBE_VARS: usize = 64;

/// Maximum number of inputs supported by a [`TruthTable`].
pub const MAX_TT_INPUTS: usize = 24;

/// Errors produced by the logic kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A function was requested over more variables than supported.
    TooManyVariables {
        /// Requested variable count.
        requested: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Two objects over different variable counts were combined.
    VariableCountMismatch {
        /// Left-hand variable count.
        left: usize,
        /// Right-hand variable count.
        right: usize,
    },
    /// An index (variable or minterm) was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The valid exclusive bound.
        bound: usize,
    },
    /// A textual format (e.g. PLA) failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for LogicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogicError::TooManyVariables { requested, max } => {
                write!(f, "too many variables: {requested} (max {max})")
            }
            LogicError::VariableCountMismatch { left, right } => {
                write!(f, "variable count mismatch: {left} vs {right}")
            }
            LogicError::IndexOutOfRange { index, bound } => {
                write!(f, "index {index} out of range (bound {bound})")
            }
            LogicError::Parse { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = LogicError::TooManyVariables {
            requested: 99,
            max: 64,
        };
        assert!(e.to_string().contains("99"));
        let e = LogicError::VariableCountMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains("3"));
        let e = LogicError::IndexOutOfRange { index: 8, bound: 8 };
        assert!(e.to_string().contains("bound 8"));
    }
}
