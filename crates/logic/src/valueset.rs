//! Value sets: the "state propagation and folding" abstract domain.
//!
//! The paper formalizes the key optimization property as follows: an `n`-bit
//! signal `y` has `k = 2^n` possible states in a physical design, but if the
//! design context restricts it (a one-hot bus, a sparsely-programmed
//! microcode field, a state register with few reachable encodings), then
//! `k < 2^n`, and downstream logic can be evaluated over just those `k`
//! values. Constant propagation is the `k = 1` special case.
//!
//! [`ValueSet`] is that domain: an explicit, ordered, deduplicated set of
//! up-to-128-bit values a signal group may take, or [`ValueSet::All`] when
//! nothing is known.

use std::collections::BTreeSet;

/// The set of values an `n`-bit signal group is known to take (`n <= 128`).
///
/// # Examples
///
/// ```
/// use synthir_logic::ValueSet;
///
/// let onehot = ValueSet::one_hot(4);
/// assert_eq!(onehot.len(), Some(4));
/// assert!(onehot.contains(0b0100));
/// assert!(!onehot.contains(0b0110));
/// assert!(onehot.is_one_hot());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ValueSet {
    /// Nothing is known: the signal may take all `2^n` values.
    All {
        /// Signal width in bits.
        width: u32,
    },
    /// The signal takes only the listed values.
    Values {
        /// Signal width in bits.
        width: u32,
        /// The possible values (each `< 2^width`).
        values: BTreeSet<u128>,
    },
}

impl ValueSet {
    /// The unconstrained set over `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width > 128`.
    pub fn all(width: u32) -> Self {
        assert!(width <= 128, "value sets support at most 128 bits");
        ValueSet::All { width }
    }

    /// A singleton set (a known constant: the `k = 1` case).
    pub fn constant(width: u32, value: u128) -> Self {
        Self::from_values(width, [value])
    }

    /// Builds a set from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `width > 128` or any value needs more than `width` bits.
    pub fn from_values(width: u32, values: impl IntoIterator<Item = u128>) -> Self {
        assert!(width <= 128, "value sets support at most 128 bits");
        let mask = Self::mask(width);
        let values: BTreeSet<u128> = values.into_iter().collect();
        for &v in &values {
            assert!(v & !mask == 0, "value {v:#x} exceeds width {width}");
        }
        ValueSet::Values { width, values }
    }

    /// The one-hot set `{1, 2, 4, ..., 2^(width-1)}` — the paper's running
    /// example (`k = n`).
    pub fn one_hot(width: u32) -> Self {
        Self::from_values(width, (0..width).map(|i| 1u128 << i))
    }

    /// The contiguous range `0..bound` (e.g. a microprogram counter that
    /// never exceeds the program length).
    pub fn range(width: u32, bound: u128) -> Self {
        Self::from_values(width, 0..bound)
    }

    fn mask(width: u32) -> u128 {
        if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// Signal width in bits.
    pub fn width(&self) -> u32 {
        match self {
            ValueSet::All { width } | ValueSet::Values { width, .. } => *width,
        }
    }

    /// Number of values, or `None` for [`ValueSet::All`].
    pub fn len(&self) -> Option<usize> {
        match self {
            ValueSet::All { .. } => None,
            ValueSet::Values { values, .. } => Some(values.len()),
        }
    }

    /// Whether the set is the empty set (an unreachable signal).
    pub fn is_empty(&self) -> bool {
        matches!(self, ValueSet::Values { values, .. } if values.is_empty())
    }

    /// Whether the set constrains the signal at all.
    pub fn is_constrained(&self) -> bool {
        matches!(self, ValueSet::Values { .. })
    }

    /// Whether value `v` may occur.
    pub fn contains(&self, v: u128) -> bool {
        match self {
            ValueSet::All { width } => v & !Self::mask(*width) == 0,
            ValueSet::Values { values, .. } => values.contains(&v),
        }
    }

    /// The constant value if `k = 1`.
    pub fn as_constant(&self) -> Option<u128> {
        match self {
            ValueSet::Values { values, .. } if values.len() == 1 => values.iter().next().copied(),
            _ => None,
        }
    }

    /// Whether every value has exactly one bit set (the set may be a strict
    /// subset of the full one-hot set).
    pub fn is_one_hot(&self) -> bool {
        match self {
            ValueSet::All { width } => *width == 1,
            ValueSet::Values { values, .. } => {
                !values.is_empty() && values.iter().all(|v| v.count_ones() == 1)
            }
        }
    }

    /// Iterator over the explicit values (`None` for [`ValueSet::All`] wider
    /// than 20 bits; for narrow `All` sets the full range is enumerated).
    pub fn iter_values(&self) -> Option<Box<dyn Iterator<Item = u128> + '_>> {
        match self {
            ValueSet::All { width } if *width <= 20 => Some(Box::new(0..(1u128 << *width))),
            ValueSet::All { .. } => None,
            ValueSet::Values { values, .. } => Some(Box::new(values.iter().copied())),
        }
    }

    /// The image of the set under a function (e.g. the value set of a
    /// downstream signal computed from this one).
    ///
    /// Returns [`ValueSet::All`] when this set cannot be enumerated.
    pub fn map(&self, out_width: u32, f: impl FnMut(u128) -> u128) -> ValueSet {
        match self.iter_values() {
            None => ValueSet::all(out_width),
            Some(it) => {
                let mut f = f;
                ValueSet::from_values(out_width, it.map(&mut f))
            }
        }
    }

    /// The union of two sets of equal width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union(&self, other: &ValueSet) -> ValueSet {
        assert_eq!(self.width(), other.width(), "value set width mismatch");
        match (self, other) {
            (ValueSet::All { width }, _) | (_, ValueSet::All { width }) => ValueSet::all(*width),
            (ValueSet::Values { width, values: a }, ValueSet::Values { values: b, .. }) => {
                ValueSet::Values {
                    width: *width,
                    values: a.union(b).copied().collect(),
                }
            }
        }
    }

    /// Restricts the set to at most `max_k` values, widening to
    /// [`ValueSet::All`] beyond that. This models the synthesis tool's
    /// effort limit on state annotation (the paper observes manual
    /// annotation is effective for subfields of up to 32 bits).
    pub fn widen(&self, max_k: usize) -> ValueSet {
        match self.len() {
            Some(k) if k <= max_k => self.clone(),
            _ => ValueSet::all(self.width()),
        }
    }

    /// The value of bit `bit` if it is the same across all values.
    pub fn constant_bit(&self, bit: u32) -> Option<bool> {
        let mut it = self.iter_values()?;
        let first = (it.next()? >> bit) & 1 != 0;
        for v in it {
            if ((v >> bit) & 1 != 0) != first {
                return None;
            }
        }
        Some(first)
    }
}

impl std::fmt::Display for ValueSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueSet::All { width } => write!(f, "all[{width}]"),
            ValueSet::Values { width, values } => {
                write!(f, "{{")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:#x}")?;
                }
                write!(f, "}}[{width}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_properties() {
        let s = ValueSet::one_hot(8);
        assert_eq!(s.len(), Some(8));
        assert!(s.is_one_hot());
        assert!(s.contains(0x80));
        assert!(!s.contains(0x81));
        assert!(!s.contains(0));
    }

    #[test]
    fn constant_detection() {
        let s = ValueSet::constant(16, 0xBEEF);
        assert_eq!(s.as_constant(), Some(0xBEEF));
        assert_eq!(ValueSet::one_hot(4).as_constant(), None);
        assert_eq!(ValueSet::all(4).as_constant(), None);
    }

    #[test]
    fn map_computes_image() {
        // Ones-counter over a one-hot bus: the paper's example — the output
        // is the constant 1.
        let onehot = ValueSet::one_hot(8);
        let ones = onehot.map(4, |v| v.count_ones() as u128);
        assert_eq!(ones.as_constant(), Some(1));
    }

    #[test]
    fn map_of_all_is_all() {
        let s = ValueSet::all(64);
        let m = s.map(4, |v| v & 0xF);
        assert!(!m.is_constrained());
    }

    #[test]
    fn narrow_all_is_enumerable() {
        let s = ValueSet::all(3);
        let m = s.map(1, |v| u128::from(v == 7));
        // Not constant: both 0 and 1 occur.
        assert_eq!(m.as_constant(), None);
        assert_eq!(m.len(), Some(2));
    }

    #[test]
    fn union_and_widen() {
        let a = ValueSet::from_values(4, [1, 2]);
        let b = ValueSet::from_values(4, [2, 3]);
        let u = a.union(&b);
        assert_eq!(u.len(), Some(3));
        assert!(u.widen(3).is_constrained());
        assert!(!u.widen(2).is_constrained());
        let all = ValueSet::all(4);
        assert!(!a.union(&all).is_constrained());
    }

    #[test]
    fn constant_bit() {
        let s = ValueSet::from_values(4, [0b1010, 0b1000]);
        assert_eq!(s.constant_bit(3), Some(true));
        assert_eq!(s.constant_bit(0), Some(false));
        assert_eq!(s.constant_bit(1), None);
    }

    #[test]
    fn range_set() {
        let s = ValueSet::range(8, 5);
        assert_eq!(s.len(), Some(5));
        assert!(s.contains(4));
        assert!(!s.contains(5));
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn oversized_value_panics() {
        ValueSet::from_values(4, [16]);
    }

    #[test]
    fn display() {
        assert_eq!(ValueSet::all(8).to_string(), "all[8]");
        let s = ValueSet::from_values(4, [1, 2]).to_string();
        assert!(s.contains("0x1"));
    }
}
