//! Sum-of-products covers.

use crate::{Cube, LogicError, TruthTable, MAX_TT_INPUTS};

/// A sum-of-products cover: a disjunction of [`Cube`] product terms over a
/// common variable space.
///
/// # Examples
///
/// ```
/// use synthir_logic::{Cover, Cube};
///
/// let mut f = Cover::empty(3);
/// f.push(Cube::new(3, 0b011, 0b011)); // a & b
/// f.push(Cube::new(3, 0b100, 0b100)); // c
/// assert!(f.eval(0b111));
/// assert!(!f.eval(0b001));
/// assert_eq!(f.literal_count(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cover {
    nvars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant false).
    pub fn empty(nvars: usize) -> Self {
        Cover {
            nvars,
            cubes: Vec::new(),
        }
    }

    /// The tautological cover (constant true).
    pub fn tautology_cover(nvars: usize) -> Self {
        Cover {
            nvars,
            cubes: vec![Cube::universe(nvars)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube ranges over a different number of variables.
    pub fn from_cubes(nvars: usize, cubes: impl IntoIterator<Item = Cube>) -> Self {
        let cubes: Vec<Cube> = cubes.into_iter().collect();
        for c in &cubes {
            assert_eq!(c.nvars(), nvars, "cube variable count mismatch");
        }
        Cover { nvars, cubes }
    }

    /// Builds the canonical minterm cover of a truth table (one cube per ON
    /// minterm, in ascending minterm order).
    pub fn from_truth_table(tt: &TruthTable) -> Self {
        Cover {
            nvars: tt.inputs(),
            cubes: tt
                .iter_ones()
                .map(|m| Cube::minterm(tt.inputs(), m as u64))
                .collect(),
        }
    }

    /// Number of variables of the cover's space.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of cubes.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals across all cubes (a standard two-level cost
    /// metric).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Whether the cover has no cubes (constant false).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube ranges over a different number of variables.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.nvars(), self.nvars, "cube variable count mismatch");
        self.cubes.push(cube);
    }

    /// Evaluates the cover on a minterm.
    pub fn eval(&self, m: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(m))
    }

    /// Converts the cover to a complete truth table.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVariables`] if `nvars > MAX_TT_INPUTS`,
    /// or [`LogicError::VariableCountMismatch`] if `nvars != self.nvars()`.
    pub fn try_to_truth_table(&self, nvars: usize) -> Result<TruthTable, LogicError> {
        if nvars != self.nvars {
            return Err(LogicError::VariableCountMismatch {
                left: nvars,
                right: self.nvars,
            });
        }
        if nvars > MAX_TT_INPUTS {
            return Err(LogicError::TooManyVariables {
                requested: nvars,
                max: MAX_TT_INPUTS,
            });
        }
        Ok(TruthTable::from_fn(nvars, |m| self.eval(m as u64)))
    }

    /// Converts the cover to a complete truth table.
    ///
    /// # Panics
    ///
    /// Panics under the error conditions of [`Cover::try_to_truth_table`].
    pub fn to_truth_table(&self, nvars: usize) -> TruthTable {
        self.try_to_truth_table(nvars)
            .expect("cover convertible to truth table")
    }

    /// The cofactor of the cover with respect to a cube: keeps the cubes
    /// intersecting `c` and removes `c`'s literals from them.
    pub fn cofactor_cube(&self, c: &Cube) -> Cover {
        Cover {
            nvars: self.nvars,
            cubes: self
                .cubes
                .iter()
                .filter_map(|k| k.cofactor_cube(c))
                .collect(),
        }
    }

    /// The cofactor with respect to a single variable assignment.
    pub fn cofactor(&self, var: usize, value: bool) -> Cover {
        Cover {
            nvars: self.nvars,
            cubes: self
                .cubes
                .iter()
                .filter_map(|k| k.cofactor(var, value))
                .collect(),
        }
    }

    /// Whether the cover is a tautology (covers every minterm).
    ///
    /// Runs the unate recursive paradigm of the private `urp` module: unate-variable
    /// reduction, exact bitmap leaves for supports of up to six variables,
    /// disjoint-support component decomposition, a minterm-count bound, and
    /// binate Shannon branching on pooled scratch buffers.
    pub fn is_tautology(&self) -> bool {
        crate::urp::is_tautology(&self.cubes)
    }

    /// Whether a cube is entirely covered by this cover.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        crate::urp::cofactored_tautology(self.cubes.iter().copied(), cube)
    }

    /// Whether this cover covers every minterm of `other`.
    pub fn covers(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// The complement of the cover.
    ///
    /// Computed by the private `urp` module's memoized unate recursive paradigm:
    /// single-cube De Morgan leaves, merge-without-tagging on unate split
    /// variables, identical-cube branch merging, and a cofactor memo keyed
    /// on the sorted cube signature. The result is single-cube minimal (no
    /// cube contains another).
    pub fn complement(&self) -> Cover {
        Cover {
            nvars: self.nvars,
            cubes: crate::urp::complement(self.nvars, &self.cubes),
        }
    }

    /// Removes cubes contained in other single cubes of the cover
    /// (single-cube containment), preserving the relative order of the
    /// surviving cubes.
    ///
    /// The sweep sorts by literal count and applies `care`-mask subset
    /// bit-tests, so containment candidates are rejected in two word
    /// operations instead of the historical full pairwise scan.
    pub fn remove_contained_cubes(&mut self) {
        crate::urp::single_cube_containment(&mut self.cubes);
    }

    /// The disjunction of two covers over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.nvars, other.nvars, "cover variable count mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        Cover {
            nvars: self.nvars,
            cubes,
        }
    }
}

impl std::fmt::Debug for Cover {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cover[{} vars; ", self.nvars)?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl std::fmt::Display for Cover {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Cover {
        Cover::from_cubes(2, [Cube::new(2, 0b01, 0b11), Cube::new(2, 0b10, 0b11)])
    }

    #[test]
    fn eval_matches_cubes() {
        let f = xor2();
        assert!(!f.eval(0b00));
        assert!(f.eval(0b01));
        assert!(f.eval(0b10));
        assert!(!f.eval(0b11));
    }

    #[test]
    fn tautology_detection() {
        assert!(Cover::tautology_cover(3).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        assert!(!xor2().is_tautology());
        // a + !a is a tautology.
        let f = Cover::from_cubes(1, [Cube::new(1, 1, 1), Cube::new(1, 0, 1)]);
        assert!(f.is_tautology());
        // Harder: a + !a&b + !a&!b over 2 vars.
        let f = Cover::from_cubes(
            2,
            [
                Cube::new(2, 0b01, 0b01),
                Cube::new(2, 0b10, 0b11),
                Cube::new(2, 0b00, 0b11),
            ],
        );
        assert!(f.is_tautology());
    }

    #[test]
    fn complement_is_exact() {
        let f = xor2();
        let g = f.complement();
        for m in 0..4 {
            assert_eq!(g.eval(m), !f.eval(m), "minterm {m}");
        }
        // Complement of empty is tautology and vice versa.
        assert!(Cover::empty(3).complement().is_tautology());
        assert!(Cover::tautology_cover(3).complement().is_empty());
    }

    #[test]
    fn complement_random_functions() {
        for seed in 0..20u64 {
            let tt = TruthTable::from_fn(5, |m| {
                let h = (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed.wrapping_mul(0xABCD);
                h.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 != 0
            });
            let f = Cover::from_truth_table(&tt);
            let g = f.complement();
            for m in 0..32u64 {
                assert_eq!(g.eval(m), !tt.eval(m as usize));
            }
        }
    }

    #[test]
    fn covers_and_containment() {
        let f = xor2();
        assert!(f.covers_cube(&Cube::minterm(2, 0b01)));
        assert!(!f.covers_cube(&Cube::minterm(2, 0b11)));
        let g = Cover::from_cubes(2, [Cube::new(2, 0b01, 0b11)]);
        assert!(f.covers(&g));
        assert!(!g.covers(&f));
    }

    #[test]
    fn remove_contained() {
        let mut f = Cover::from_cubes(
            2,
            [
                Cube::new(2, 0b01, 0b01), // a
                Cube::new(2, 0b01, 0b11), // a & !b (contained in a)
                Cube::new(2, 0b01, 0b01), // duplicate of a
            ],
        );
        f.remove_contained_cubes();
        assert_eq!(f.cube_count(), 1);
    }

    #[test]
    fn truth_table_round_trip() {
        let tt = TruthTable::from_fn(4, |m| m.count_ones() >= 2);
        let f = Cover::from_truth_table(&tt);
        assert_eq!(f.to_truth_table(4), tt);
    }

    #[test]
    fn union_evaluates_as_or() {
        let a = Cover::from_cubes(2, [Cube::new(2, 0b01, 0b11)]);
        let b = Cover::from_cubes(2, [Cube::new(2, 0b10, 0b11)]);
        let u = a.union(&b);
        assert_eq!(u.cube_count(), 2);
        for m in 0..4 {
            assert_eq!(u.eval(m), a.eval(m) || b.eval(m));
        }
    }

    #[test]
    fn display_pla_style() {
        let f = xor2();
        let s = format!("{f}");
        assert!(s.contains("01"));
        assert!(s.contains("10"));
        assert_eq!(format!("{}", Cover::empty(2)), "0");
    }
}
