//! An espresso-style heuristic two-level minimizer.
//!
//! This is the partial-evaluation workhorse of the synthesis engine: after
//! configuration constants have been folded into a cone of logic, the cone is
//! collapsed to a truth table and re-covered here, which is how table-based
//! controller logic converges to the quality of a directly-written
//! sum-of-products description (Fig. 5 of the paper).
//!
//! The implementation follows the classic EXPAND / IRREDUNDANT / REDUCE loop
//! of Brayton et al.'s ESPRESSO, operating on [`Cover`]s with an optional
//! don't-care set. It is heuristic (order-sensitive), which is *deliberate*:
//! the paper attributes the scatter of Fig. 5 to the "bumpy optimization
//! surface" of the synthesis tool, and starting the loop from different (but
//! logically equivalent) initial covers reproduces exactly that behaviour.
//!
//! All cube algebra underneath the loop (OFF-set complementation,
//! IRREDUNDANT's coverage checks, REDUCE's residue complements) runs on the
//! unate-recursive kernel of `crate::urp`, which keeps its cofactor buffers
//! in a scratch pool so the sweeps stop allocating per recursion step.
//! Independent outputs are minimized concurrently by [`minimize_batch`] /
//! [`minimize_tt_batch`] (deterministic: identical to the serial order).
//! The pre-optimization implementation is preserved in [`crate::naive`] and
//! benchmarked against this one by `bench_espresso`.

use crate::{Cover, Cube, TruthTable};

/// Options controlling the minimization loop.
#[derive(Clone, Debug)]
pub struct EspressoOptions {
    /// Maximum number of EXPAND/IRREDUNDANT/REDUCE sweeps.
    pub max_iterations: usize,
    /// Run the REDUCE phase (disable to ablate; see `ablate_minimize`).
    pub reduce: bool,
}

impl Default for EspressoOptions {
    fn default() -> Self {
        EspressoOptions {
            max_iterations: 4,
            reduce: true,
        }
    }
}

/// Minimizes `on` against the complement of `on ∪ dc`.
///
/// The result covers every minterm of `on`, no minterm of the OFF-set
/// (complement of `on ∪ dc`), and is heuristically minimal in cube count and
/// literal count. The input cover's cube *order* influences the local optimum
/// reached — see the module docs.
///
/// # Examples
///
/// ```
/// use synthir_logic::{Cover, Cube};
/// use synthir_logic::espresso::minimize;
///
/// // f = minterms {0b00, 0b01} of 2 vars = !b
/// let on = Cover::from_cubes(2, [Cube::minterm(2, 0), Cube::minterm(2, 1)]);
/// let min = minimize(&on, None, &Default::default());
/// assert_eq!(min.cube_count(), 1);
/// assert_eq!(min.literal_count(), 1);
/// ```
pub fn minimize(on: &Cover, dc: Option<&Cover>, opts: &EspressoOptions) -> Cover {
    let nvars = on.nvars();
    if on.is_empty() {
        return Cover::empty(nvars);
    }
    let empty_dc = Cover::empty(nvars);
    let dc = dc.unwrap_or(&empty_dc);
    let care_union = on.union(dc);
    if care_union.is_tautology() {
        return Cover::tautology_cover(nvars);
    }
    let off = care_union.complement();

    let mut f = on.clone();
    f.remove_contained_cubes();
    let mut best = f.clone();
    let mut best_cost = cost(&best);

    for iter in 0..opts.max_iterations {
        expand(&mut f, &off);
        irredundant(&mut f, dc);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else if iter > 0 {
            break;
        }
        if opts.reduce {
            reduce(&mut f, dc);
        } else {
            break;
        }
    }
    debug_assert!(verify(&best, on, dc, &off), "espresso produced wrong cover");
    best
}

/// Minimizes a truth table's ON-set (canonical minterm start).
pub fn minimize_tt(tt: &TruthTable, dc: Option<&TruthTable>) -> Cover {
    let on = Cover::from_truth_table(tt);
    let dc_cover = dc.map(Cover::from_truth_table);
    minimize(&on, dc_cover.as_ref(), &EspressoOptions::default())
}

/// Minimizes many independent ON-covers against a shared optional DC cover,
/// in parallel when the `parallel` feature is enabled.
///
/// Results are returned in input order and are bit-identical to calling
/// [`minimize`] serially on each cover: each job is independent and
/// deterministic, so threading only changes wall-clock time. This is the
/// driver the synthesis flow uses to minimize the outputs of a PLA (or the
/// cones of a netlist) concurrently.
pub fn minimize_batch(ons: &[Cover], dc: Option<&Cover>, opts: &EspressoOptions) -> Vec<Cover> {
    crate::par::par_map(ons, |on| minimize(on, dc, opts))
}

/// Per-output minimization of a multi-output function given as one truth
/// table per output bit, sharing one optional don't-care table; parallel
/// under the `parallel` feature, deterministic regardless.
pub fn minimize_tt_batch(
    tts: &[TruthTable],
    dc: Option<&TruthTable>,
    opts: &EspressoOptions,
) -> Vec<Cover> {
    let dc_cover = dc.map(Cover::from_truth_table);
    crate::par::par_map(tts, |tt| {
        minimize(&Cover::from_truth_table(tt), dc_cover.as_ref(), opts)
    })
}

/// Cost metric: cubes weighted heavily, then literals.
fn cost(f: &Cover) -> usize {
    f.cube_count() * 256 + f.literal_count()
}

/// EXPAND: enlarge each cube (drop literals) as long as it stays disjoint
/// from the OFF-set; afterwards remove cubes contained in the expanded ones.
///
/// Raising literal `v` of a cube with raised-set `R` is illegal exactly
/// when some OFF-cube `k` has conflict mask `conflict(c, k) \ R == {v}`.
/// For small OFF-sets the query is a plain early-exit scan; for large ones
/// the OFF-set is first partitioned by its six most frequent literal
/// variables, and any bucket whose pattern already conflicts the cube on
/// another unraised variable is skipped wholesale — the query touches only
/// the few OFF-cubes that could actually block the raise.
fn expand(f: &mut Cover, off: &Cover) {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Expand larger cubes first: they are most likely to absorb others.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| cubes[i].literal_count());

    let index = OffIndex::build(off);
    for &i in &order {
        let c = cubes[i];
        let mut raised = 0u64; // R: literals raised so far
        let mut lits = c.care_mask();
        while lits != 0 {
            let v = lits.trailing_zeros() as usize;
            lits &= lits - 1;
            if !index.blocks(&c, raised, v) {
                raised |= 1u64 << v;
            }
        }
        if raised != 0 {
            cubes[i] = Cube::new(nvars, c.value_mask() & !raised, c.care_mask() & !raised);
        }
    }
    *f = Cover::from_cubes(nvars, cubes);
    f.remove_contained_cubes();
}

/// Bucket index over an OFF-set: cubes grouped by their literal pattern on
/// the `S` most frequent variables, so raise-legality queries can reject
/// whole groups with one mask test.
struct OffIndex<'a> {
    off: &'a Cover,
    /// `(bucket value, bucket care, member indices)`; empty when the
    /// OFF-set is small enough for plain scans.
    buckets: Vec<(u64, u64, Vec<u32>)>,
}

/// Below this OFF-set size a linear early-exit scan beats the index.
const OFF_INDEX_MIN: usize = 64;

impl<'a> OffIndex<'a> {
    fn build(off: &'a Cover) -> Self {
        let mut buckets = Vec::new();
        if off.cube_count() >= OFF_INDEX_MIN {
            // The six most frequent literal variables discriminate best.
            let mut freq = [0u32; 64];
            for k in off.cubes() {
                let mut m = k.care_mask();
                while m != 0 {
                    freq[m.trailing_zeros() as usize] += 1;
                    m &= m - 1;
                }
            }
            let mut vars: Vec<usize> = (0..64).filter(|&v| freq[v] > 0).collect();
            vars.sort_by_key(|&v| std::cmp::Reverse(freq[v]));
            vars.truncate(6);
            let s_mask: u64 = vars.iter().map(|&v| 1u64 << v).sum();
            let mut by_key: std::collections::HashMap<(u64, u64), usize> =
                std::collections::HashMap::new();
            for (ki, k) in off.cubes().iter().enumerate() {
                let key = (k.value_mask() & s_mask, k.care_mask() & s_mask);
                let slot = *by_key.entry(key).or_insert_with(|| {
                    buckets.push((key.0, key.1, Vec::new()));
                    buckets.len() - 1
                });
                buckets[slot].2.push(ki as u32);
            }
        }
        OffIndex { off, buckets }
    }

    /// Whether raising literal `v` of `c` (with raised-set `raised`) would
    /// make it intersect the OFF-set.
    fn blocks(&self, c: &Cube, raised: u64, v: usize) -> bool {
        let bit = 1u64 << v;
        let live = !raised & !bit;
        if self.buckets.is_empty() {
            return self.off.cubes().iter().any(|k| {
                let conf = (c.value_mask() ^ k.value_mask()) & c.care_mask() & k.care_mask();
                conf & !raised == bit
            });
        }
        for (bval, bcare, members) in &self.buckets {
            // Every member conflicts `c` at least on the bucket pattern's
            // conflicts; one on an unraised variable other than `v` means
            // no member's remaining conflict can be exactly {v}.
            if (c.value_mask() ^ bval) & c.care_mask() & bcare & live != 0 {
                continue;
            }
            for &ki in members {
                let k = &self.off.cubes()[ki as usize];
                let conf = (c.value_mask() ^ k.value_mask()) & c.care_mask() & k.care_mask();
                if conf & !raised == bit {
                    return true;
                }
            }
        }
        false
    }
}

/// Whether a cube intersects any cube of a cover.
fn intersects_cover(c: &Cube, cover: &Cover) -> bool {
    cover.cubes().iter().any(|k| c.distance(k) == 0)
}

/// IRREDUNDANT: drop cubes covered by the rest of the cover plus don't-cares.
///
/// The coverage check cofactors the remaining cubes against the candidate
/// directly into a pooled scratch buffer (`urp::cofactored_tautology`), so
/// the sweep allocates no intermediate covers.
fn irredundant(f: &mut Cover, dc: &Cover) {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Try to remove small cubes first.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].literal_count()));
    let mut alive = vec![true; cubes.len()];
    for &i in &order {
        alive[i] = false;
        let rest = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| alive[j])
            .map(|(_, c)| *c)
            .chain(dc.cubes().iter().copied());
        if !crate::urp::cofactored_tautology(rest, &cubes[i]) {
            alive[i] = true;
        }
    }
    let kept: Vec<Cube> = cubes
        .drain(..)
        .enumerate()
        .filter(|&(j, _)| alive[j])
        .map(|(_, c)| c)
        .collect();
    *f = Cover::from_cubes(nvars, kept);
}

/// REDUCE: shrink each cube to the smallest cube still covering the part of
/// it not covered by the rest of the cover (plus don't-cares), opening room
/// for the next EXPAND to find a different local optimum.
fn reduce(f: &mut Cover, dc: &Cover) {
    let nvars = f.nvars();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    let mut cof: Vec<Cube> = Vec::with_capacity(cubes.len() + dc.cube_count());
    for i in 0..cubes.len() {
        // Cofactor the rest of the cover (plus don't-cares) against cube i
        // into a reused buffer, skipping the intermediate Cover build.
        cof.clear();
        cof.extend(
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c)
                .chain(dc.cubes().iter())
                .filter_map(|c| c.cofactor_cube(&cubes[i])),
        );
        // The unique part of cube i: cube_i AND NOT rest, whose smallest
        // enclosing cube is computed directly from cofactor tautology
        // checks (no full complement is ever materialized).
        if let Some(sc) = crate::urp::supercube_of_complement(nvars, &cof) {
            // Re-apply the cube's own literals.
            if let Some(reduced) = expand_back(&cubes[i], &sc) {
                cubes[i] = reduced;
            }
        }
    }
    *f = Cover::from_cubes(nvars, cubes);
}

/// Smallest single cube containing all cubes of a buffer, or `None` if
/// empty. (The production REDUCE path computes the supercube of a
/// complement directly via `urp::supercube_of_complement`; this reference
/// version remains for its tests.)
#[cfg(test)]
fn supercube(nvars: usize, cubes: &[Cube]) -> Option<Cube> {
    let mut it = cubes.iter();
    let first = *it.next()?;
    let mut value = first.value_mask();
    let mut care = first.care_mask();
    for c in it {
        // A variable stays a literal only if both agree on it.
        let common = care & c.care_mask() & !(value ^ c.value_mask());
        care = common;
        value &= common;
    }
    Some(Cube::new(nvars, value, care))
}

/// Combines a cube with the supercube of its unique part: the reduced cube
/// is `original ∩ supercube-extended-to-original-space`.
fn expand_back(original: &Cube, unique_sc: &Cube) -> Option<Cube> {
    original.intersect(unique_sc)
}

/// Verification helper: `result` must cover `on` minus `dc` exactly and be
/// disjoint from `off`.
fn verify(result: &Cover, on: &Cover, dc: &Cover, off: &Cover) -> bool {
    // result ∩ off must be empty.
    for rc in result.cubes() {
        if intersects_cover(rc, off) {
            return false;
        }
    }
    // result ∪ dc must cover on.
    let rdc = result.union(dc);
    on.cubes().iter().all(|c| rdc.covers_cube(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    fn check_equiv(on: &TruthTable, dc: Option<&TruthTable>, result: &Cover) {
        for m in 0..on.num_minterms() {
            let is_dc = dc.map(|d| d.eval(m)).unwrap_or(false);
            if is_dc {
                continue;
            }
            assert_eq!(result.eval(m as u64), on.eval(m), "mismatch at minterm {m}");
        }
    }

    #[test]
    fn minimizes_redundant_cover() {
        // !b over 2 vars given as two minterms.
        let on = Cover::from_cubes(2, [Cube::minterm(2, 0), Cube::minterm(2, 1)]);
        let min = minimize(&on, None, &EspressoOptions::default());
        assert_eq!(min.cube_count(), 1);
        assert_eq!(min.literal_count(), 1);
    }

    #[test]
    fn constant_functions() {
        let taut = Cover::from_cubes(1, [Cube::minterm(1, 0), Cube::minterm(1, 1)]);
        let min = minimize(&taut, None, &EspressoOptions::default());
        assert!(min.is_tautology());
        assert_eq!(min.cube_count(), 1);
        let empty = Cover::empty(3);
        assert!(minimize(&empty, None, &EspressoOptions::default()).is_empty());
    }

    #[test]
    fn xor_stays_two_cubes() {
        let tt = TruthTable::from_fn(2, |m| m.count_ones() % 2 == 1);
        let min = minimize_tt(&tt, None);
        assert_eq!(min.cube_count(), 2);
        check_equiv(&tt, None, &min);
    }

    #[test]
    fn majority_function() {
        let tt = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let min = minimize_tt(&tt, None);
        // Majority-of-3 needs exactly 3 cubes of 2 literals.
        assert_eq!(min.cube_count(), 3);
        assert_eq!(min.literal_count(), 6);
        check_equiv(&tt, None, &min);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // f = minterm 3 (a&b), dc = minterms {1, 2}: minimal cover is a single
        // 1-literal cube (a or b).
        let on = TruthTable::from_fn(2, |m| m == 3);
        let dc = TruthTable::from_fn(2, |m| m == 1 || m == 2);
        let min = minimize_tt(&on, Some(&dc));
        assert_eq!(min.cube_count(), 1);
        assert_eq!(min.literal_count(), 1);
        check_equiv(&on, Some(&dc), &min);
    }

    #[test]
    fn random_functions_are_covered_exactly() {
        for seed in 0..30u64 {
            let tt = TruthTable::from_fn(6, |m| {
                let h = (m as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed);
                (h >> 43) & 1 != 0
            });
            let min = minimize_tt(&tt, None);
            check_equiv(&tt, None, &min);
            // Result should never be larger than the canonical minterm cover.
            assert!(min.cube_count() <= tt.count_ones());
        }
    }

    #[test]
    fn random_functions_with_dc() {
        for seed in 0..15u64 {
            let tt =
                TruthTable::from_fn(5, |m| (m as u64).wrapping_mul(7 + seed).is_multiple_of(3));
            let dc = TruthTable::from_fn(5, |m| {
                (m as u64).wrapping_mul(11 + seed).is_multiple_of(5) && !tt.eval(m)
            });
            let min = minimize_tt(&tt, Some(&dc));
            check_equiv(&tt, Some(&dc), &min);
        }
    }

    #[test]
    fn reduce_ablation_never_better() {
        // Without REDUCE the loop must still be correct (possibly larger).
        let tt = TruthTable::from_fn(5, |m| m % 7 < 3);
        let opts_full = EspressoOptions::default();
        let opts_nored = EspressoOptions {
            reduce: false,
            ..Default::default()
        };
        let full = minimize(&Cover::from_truth_table(&tt), None, &opts_full);
        let nored = minimize(&Cover::from_truth_table(&tt), None, &opts_nored);
        check_equiv(&tt, None, &full);
        check_equiv(&tt, None, &nored);
        assert!(cost(&full) <= cost(&nored));
    }

    #[test]
    fn start_cover_affects_local_optimum_but_not_function() {
        // Same function given as minterms vs as a broad cover: both minimize
        // to equivalent covers (possibly different cubes).
        let tt = TruthTable::from_fn(4, |m| m & 3 != 3);
        let from_minterms = minimize(
            &Cover::from_truth_table(&tt),
            None,
            &EspressoOptions::default(),
        );
        let broad = Cover::from_cubes(
            4,
            [
                Cube::new(4, 0b0000, 0b0001), // !a
                Cube::new(4, 0b0000, 0b0010), // !b
            ],
        );
        let from_broad = minimize(&broad, None, &EspressoOptions::default());
        check_equiv(&tt, None, &from_minterms);
        check_equiv(&tt, None, &from_broad);
    }

    #[test]
    fn supercube_of_two_minterms() {
        let cubes = [Cube::minterm(3, 0b000), Cube::minterm(3, 0b001)];
        let sc = supercube(3, &cubes).unwrap();
        assert_eq!(sc, Cube::new(3, 0b000, 0b110));
    }

    #[test]
    fn batch_matches_serial_minimization() {
        let opts = EspressoOptions::default();
        let tts: Vec<TruthTable> = (0..8u64)
            .map(|seed| {
                TruthTable::from_fn(6, |m| {
                    (m as u64 + 3).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed) >> 61 & 1 != 0
                })
            })
            .collect();
        let batch = minimize_tt_batch(&tts, None, &opts);
        for (tt, cover) in tts.iter().zip(&batch) {
            let serial = minimize(&Cover::from_truth_table(tt), None, &opts);
            assert_eq!(cover.cubes(), serial.cubes(), "parallel must equal serial");
        }
    }
}
