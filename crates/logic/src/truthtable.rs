//! Complete single-output boolean functions.

use crate::{BitVec, LogicError, MAX_TT_INPUTS};

/// A complete truth table for a boolean function of `inputs` variables.
///
/// Minterm `m` assigns variable `i` the value of bit `i` of `m` (variable 0
/// is the least significant address bit).
///
/// # Examples
///
/// ```
/// use synthir_logic::TruthTable;
///
/// let xor = TruthTable::from_fn(2, |m| (m.count_ones() % 2) == 1);
/// assert!(xor.eval(0b01));
/// assert!(!xor.eval(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: usize,
    bits: BitVec,
}

impl TruthTable {
    /// Builds a truth table by evaluating `f` on every minterm.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > MAX_TT_INPUTS`.
    pub fn from_fn(inputs: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        assert!(
            inputs <= MAX_TT_INPUTS,
            "truth table over {inputs} inputs exceeds maximum {MAX_TT_INPUTS}"
        );
        TruthTable {
            inputs,
            bits: BitVec::from_fn(1 << inputs, &mut f),
        }
    }

    /// Fallible variant of [`TruthTable::from_fn`].
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyVariables`] if `inputs > MAX_TT_INPUTS`.
    pub fn try_from_fn(inputs: usize, f: impl FnMut(usize) -> bool) -> Result<Self, LogicError> {
        if inputs > MAX_TT_INPUTS {
            return Err(LogicError::TooManyVariables {
                requested: inputs,
                max: MAX_TT_INPUTS,
            });
        }
        Ok(TruthTable::from_fn(inputs, f))
    }

    /// The constant-false function of `inputs` variables.
    pub fn constant(inputs: usize, value: bool) -> Self {
        TruthTable::from_fn(inputs, |_| value)
    }

    /// The projection onto variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= inputs`.
    pub fn variable(inputs: usize, var: usize) -> Self {
        assert!(var < inputs, "variable {var} out of range ({inputs})");
        TruthTable::from_fn(inputs, |m| m >> var & 1 != 0)
    }

    /// Builds a truth table from an explicit output column
    /// (`bits.len() == 2^inputs`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not `2^inputs`.
    pub fn from_bits(inputs: usize, bits: BitVec) -> Self {
        assert_eq!(bits.len(), 1usize << inputs, "truth table length mismatch");
        TruthTable { inputs, bits }
    }

    /// Number of input variables.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of minterms (`2^inputs`).
    pub fn num_minterms(&self) -> usize {
        1 << self.inputs
    }

    /// Evaluates the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^inputs`.
    pub fn eval(&self, m: usize) -> bool {
        self.bits.get(m)
    }

    /// Underlying output column.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of minterms that evaluate to one.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// Whether the function is constant, and its value if so.
    pub fn as_constant(&self) -> Option<bool> {
        if self.bits.all_zeros() {
            Some(false)
        } else if self.bits.all_ones() {
            Some(true)
        } else {
            None
        }
    }

    /// The positive/negative cofactor with respect to variable `var`.
    ///
    /// The returned table still ranges over the same variable numbering, but
    /// no longer depends on `var`.
    pub fn cofactor(&self, var: usize, value: bool) -> TruthTable {
        assert!(var < self.inputs, "variable out of range");
        TruthTable::from_fn(self.inputs, |m| {
            let m = if value {
                m | (1 << var)
            } else {
                m & !(1 << var)
            };
            self.eval(m)
        })
    }

    /// Whether the function depends on variable `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.inputs).filter(|&v| self.depends_on(v)).collect()
    }

    /// Pointwise AND of two functions over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn and(&self, other: &TruthTable) -> TruthTable {
        assert_eq!(self.inputs, other.inputs);
        let mut bits = self.bits.clone();
        bits.and_assign(&other.bits);
        TruthTable::from_bits(self.inputs, bits)
    }

    /// Pointwise OR of two functions over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn or(&self, other: &TruthTable) -> TruthTable {
        assert_eq!(self.inputs, other.inputs);
        let mut bits = self.bits.clone();
        bits.or_assign(&other.bits);
        TruthTable::from_bits(self.inputs, bits)
    }

    /// Pointwise XOR of two functions over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn xor(&self, other: &TruthTable) -> TruthTable {
        assert_eq!(self.inputs, other.inputs);
        let mut bits = self.bits.clone();
        bits.xor_assign(&other.bits);
        TruthTable::from_bits(self.inputs, bits)
    }

    /// The complement of the function.
    pub fn not(&self) -> TruthTable {
        TruthTable::from_bits(self.inputs, self.bits.to_not())
    }

    /// Iterator over the minterms where the function is one.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_ones()
    }
}

impl std::fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TruthTable({} vars, {:?})", self.inputs, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_variables() {
        let t = TruthTable::constant(3, true);
        assert_eq!(t.as_constant(), Some(true));
        let f = TruthTable::constant(3, false);
        assert_eq!(f.as_constant(), Some(false));
        let v1 = TruthTable::variable(3, 1);
        assert_eq!(v1.as_constant(), None);
        assert!(v1.eval(0b010));
        assert!(!v1.eval(0b101));
        assert_eq!(v1.support(), vec![1]);
    }

    #[test]
    fn cofactor_removes_dependence() {
        let f = TruthTable::from_fn(3, |m| (m & 1 != 0) && (m & 4 != 0));
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
        assert!(f.depends_on(2));
        let c = f.cofactor(0, true);
        assert!(!c.depends_on(0));
        // f with a=1 is just c (var 2).
        assert_eq!(c, TruthTable::variable(3, 2));
        let c0 = f.cofactor(0, false);
        assert_eq!(c0.as_constant(), Some(false));
    }

    #[test]
    fn boolean_algebra() {
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(2, 1);
        let and = a.and(&b);
        assert_eq!(and.count_ones(), 1);
        assert!(and.eval(0b11));
        let or = a.or(&b);
        assert_eq!(or.count_ones(), 3);
        let xor = a.xor(&b);
        assert_eq!(xor.count_ones(), 2);
        // De Morgan.
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
    }

    #[test]
    fn try_from_fn_rejects_large() {
        let r = TruthTable::try_from_fn(MAX_TT_INPUTS + 1, |_| false);
        assert!(matches!(r, Err(LogicError::TooManyVariables { .. })));
    }

    #[test]
    fn iter_ones_is_sound() {
        let f = TruthTable::from_fn(4, |m| m % 5 == 0);
        let ones: Vec<usize> = f.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 10, 15]);
    }

    #[test]
    fn support_of_parity_is_all_vars() {
        let f = TruthTable::from_fn(5, |m| m.count_ones() % 2 == 1);
        assert_eq!(f.support().len(), 5);
    }
}
