//! Berkeley PLA format import/export.
//!
//! The lingua franca of two-level minimizers (and of the espresso tool this
//! crate's minimizer reimplements): `.i`/`.o` headers and one
//! `<input-cube> <output-pattern>` line per product term. Only the
//! single-output subset plus multi-output ON-set semantics (`1` = in ON-set,
//! `~`/`0` = not covered) are supported.

use crate::{Cover, Cube, LogicError};

/// Serializes multi-output covers (all over the same inputs) to PLA text.
///
/// # Panics
///
/// Panics if the covers range over different variable counts.
pub fn to_pla(covers: &[Cover]) -> String {
    assert!(!covers.is_empty(), "at least one output");
    let nvars = covers[0].nvars();
    for c in covers {
        assert_eq!(c.nvars(), nvars, "cover arity mismatch");
    }
    let mut s = format!(".i {nvars}\n.o {}\n", covers.len());
    let mut terms: Vec<(Cube, Vec<bool>)> = Vec::new();
    for (oi, c) in covers.iter().enumerate() {
        for &cube in c.cubes() {
            match terms.iter_mut().find(|(k, _)| *k == cube) {
                Some((_, outs)) => outs[oi] = true,
                None => {
                    let mut outs = vec![false; covers.len()];
                    outs[oi] = true;
                    terms.push((cube, outs));
                }
            }
        }
    }
    s.push_str(&format!(".p {}\n", terms.len()));
    for (cube, outs) in terms {
        let outstr: String = outs.iter().map(|&b| if b { '1' } else { '~' }).collect();
        s.push_str(&format!("{cube} {outstr}\n"));
    }
    s.push_str(".e\n");
    s
}

/// Parses PLA text into per-output covers.
///
/// # Errors
///
/// Returns [`LogicError::IndexOutOfRange`] for malformed lines (the index
/// reported is the 1-based line number).
pub fn from_pla(text: &str) -> Result<Vec<Cover>, LogicError> {
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut covers: Vec<Cover> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = || LogicError::IndexOutOfRange {
            index: lineno + 1,
            bound: usize::MAX,
        };
        if let Some(rest) = line.strip_prefix(".i ") {
            ni = Some(rest.trim().parse().map_err(|_| bad())?);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".o ") {
            let n: usize = rest.trim().parse().map_err(|_| bad())?;
            no = Some(n);
            continue;
        }
        if line.starts_with(".p")
            || line.starts_with(".e")
            || line.starts_with(".ilb")
            || line.starts_with(".ob")
        {
            continue;
        }
        let (ni, no) = (ni.ok_or_else(bad)?, no.ok_or_else(bad)?);
        if covers.is_empty() {
            covers = vec![Cover::empty(ni); no];
        }
        let mut parts = line.split_whitespace();
        let inp = parts.next().ok_or_else(bad)?;
        let out = parts.next().ok_or_else(bad)?;
        if inp.len() != ni || out.len() != no {
            return Err(bad());
        }
        let mut value = 0u64;
        let mut care = 0u64;
        // PLA prints MSB first; our bit 0 is the least significant.
        for (pos, ch) in inp.chars().enumerate() {
            let bit = ni - 1 - pos;
            match ch {
                '1' => {
                    value |= 1 << bit;
                    care |= 1 << bit;
                }
                '0' => care |= 1 << bit,
                '-' | '~' => {}
                _ => return Err(bad()),
            }
        }
        let cube = Cube::new(ni, value, care);
        for (oi, ch) in out.chars().enumerate() {
            match ch {
                '1' | '4' => covers[oi].push(cube),
                '0' | '~' | '-' | '2' => {}
                _ => return Err(bad()),
            }
        }
    }
    if covers.is_empty() {
        if let (Some(ni), Some(no)) = (ni, no) {
            covers = vec![Cover::empty(ni); no];
        }
    }
    Ok(covers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn round_trip() {
        let tts: Vec<TruthTable> = (0..3)
            .map(|i| TruthTable::from_fn(4, move |m| (m * 7 + i) % 3 == 0))
            .collect();
        let covers: Vec<Cover> = tts
            .iter()
            .map(|t| crate::espresso::minimize_tt(t, None))
            .collect();
        let text = to_pla(&covers);
        assert!(text.contains(".i 4"));
        assert!(text.contains(".o 3"));
        let back = from_pla(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (c, tt) in back.iter().zip(&tts) {
            assert_eq!(&c.to_truth_table(4), tt);
        }
    }

    #[test]
    fn parses_hand_written_pla() {
        let text = "# xor\n.i 2\n.o 1\n.p 2\n01 1\n10 1\n.e\n";
        let covers = from_pla(text).unwrap();
        assert_eq!(covers.len(), 1);
        let tt = covers[0].to_truth_table(2);
        assert_eq!(tt, TruthTable::from_fn(2, |m| m == 1 || m == 2));
    }

    #[test]
    fn bit_order_is_msb_first() {
        // "10 1" means var1=1, var0=0.
        let covers = from_pla(".i 2\n.o 1\n10 1\n").unwrap();
        assert!(covers[0].eval(0b10));
        assert!(!covers[0].eval(0b01));
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let e = from_pla(".i 2\n.o 1\n1 1\n").unwrap_err();
        assert!(matches!(e, LogicError::IndexOutOfRange { index: 3, .. }));
        let e = from_pla("01 1\n").unwrap_err();
        assert!(matches!(e, LogicError::IndexOutOfRange { index: 1, .. }));
    }

    #[test]
    fn shared_terms_merge() {
        let a = Cover::from_cubes(2, [Cube::new(2, 0b11, 0b11)]);
        let b = Cover::from_cubes(2, [Cube::new(2, 0b11, 0b11)]);
        let text = to_pla(&[a, b]);
        assert!(text.contains(".p 1"), "{text}");
        assert!(text.contains("11 11"));
    }
}
