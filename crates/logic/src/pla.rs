//! Berkeley/espresso PLA format import/export.
//!
//! The lingua franca of two-level minimizers (and of the espresso tool this
//! crate's minimizer reimplements): `.i`/`.o` headers, optional `.ilb`/`.ob`
//! signal labels, a `.type` declaration selecting the output-plane
//! semantics, and one `<input-cube> <output-pattern>` line per product term.
//!
//! [`Pla`] is the full document model — it round-trips every supported
//! directive and can hand its ON/DC planes straight to
//! [`crate::espresso::minimize_batch`] via [`Pla::minimized`]. The
//! free-standing [`to_pla`]/[`from_pla`] functions remain as the quick
//! cover-level interface (ON-set only, `f`-type semantics).

use crate::espresso::{minimize_batch, EspressoOptions};
use crate::{Cover, Cube, LogicError};

/// Output-plane semantics, as declared by the `.type` directive.
///
/// The letters follow espresso's manual: `f` = ON-set given, `d` = DC-set
/// given, `r` = OFF-set given. Anything not covered by a given plane is
/// implicitly in the remaining one(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlaType {
    /// `1` = ON; `0`/`~` = unspecified (OFF by default). The espresso
    /// default when no `.type` line is present.
    #[default]
    F,
    /// `1` = ON, `-` = DC, `0`/`~` = unspecified.
    Fd,
    /// `1` = ON, `0` = OFF, `~`/`-` = unspecified; the DC-set is everything
    /// in neither plane.
    Fr,
    /// `1` = ON, `0` = OFF, `-` = DC, `~` = unspecified.
    Fdr,
}

impl PlaType {
    /// The directive spelling (`f`, `fd`, `fr`, `fdr`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlaType::F => "f",
            PlaType::Fd => "fd",
            PlaType::Fr => "fr",
            PlaType::Fdr => "fdr",
        }
    }

    /// Parses a `.type` argument.
    pub fn parse(s: &str) -> Option<PlaType> {
        match s {
            "f" => Some(PlaType::F),
            "fd" => Some(PlaType::Fd),
            "fr" => Some(PlaType::Fr),
            "fdr" => Some(PlaType::Fdr),
            _ => None,
        }
    }

    /// Whether the DC plane is explicit in the file (`d` in the type).
    pub fn has_dc(self) -> bool {
        matches!(self, PlaType::Fd | PlaType::Fdr)
    }

    /// Whether the OFF plane is explicit in the file (`r` in the type).
    pub fn has_off(self) -> bool {
        matches!(self, PlaType::Fr | PlaType::Fdr)
    }
}

/// A parsed PLA file: header metadata plus per-output ON/DC/OFF planes.
///
/// All covers range over the same `num_inputs` variables; bit 0 of a cube is
/// the *last* input column of the text (PLA files print MSB first).
#[derive(Clone, Debug, PartialEq)]
pub struct Pla {
    /// Number of input variables (`.i`).
    pub num_inputs: usize,
    /// Number of outputs (`.o`).
    pub num_outputs: usize,
    /// Input labels from `.ilb` (MSB-first file order), if present.
    pub input_labels: Option<Vec<String>>,
    /// Output labels from `.ob`, if present.
    pub output_labels: Option<Vec<String>>,
    /// Declared output-plane semantics (`.type`).
    pub kind: PlaType,
    /// Per-output ON-set covers.
    pub on: Vec<Cover>,
    /// Per-output DC-set covers (empty covers when the type has no `d`).
    pub dc: Vec<Cover>,
    /// Per-output OFF-set covers (empty covers when the type has no `r`).
    pub off: Vec<Cover>,
}

impl Pla {
    /// Creates an `f`-type PLA from per-output ON covers.
    ///
    /// # Panics
    ///
    /// Panics if `on` is empty or the covers range over different variable
    /// counts.
    pub fn from_covers(on: Vec<Cover>) -> Self {
        assert!(!on.is_empty(), "at least one output");
        let nvars = on[0].nvars();
        for c in &on {
            assert_eq!(c.nvars(), nvars, "cover arity mismatch");
        }
        let num_outputs = on.len();
        Pla {
            num_inputs: nvars,
            num_outputs,
            input_labels: None,
            output_labels: None,
            kind: PlaType::F,
            dc: vec![Cover::empty(nvars); num_outputs],
            off: vec![Cover::empty(nvars); num_outputs],
            on,
        }
    }

    /// Parses PLA text.
    ///
    /// Supports `.i`, `.o`, `.ilb`, `.ob`, `.p`, `.type`, `.e`/`.end`,
    /// comments (`#`), and term lines under all four [`PlaType`] output
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Parse`] with a 1-based line number for
    /// malformed directives, arity mismatches, or characters outside the
    /// cube/output alphabets.
    pub fn parse(text: &str) -> Result<Pla, LogicError> {
        let mut ni: Option<usize> = None;
        let mut no: Option<usize> = None;
        let mut ilb: Option<(usize, Vec<String>)> = None;
        let mut ob: Option<(usize, Vec<String>)> = None;
        let mut kind = PlaType::default();
        let mut declared_terms: Option<usize> = None;
        let mut on: Vec<Cover> = Vec::new();
        let mut dc: Vec<Cover> = Vec::new();
        let mut off: Vec<Cover> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| LogicError::Parse {
                line: lineno + 1,
                message: msg,
            };
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                let dir = parts.next().unwrap_or("");
                let args: Vec<&str> = parts.collect();
                match dir {
                    "i" => {
                        ni = Some(
                            args.first()
                                .and_then(|a| a.parse().ok())
                                .ok_or_else(|| err(".i needs a count".into()))?,
                        );
                    }
                    "o" => {
                        no = Some(
                            args.first()
                                .and_then(|a| a.parse().ok())
                                .ok_or_else(|| err(".o needs a count".into()))?,
                        );
                    }
                    "ilb" => ilb = Some((lineno + 1, args.iter().map(|s| s.to_string()).collect())),
                    "ob" => ob = Some((lineno + 1, args.iter().map(|s| s.to_string()).collect())),
                    "p" => {
                        declared_terms = Some(
                            args.first()
                                .and_then(|a| a.parse().ok())
                                .ok_or_else(|| err(".p needs a count".into()))?,
                        );
                    }
                    "type" => {
                        kind = args
                            .first()
                            .and_then(|a| PlaType::parse(a))
                            .ok_or_else(|| err(format!("unknown .type `{}`", args.join(" "))))?;
                    }
                    "e" | "end" => break,
                    other => return Err(err(format!("unknown directive `.{other}`"))),
                }
                continue;
            }
            // Term line.
            let ni = ni.ok_or_else(|| err("term before .i".into()))?;
            let no = no.ok_or_else(|| err("term before .o".into()))?;
            if ni > 64 {
                return Err(err(format!(
                    "{ni} inputs exceed the 64-variable cube limit"
                )));
            }
            if on.is_empty() {
                on = vec![Cover::empty(ni); no];
                dc = vec![Cover::empty(ni); no];
                off = vec![Cover::empty(ni); no];
            }
            let mut parts = line.split_whitespace();
            let inp = parts
                .next()
                .ok_or_else(|| err("missing input cube".into()))?;
            let out = parts
                .next()
                .ok_or_else(|| err("missing output pattern".into()))?;
            if inp.chars().count() != ni {
                return Err(err(format!(
                    "input cube `{inp}` has {} columns, expected {ni}",
                    inp.chars().count()
                )));
            }
            if out.chars().count() != no {
                return Err(err(format!(
                    "output pattern `{out}` has {} columns, expected {no}",
                    out.chars().count()
                )));
            }
            let cube = parse_input_cube(inp, ni).map_err(&err)?;
            for (oi, ch) in out.chars().enumerate() {
                // espresso output-plane alphabet: 1/4 = ON, 0 = OFF (under
                // r-types), -/2 = DC (under d-types), ~ = no membership.
                match (ch, kind) {
                    ('1' | '4', _) => on[oi].push(cube),
                    ('0', PlaType::Fr | PlaType::Fdr) => off[oi].push(cube),
                    ('0', _) => {}
                    ('-' | '2', PlaType::Fd | PlaType::Fdr) => dc[oi].push(cube),
                    ('-' | '2', PlaType::Fr) => {}
                    ('-' | '2', PlaType::F) => {}
                    ('~', _) => {}
                    (other, _) => return Err(err(format!("bad output character `{other}`"))),
                }
            }
        }
        let (num_inputs, num_outputs) = match (ni, no) {
            (Some(i), Some(o)) => (i, o),
            _ => {
                return Err(LogicError::Parse {
                    line: text.lines().count().max(1),
                    message: "missing .i/.o header".into(),
                })
            }
        };
        if let Some((line, labels)) = &ilb {
            if labels.len() != num_inputs {
                return Err(LogicError::Parse {
                    line: *line,
                    message: format!(".ilb lists {} names for {num_inputs} inputs", labels.len()),
                });
            }
        }
        if let Some((line, labels)) = &ob {
            if labels.len() != num_outputs {
                return Err(LogicError::Parse {
                    line: *line,
                    message: format!(".ob lists {} names for {num_outputs} outputs", labels.len()),
                });
            }
        }
        if on.is_empty() {
            on = vec![Cover::empty(num_inputs); num_outputs];
            dc = vec![Cover::empty(num_inputs); num_outputs];
            off = vec![Cover::empty(num_inputs); num_outputs];
        }
        let _ = declared_terms; // advisory; real tools don't trust it either
        Ok(Pla {
            num_inputs,
            num_outputs,
            input_labels: ilb.map(|(_, l)| l),
            output_labels: ob.map(|(_, l)| l),
            kind,
            on,
            dc,
            off,
        })
    }

    /// Renders the PLA back to text, emitting `.ilb`/`.ob` when labels are
    /// present and `.type` when the semantics are not plain `f`.
    ///
    /// Product terms shared between outputs (same input cube, same plane)
    /// are merged into a single line, as espresso's writer does.
    pub fn render(&self) -> String {
        let mut s = format!(".i {}\n.o {}\n", self.num_inputs, self.num_outputs);
        if let Some(labels) = &self.input_labels {
            s.push_str(&format!(".ilb {}\n", labels.join(" ")));
        }
        if let Some(labels) = &self.output_labels {
            s.push_str(&format!(".ob {}\n", labels.join(" ")));
        }
        if self.kind != PlaType::F {
            s.push_str(&format!(".type {}\n", self.kind.as_str()));
        }
        let terms = self.merged_terms();
        s.push_str(&format!(".p {}\n", terms.len()));
        for (cube, outs) in terms {
            let outstr: String = outs.into_iter().collect();
            s.push_str(&format!("{} {outstr}\n", render_input_cube(&cube)));
        }
        s.push_str(".e\n");
        s
    }

    /// The effective DC cover for one output under this PLA's type.
    ///
    /// For `d`-types it is the explicit plane; for `fr` it is the complement
    /// of `ON ∪ OFF`; for plain `f` (and the unspecified remainder of `fdr`)
    /// it is empty.
    pub fn effective_dc(&self, output: usize) -> Cover {
        match self.kind {
            PlaType::F => Cover::empty(self.num_inputs),
            PlaType::Fd | PlaType::Fdr => self.dc[output].clone(),
            PlaType::Fr => self.on[output].union(&self.off[output]).complement(),
        }
    }

    /// Minimizes every output with the URP espresso kernel (honouring the
    /// type's DC semantics) and returns the result as an `f`-type PLA with
    /// the same labels.
    pub fn minimized(&self, opts: &EspressoOptions) -> Pla {
        // Per-output DC sets differ, so run the batch driver on
        // (ON, DC-adjusted) pairs by folding the DC into each job: the
        // batch API takes one shared DC, so dispatch per-output batches
        // when DCs are non-uniform.
        let dcs: Vec<Cover> = (0..self.num_outputs)
            .map(|oi| self.effective_dc(oi))
            .collect();
        let uniform_dc = dcs.windows(2).all(|w| w[0] == w[1]);
        let minimized: Vec<Cover> = if uniform_dc {
            minimize_batch(&self.on, dcs.first().filter(|d| !d.is_empty()), opts)
        } else {
            crate::par::par_map(&(0..self.num_outputs).collect::<Vec<_>>(), |&oi| {
                crate::espresso::minimize(
                    &self.on[oi],
                    Some(&dcs[oi]).filter(|d| !d.is_empty()),
                    opts,
                )
            })
        };
        Pla {
            num_inputs: self.num_inputs,
            num_outputs: self.num_outputs,
            input_labels: self.input_labels.clone(),
            output_labels: self.output_labels.clone(),
            kind: PlaType::F,
            dc: vec![Cover::empty(self.num_inputs); self.num_outputs],
            off: vec![Cover::empty(self.num_inputs); self.num_outputs],
            on: minimized,
        }
    }

    /// Total product-term count after plane merging — exactly the `.p`
    /// value [`Pla::render`] emits.
    pub fn term_count(&self) -> usize {
        self.merged_terms().len()
    }

    /// The merged term lines a rendering would produce: for each input
    /// cube, one output pattern per *compatible* membership combination.
    /// '~' is "unspecified" under every type, so it is the safe filler
    /// (f/fd treat it as OFF-by-default, fr/fdr as DC-by-default, which is
    /// exactly what "not in any listed plane" means). A cube sitting in two
    /// planes of the same output (e.g. both ON and DC) keeps two lines.
    fn merged_terms(&self) -> Vec<(Cube, Vec<char>)> {
        let mut terms: Vec<(Cube, Vec<char>)> = Vec::new();
        let set = |cube: Cube, oi: usize, ch: char, terms: &mut Vec<(Cube, Vec<char>)>| {
            let slot = match terms
                .iter_mut()
                .find(|(k, outs)| *k == cube && (outs[oi] == '~' || outs[oi] == ch))
            {
                Some((_, outs)) => outs,
                None => {
                    terms.push((cube, vec!['~'; self.num_outputs]));
                    &mut terms.last_mut().expect("just pushed").1
                }
            };
            slot[oi] = ch;
        };
        for oi in 0..self.num_outputs {
            for &cube in self.on[oi].cubes() {
                set(cube, oi, '1', &mut terms);
            }
            if self.kind.has_dc() {
                for &cube in self.dc[oi].cubes() {
                    set(cube, oi, '-', &mut terms);
                }
            }
            if self.kind.has_off() {
                for &cube in self.off[oi].cubes() {
                    set(cube, oi, '0', &mut terms);
                }
            }
        }
        terms
    }
}

/// Parses an MSB-first input-cube column string into a [`Cube`].
fn parse_input_cube(inp: &str, ni: usize) -> Result<Cube, String> {
    let mut value = 0u64;
    let mut care = 0u64;
    for (pos, ch) in inp.chars().enumerate() {
        let bit = ni - 1 - pos;
        match ch {
            '1' => {
                value |= 1 << bit;
                care |= 1 << bit;
            }
            '0' => care |= 1 << bit,
            '-' | '~' | '2' => {}
            other => return Err(format!("bad input character `{other}`")),
        }
    }
    Ok(Cube::new(ni, value, care))
}

/// Renders a [`Cube`] as an MSB-first column string.
fn render_input_cube(cube: &Cube) -> String {
    use crate::cube::Literal;
    (0..cube.nvars())
        .rev()
        .map(|v| match cube.literal(v) {
            Literal::Positive => '1',
            Literal::Negative => '0',
            Literal::DontCare => '-',
        })
        .collect()
}

/// Serializes multi-output ON-set covers (all over the same inputs) to
/// `f`-type PLA text.
///
/// # Panics
///
/// Panics if `covers` is empty or the covers range over different variable
/// counts.
pub fn to_pla(covers: &[Cover]) -> String {
    Pla::from_covers(covers.to_vec()).render()
}

/// Parses PLA text into per-output ON-set covers (DC/OFF planes of typed
/// files are dropped; use [`Pla::parse`] to keep them).
///
/// # Errors
///
/// Returns [`LogicError::Parse`] with the offending 1-based line number.
pub fn from_pla(text: &str) -> Result<Vec<Cover>, LogicError> {
    Ok(Pla::parse(text)?.on)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn round_trip() {
        let tts: Vec<TruthTable> = (0..3)
            .map(|i| TruthTable::from_fn(4, move |m| (m * 7 + i) % 3 == 0))
            .collect();
        let covers: Vec<Cover> = tts
            .iter()
            .map(|t| crate::espresso::minimize_tt(t, None))
            .collect();
        let text = to_pla(&covers);
        assert!(text.contains(".i 4"));
        assert!(text.contains(".o 3"));
        let back = from_pla(&text).unwrap();
        assert_eq!(back.len(), 3);
        for (c, tt) in back.iter().zip(&tts) {
            assert_eq!(&c.to_truth_table(4), tt);
        }
    }

    #[test]
    fn parses_hand_written_pla() {
        let text = "# xor\n.i 2\n.o 1\n.p 2\n01 1\n10 1\n.e\n";
        let covers = from_pla(text).unwrap();
        assert_eq!(covers.len(), 1);
        let tt = covers[0].to_truth_table(2);
        assert_eq!(tt, TruthTable::from_fn(2, |m| m == 1 || m == 2));
    }

    #[test]
    fn bit_order_is_msb_first() {
        // "10 1" means var1=1, var0=0.
        let covers = from_pla(".i 2\n.o 1\n10 1\n").unwrap();
        assert!(covers[0].eval(0b10));
        assert!(!covers[0].eval(0b01));
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let e = from_pla(".i 2\n.o 1\n1 1\n").unwrap_err();
        assert!(matches!(e, LogicError::Parse { line: 3, .. }), "{e:?}");
        let e = from_pla("01 1\n").unwrap_err();
        assert!(matches!(e, LogicError::Parse { line: 1, .. }), "{e:?}");
        let e = from_pla(".i 2\n.o 1\n.type zz\n").unwrap_err();
        assert!(e.to_string().contains("zz"), "{e}");
        let e = from_pla(".i 2\n.o 1\n.q 4\n").unwrap_err();
        assert!(e.to_string().contains(".q"), "{e}");
    }

    #[test]
    fn shared_terms_merge() {
        let a = Cover::from_cubes(2, [Cube::new(2, 0b11, 0b11)]);
        let b = Cover::from_cubes(2, [Cube::new(2, 0b11, 0b11)]);
        let text = to_pla(&[a, b]);
        assert!(text.contains(".p 1"), "{text}");
        assert!(text.contains("11 11"));
    }

    #[test]
    fn labels_round_trip() {
        let text = ".i 2\n.o 2\n.ilb req grant\n.ob busy done\n.p 1\n11 1~\n.e\n";
        let pla = Pla::parse(text).unwrap();
        assert_eq!(
            pla.input_labels.as_deref(),
            Some(&["req".to_string(), "grant".to_string()][..])
        );
        assert_eq!(
            pla.output_labels.as_deref(),
            Some(&["busy".to_string(), "done".to_string()][..])
        );
        let again = Pla::parse(&pla.render()).unwrap();
        assert_eq!(again, pla);
    }

    #[test]
    fn label_arity_checked() {
        let e = Pla::parse(".i 2\n.o 1\n.ilb a\n.e\n").unwrap_err();
        assert!(e.to_string().contains(".ilb"), "{e}");
        assert!(
            matches!(e, LogicError::Parse { line: 3, .. }),
            "error should name the directive's line: {e:?}"
        );
        let e = Pla::parse(".i 1\n.o 2\n# pad\n\n.ob x\n.e\n").unwrap_err();
        assert!(e.to_string().contains(".ob"), "{e}");
        assert!(matches!(e, LogicError::Parse { line: 5, .. }), "{e:?}");
    }

    #[test]
    fn term_count_with_cube_in_two_planes_matches_render() {
        // Cube 11 is both ON and DC of the same output: the renderer must
        // keep two lines (no output char can mean both), and term_count
        // must agree with the emitted `.p`.
        let pla = Pla::parse(".i 2\n.o 1\n.type fd\n11 1\n11 -\n.e\n").unwrap();
        assert_eq!(pla.term_count(), 2);
        let rendered = pla.render();
        assert!(rendered.contains(".p 2"), "{rendered}");
        assert_eq!(Pla::parse(&rendered).unwrap(), pla);
    }

    #[test]
    fn fd_type_populates_dc_plane() {
        let text = ".i 2\n.o 1\n.type fd\n11 1\n10 -\n00 0\n.e\n";
        let pla = Pla::parse(text).unwrap();
        assert_eq!(pla.kind, PlaType::Fd);
        assert!(pla.on[0].eval(0b11));
        assert!(pla.dc[0].eval(0b10));
        assert!(!pla.dc[0].eval(0b11));
        assert_eq!(pla.effective_dc(0), pla.dc[0]);
    }

    #[test]
    fn fr_type_derives_dc_from_missing_minterms() {
        // ON = {11}, OFF = {00}; 01 and 10 are unspecified → DC.
        let text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n";
        let pla = Pla::parse(text).unwrap();
        assert_eq!(pla.kind, PlaType::Fr);
        assert!(pla.off[0].eval(0b00));
        let dc = pla.effective_dc(0);
        assert!(dc.eval(0b01));
        assert!(dc.eval(0b10));
        assert!(!dc.eval(0b11));
        assert!(!dc.eval(0b00));
    }

    #[test]
    fn fr_round_trips_through_render() {
        let text = ".i 3\n.o 2\n.type fr\n1-1 10\n010 01\n000 00\n.e\n";
        let pla = Pla::parse(text).unwrap();
        let again = Pla::parse(&pla.render()).unwrap();
        assert_eq!(again, pla);
    }

    #[test]
    fn minimize_uses_dont_cares() {
        // f(a,b): ON = {11}, everything else DC → minimizes to tautology.
        let pla = Pla::parse(".i 2\n.o 1\n.type fd\n11 1\n00 -\n01 -\n10 -\n.e\n").unwrap();
        let min = pla.minimized(&EspressoOptions::default());
        assert_eq!(min.kind, PlaType::F);
        assert_eq!(min.on[0].cube_count(), 1);
        assert_eq!(min.on[0].cubes()[0].literal_count(), 0, "tautology cube");
    }

    #[test]
    fn minimize_fr_per_output_dc() {
        // Output 0: ON {111}, OFF {000} (rest DC) → collapses to one cube.
        // Output 1: fully specified parity — stays at 4 minterm cubes.
        let mut text = String::from(".i 3\n.o 2\n.type fr\n");
        for m in 0..8u64 {
            let on0 = m == 7;
            let off0 = m == 0;
            let p = (m.count_ones() & 1) == 1;
            let c0 = if on0 {
                '1'
            } else if off0 {
                '0'
            } else {
                '~'
            };
            let c1 = if p { '1' } else { '0' };
            text.push_str(&format!("{:03b} {c0}{c1}\n", m));
        }
        text.push_str(".e\n");
        let pla = Pla::parse(&text).unwrap();
        let min = pla.minimized(&EspressoOptions::default());
        assert_eq!(min.on[0].cube_count(), 1, "{:?}", min.on[0]);
        assert_eq!(min.on[1].cube_count(), 4);
        // The minimized ON-set must cover the original ON-set and avoid the
        // original OFF-set.
        for m in 0..8u64 {
            if pla.on[0].eval(m) {
                assert!(min.on[0].eval(m), "minterm {m} lost");
            }
            if pla.off[0].eval(m) {
                assert!(!min.on[0].eval(m), "minterm {m} violates OFF-set");
            }
        }
    }

    #[test]
    fn term_count_matches_render() {
        let pla = Pla::parse(".i 2\n.o 2\n.type fd\n11 1-\n00 -1\n01 11\n.e\n").unwrap();
        let rendered = pla.render();
        assert!(
            rendered.contains(&format!(".p {}", pla.term_count())),
            "{rendered}"
        );
    }

    #[test]
    fn empty_pla_is_valid() {
        let pla = Pla::parse(".i 3\n.o 2\n.e\n").unwrap();
        assert_eq!(pla.on.len(), 2);
        assert!(pla.on.iter().all(Cover::is_empty));
        let again = Pla::parse(&pla.render()).unwrap();
        assert_eq!(again, pla);
    }
}
