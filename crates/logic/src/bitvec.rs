//! A compact growable bit-vector.
//!
//! [`BitVec`] backs [`crate::TruthTable`] storage and the bit-parallel
//! simulation vectors used by the synthesis engine's state-propagation pass.

/// A fixed-length vector of bits packed into `u64` words.
///
/// # Examples
///
/// ```
/// use synthir_logic::BitVec;
///
/// let mut bv = BitVec::zeros(100);
/// bv.set(42, true);
/// assert!(bv.get(42));
/// assert_eq!(bv.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit-vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit-vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bv.mask_tail();
        bv
    }

    /// Creates a bit-vector from a boolean predicate over bit indices.
    ///
    /// ```
    /// use synthir_logic::BitVec;
    /// let bv = BitVec::from_fn(8, |i| i % 2 == 0);
    /// assert_eq!(bv.count_ones(), 4);
    /// ```
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bv = BitVec::zeros(len);
        for i in 0..len {
            if f(i) {
                bv.set(i, true);
            }
        }
        bv
    }

    /// Creates a bit-vector from an iterator of booleans.
    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Self {
        let bools: Vec<bool> = bits.into_iter().collect();
        BitVec::from_fn(bools.len(), |i| bools[i])
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range ({})", self.len);
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is one.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether every bit is zero.
    pub fn all_zeros(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over the indices of one bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// In-place bitwise AND with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place bitwise OR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place bitwise XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// In-place bitwise NOT.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Returns the complement of this vector.
    pub fn to_not(&self) -> BitVec {
        let mut r = self.clone();
        r.not_assign();
        r
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let show = self.len.min(64);
        for i in 0..show {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl std::fmt::Binary for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        BitVec::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert!(z.all_zeros());
        assert!(!z.all_ones());
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.all_ones());
    }

    #[test]
    fn tail_is_masked_after_not() {
        let mut z = BitVec::zeros(3);
        z.not_assign();
        assert_eq!(z.count_ones(), 3);
        z.not_assign();
        assert!(z.all_zeros());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bv = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            bv.set(i, true);
            assert!(bv.get(i));
        }
        assert_eq!(bv.count_ones(), 8);
        bv.set(64, false);
        assert!(!bv.get(64));
        assert_eq!(bv.count_ones(), 7);
    }

    #[test]
    fn iter_ones_matches_get() {
        let bv = BitVec::from_fn(200, |i| i % 7 == 0);
        let ones: Vec<usize> = bv.iter_ones().collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn boolean_ops() {
        let a = BitVec::from_fn(100, |i| i % 2 == 0);
        let b = BitVec::from_fn(100, |i| i % 3 == 0);
        let mut and = a.clone();
        and.and_assign(&b);
        let mut or = a.clone();
        or.or_assign(&b);
        let mut xor = a.clone();
        xor.xor_assign(&b);
        for i in 0..100 {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
            assert_eq!(xor.get(i), a.get(i) ^ b.get(i));
        }
        assert_eq!(a.to_not().count_ones(), 50);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn from_bools_and_collect() {
        let bv: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(bv.len(), 3);
        assert!(bv.get(0) && !bv.get(1) && bv.get(2));
        assert_eq!(format!("{bv:b}"), "101");
    }

    #[test]
    fn debug_truncates() {
        let bv = BitVec::zeros(100);
        let dbg = format!("{bv:?}");
        assert!(dbg.contains('…'));
    }
}
