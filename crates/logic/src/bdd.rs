//! A small reduced-ordered binary decision diagram (ROBDD) manager.
//!
//! Used by the equivalence checker in `synthir-sim` and by reachability
//! analysis in the synthesis engine. Variable order is the natural index
//! order; no dynamic reordering is performed (our cones are small).

use std::collections::HashMap;

/// A reference to a BDD node inside a [`Bdd`] manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false terminal.
    pub const ZERO: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const ONE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A hash-consing ROBDD manager.
///
/// # Examples
///
/// ```
/// use synthir_logic::Bdd;
///
/// let mut bdd = Bdd::new();
/// let a = bdd.var(0);
/// let b = bdd.var(1);
/// let ab = bdd.and(a, b);
/// let ba = bdd.and(b, a);
/// assert_eq!(ab, ba); // canonical
/// assert_eq!(bdd.sat_count(ab, 2), 1);
/// ```
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<NodeRepr>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
}

#[derive(Clone, Copy, Debug)]
struct NodeRepr {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

const TERMINAL_VAR: u32 = u32::MAX;

impl Bdd {
    /// Creates an empty manager containing only the two terminals.
    pub fn new() -> Self {
        Bdd {
            nodes: vec![
                NodeRepr {
                    var: TERMINAL_VAR,
                    lo: BddRef::ZERO,
                    hi: BddRef::ZERO,
                },
                NodeRepr {
                    var: TERMINAL_VAR,
                    lo: BddRef::ONE,
                    hi: BddRef::ONE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    /// The constant function.
    pub fn constant(&self, v: bool) -> BddRef {
        if v {
            BddRef::ONE
        } else {
            BddRef::ZERO
        }
    }

    /// The projection function of variable `var`.
    pub fn var(&mut self, var: u32) -> BddRef {
        self.mk(var, BddRef::ZERO, BddRef::ONE)
    }

    /// Number of live nodes (including terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(NodeRepr { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    fn node(&self, r: BddRef) -> Node {
        let n = self.nodes[r.0 as usize];
        Node {
            var: n.var,
            lo: n.lo,
            hi: n.hi,
        }
    }

    fn top_var(&self, f: BddRef, g: BddRef, h: BddRef) -> u32 {
        let mut v = TERMINAL_VAR;
        for r in [f, g, h] {
            if !r.is_terminal() {
                v = v.min(self.node(r).var);
            }
        }
        v
    }

    fn cofactor(&self, f: BddRef, var: u32, value: bool) -> BddRef {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.var != var {
            return f;
        }
        if value {
            n.hi
        } else {
            n.lo
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + !f·h`. The universal connective.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::ONE {
            return g;
        }
        if f == BddRef::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::ONE && h == BddRef::ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.top_var(f, g, h);
        let f0 = self.cofactor(f, v, false);
        let f1 = self.cofactor(f, v, true);
        let g0 = self.cofactor(g, v, false);
        let g1 = self.cofactor(g, v, true);
        let h0 = self.cofactor(h, v, false);
        let h1 = self.cofactor(h, v, true);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::ZERO, BddRef::ONE)
    }

    /// Evaluates the function under a variable assignment (bit `i` of
    /// `assignment` is variable `i`).
    pub fn eval(&self, f: BddRef, assignment: u64) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node(cur);
            cur = if assignment >> n.var & 1 != 0 {
                n.hi
            } else {
                n.lo
            };
        }
        cur == BddRef::ONE
    }

    /// Number of satisfying assignments over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if any node's variable index is `>= nvars`.
    pub fn sat_count(&self, f: BddRef, nvars: u32) -> u128 {
        let mut memo: HashMap<BddRef, u128> = HashMap::new();
        self.sat_count_rec(f, nvars, &mut memo)
    }

    fn sat_count_rec(&self, f: BddRef, nvars: u32, memo: &mut HashMap<BddRef, u128>) -> u128 {
        if f == BddRef::ZERO {
            return 0;
        }
        if f == BddRef::ONE {
            return 1u128 << nvars;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        assert!(n.var < nvars, "node variable out of declared range");
        // Counts are normalized to the full 2^nvars space, so a decision on
        // one variable halves each branch's contribution: the lo branch's
        // function is independent of n.var, hence exactly half its satisfying
        // assignments have n.var = 0 (and symmetrically for hi).
        let lo = self.sat_count_rec(n.lo, nvars, memo);
        let hi = self.sat_count_rec(n.hi, nvars, memo);
        let c = (lo + hi) / 2;
        memo.insert(f, c);
        c
    }

    /// Whether two functions are identical (constant-time: canonicity).
    pub fn equivalent(&self, f: BddRef, g: BddRef) -> bool {
        f == g
    }

    /// One satisfying assignment, if any (variables not on the path are 0).
    pub fn any_sat(&self, f: BddRef) -> Option<u64> {
        if f == BddRef::ZERO {
            return None;
        }
        let mut m = 0u64;
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node(cur);
            if n.hi != BddRef::ZERO {
                m |= 1 << n.var;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(m)
    }

    /// Builds a BDD from a truth table (variable `i` = table input `i`).
    pub fn from_truth_table(&mut self, tt: &crate::TruthTable) -> BddRef {
        self.build_tt_rec(tt, 0, 0)
    }

    fn build_tt_rec(&mut self, tt: &crate::TruthTable, var: usize, prefix: usize) -> BddRef {
        if var == tt.inputs() {
            return self.constant(tt.eval(prefix));
        }
        let lo = self.build_tt_rec(tt, var + 1, prefix);
        let hi = self.build_tt_rec(tt, var + 1, prefix | (1 << var));
        self.mk(var as u32, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    #[test]
    fn canonicity() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let ab = bdd.and(a, b);
        let ba = bdd.and(b, a);
        assert!(bdd.equivalent(ab, ba));
        let aa = bdd.and(a, a);
        assert_eq!(aa, a);
        let na = bdd.not(a);
        let nna = bdd.not(na);
        assert_eq!(nna, a);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        for m in 0..8u64 {
            let expect = (m & 1 != 0 && m & 2 != 0) || m & 4 != 0;
            assert_eq!(bdd.eval(f, m), expect, "minterm {m}");
        }
    }

    #[test]
    fn sat_count() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.xor(a, b);
        assert_eq!(bdd.sat_count(f, 2), 2);
        assert_eq!(bdd.sat_count(BddRef::ONE, 5), 32);
        assert_eq!(bdd.sat_count(BddRef::ZERO, 5), 0);
        // Single variable over 3 vars: half the space.
        assert_eq!(bdd.sat_count(a, 3), 4);
    }

    #[test]
    fn from_truth_table_round_trip() {
        let mut bdd = Bdd::new();
        let tt = TruthTable::from_fn(4, |m| m.count_ones() % 2 == 0);
        let f = bdd.from_truth_table(&tt);
        for m in 0..16u64 {
            assert_eq!(bdd.eval(f, m), tt.eval(m as usize));
        }
        assert_eq!(bdd.sat_count(f, 4), 8);
    }

    #[test]
    fn any_sat() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let na = bdd.not(a);
        let f = bdd.and(na, b);
        let m = bdd.any_sat(f).unwrap();
        assert!(bdd.eval(f, m));
        assert_eq!(bdd.any_sat(BddRef::ZERO), None);
    }

    #[test]
    fn equivalence_check_of_distinct_functions() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let g = bdd.or(a, b);
        assert!(!bdd.equivalent(f, g));
        let diff = bdd.xor(f, g);
        assert!(bdd.any_sat(diff).is_some());
    }
}
