//! Three-valued product terms (cubes).

use crate::MAX_CUBE_VARS;

/// A product term over up to [`MAX_CUBE_VARS`] boolean variables.
///
/// Each variable is either required positive, required negative, or a
/// don't-care. The representation is a `(value, care)` pair of masks:
/// variable `i` is a literal iff bit `i` of `care` is set, in which case its
/// required polarity is bit `i` of `value`.
///
/// # Examples
///
/// ```
/// use synthir_logic::Cube;
///
/// // a & !c over 3 variables
/// let c = Cube::new(3, 0b001, 0b101);
/// assert!(c.contains_minterm(0b011));
/// assert!(!c.contains_minterm(0b100));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    nvars: u8,
    value: u64,
    care: u64,
}

/// Polarity of one literal position of a [`Cube`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Literal {
    /// The variable does not appear in the product term.
    DontCare,
    /// The variable appears complemented.
    Negative,
    /// The variable appears uncomplemented.
    Positive,
}

impl Cube {
    /// Creates a cube over `nvars` variables with the given literal masks.
    ///
    /// Bits of `value` outside `care`, and bits of either mask at positions
    /// `>= nvars`, are ignored and normalized away.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_CUBE_VARS`.
    pub fn new(nvars: usize, value: u64, care: u64) -> Self {
        assert!(
            nvars <= MAX_CUBE_VARS,
            "cube over {nvars} variables exceeds maximum {MAX_CUBE_VARS}"
        );
        let mask = if nvars == 64 {
            u64::MAX
        } else {
            (1u64 << nvars) - 1
        };
        let care = care & mask;
        Cube {
            nvars: nvars as u8,
            value: value & care,
            care,
        }
    }

    /// The universal cube (tautology: no literals).
    pub fn universe(nvars: usize) -> Self {
        Cube::new(nvars, 0, 0)
    }

    /// The cube matching exactly one minterm.
    pub fn minterm(nvars: usize, m: u64) -> Self {
        let mask = if nvars == 64 {
            u64::MAX
        } else {
            (1u64 << nvars) - 1
        };
        Cube::new(nvars, m, mask)
    }

    /// Number of variables in the cube's space.
    pub fn nvars(&self) -> usize {
        self.nvars as usize
    }

    /// The polarity mask (valid only where [`Cube::care_mask`] is set).
    pub fn value_mask(&self) -> u64 {
        self.value
    }

    /// The literal-presence mask.
    pub fn care_mask(&self) -> u64 {
        self.care
    }

    /// Number of literals in the product term.
    pub fn literal_count(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// The literal at variable `var`.
    pub fn literal(&self, var: usize) -> Literal {
        assert!(var < self.nvars(), "variable out of range");
        if self.care >> var & 1 == 0 {
            Literal::DontCare
        } else if self.value >> var & 1 == 1 {
            Literal::Positive
        } else {
            Literal::Negative
        }
    }

    /// Returns a copy with the literal at `var` replaced.
    pub fn with_literal(&self, var: usize, lit: Literal) -> Cube {
        assert!(var < self.nvars(), "variable out of range");
        let bit = 1u64 << var;
        let (value, care) = match lit {
            Literal::DontCare => (self.value & !bit, self.care & !bit),
            Literal::Negative => (self.value & !bit, self.care | bit),
            Literal::Positive => (self.value | bit, self.care | bit),
        };
        Cube::new(self.nvars(), value, care)
    }

    /// Whether minterm `m` lies inside the cube.
    pub fn contains_minterm(&self, m: u64) -> bool {
        (m ^ self.value) & self.care == 0
    }

    /// Whether this cube contains (covers) `other` as a set of minterms.
    pub fn contains_cube(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.nvars, other.nvars);
        // Every literal of self must be a literal of other with equal polarity.
        self.care & !other.care == 0 && (self.value ^ other.value) & self.care == 0
    }

    /// The intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.nvars, other.nvars);
        let conflict = (self.value ^ other.value) & self.care & other.care;
        if conflict != 0 {
            return None;
        }
        Some(Cube::new(
            self.nvars(),
            self.value | other.value,
            self.care | other.care,
        ))
    }

    /// The number of variables in which the cubes conflict (opposite
    /// required polarity). Distance 0 means the cubes intersect; distance 1
    /// means their consensus exists.
    pub fn distance(&self, other: &Cube) -> usize {
        debug_assert_eq!(self.nvars, other.nvars);
        ((self.value ^ other.value) & self.care & other.care).count_ones() as usize
    }

    /// The consensus of two cubes at distance exactly 1, if it exists.
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        let conflict = (self.value ^ other.value) & self.care & other.care;
        if conflict.count_ones() != 1 {
            return None;
        }
        let care = (self.care | other.care) & !conflict;
        let value = (self.value | other.value) & care;
        Some(Cube::new(self.nvars(), value, care))
    }

    /// Cofactors the cube with respect to `var = value`.
    ///
    /// Returns `None` if the cube requires the opposite polarity (empty
    /// cofactor); otherwise the cube with the `var` literal dropped.
    pub fn cofactor(&self, var: usize, value: bool) -> Option<Cube> {
        let bit = 1u64 << var;
        if self.care & bit != 0 && (self.value & bit != 0) != value {
            return None;
        }
        Some(Cube::new(self.nvars(), self.value & !bit, self.care & !bit))
    }

    /// Cofactors this cube with respect to another cube (the generalized
    /// cofactor used by tautology checking): returns `None` if disjoint,
    /// otherwise this cube with `other`'s literals removed.
    pub fn cofactor_cube(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) != 0 {
            return None;
        }
        Some(Cube::new(
            self.nvars(),
            self.value & !other.care,
            self.care & !other.care,
        ))
    }

    /// Number of minterms covered by the cube.
    pub fn minterm_count(&self) -> u128 {
        1u128 << (self.nvars() - self.literal_count())
    }

    /// Iterator over the minterms the cube covers (use only for small cubes).
    pub fn iter_minterms(&self) -> impl Iterator<Item = u64> + '_ {
        let free: Vec<usize> = (0..self.nvars())
            .filter(|&v| self.care >> v & 1 == 0)
            .collect();
        let n = 1u64 << free.len();
        let base = self.value;
        (0..n).map(move |k| {
            let mut m = base;
            for (i, &v) in free.iter().enumerate() {
                if k >> i & 1 != 0 {
                    m |= 1 << v;
                }
            }
            m
        })
    }
}

impl std::fmt::Display for Cube {
    /// PLA-style notation, most significant variable first: `1`, `0`, `-`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for v in (0..self.nvars()).rev() {
            let c = match self.literal(v) {
                Literal::DontCare => '-',
                Literal::Negative => '0',
                Literal::Positive => '1',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Cube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cube({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_and_minterm() {
        let u = Cube::universe(4);
        assert_eq!(u.literal_count(), 0);
        assert_eq!(u.minterm_count(), 16);
        for m in 0..16 {
            assert!(u.contains_minterm(m));
        }
        let m = Cube::minterm(4, 0b1010);
        assert_eq!(m.minterm_count(), 1);
        assert!(m.contains_minterm(0b1010));
        assert!(!m.contains_minterm(0b1011));
    }

    #[test]
    fn containment() {
        let big = Cube::new(3, 0b001, 0b001); // a
        let small = Cube::new(3, 0b011, 0b011); // a & b
        assert!(big.contains_cube(&small));
        assert!(!small.contains_cube(&big));
        assert!(big.contains_cube(&big));
    }

    #[test]
    fn intersection_and_distance() {
        let a = Cube::new(3, 0b001, 0b001); // a
        let nb = Cube::new(3, 0b000, 0b010); // !b
        let i = a.intersect(&nb).unwrap();
        assert_eq!(i, Cube::new(3, 0b001, 0b011)); // a & !b
        let na = Cube::new(3, 0b000, 0b001); // !a
        assert_eq!(a.distance(&na), 1);
        assert!(a.intersect(&na).is_none());
    }

    #[test]
    fn consensus_exists_only_at_distance_one() {
        let ab = Cube::new(3, 0b011, 0b011); // a & b
        let nac = Cube::new(3, 0b100, 0b101); // !a & c
        let cons = ab.consensus(&nac).unwrap();
        assert_eq!(cons, Cube::new(3, 0b110, 0b110)); // b & c
        let same = ab.consensus(&ab);
        assert!(same.is_none());
    }

    #[test]
    fn cofactor() {
        let c = Cube::new(3, 0b001, 0b011); // a & !b
        assert_eq!(c.cofactor(0, true).unwrap(), Cube::new(3, 0b000, 0b010));
        assert!(c.cofactor(0, false).is_none());
        // Cofactor on absent variable keeps the cube.
        assert_eq!(c.cofactor(2, true).unwrap(), c);
    }

    #[test]
    fn iter_minterms_enumerates_cube() {
        let c = Cube::new(3, 0b001, 0b001); // a
        let ms: Vec<u64> = c.iter_minterms().collect();
        assert_eq!(ms.len(), 4);
        for m in ms {
            assert!(c.contains_minterm(m));
        }
    }

    #[test]
    fn display_uses_pla_notation() {
        let c = Cube::new(3, 0b001, 0b101); // a & !c
        assert_eq!(format!("{c}"), "0-1");
    }

    #[test]
    fn with_literal_round_trips() {
        let c = Cube::universe(4)
            .with_literal(2, Literal::Positive)
            .with_literal(0, Literal::Negative);
        assert_eq!(c.literal(2), Literal::Positive);
        assert_eq!(c.literal(0), Literal::Negative);
        assert_eq!(c.literal(1), Literal::DontCare);
        let c2 = c.with_literal(2, Literal::DontCare);
        assert_eq!(c2.literal_count(), 1);
    }
}
