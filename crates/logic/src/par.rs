//! Deterministic data parallelism for independent kernel jobs.
//!
//! The two-level minimizer is embarrassingly parallel across PLA outputs and
//! resynthesis cones: each job reads shared inputs and produces one
//! independent result. [`par_map`] runs such jobs on scoped OS threads
//! (`std::thread::scope` — no external dependency, keeping the offline
//! build self-contained) and returns results **in input order**, so the
//! parallel path is bit-identical to the serial one.
//!
//! The whole module is gated on the `parallel` cargo feature (enabled by
//! default); without it, [`par_map`] degrades to a plain serial map with
//! zero overhead.

/// The number of worker threads [`par_map`] will use at most: the
/// `SYNTHIR_THREADS` environment variable when set (clamped to ≥ 1),
/// otherwise the machine's available parallelism. Without the `parallel`
/// feature this is always 1.
pub fn max_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        if let Some(n) = std::env::var("SYNTHIR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Maps `f` over `items`, in parallel when the `parallel` feature is
/// enabled and the job count warrants it. The output vector is always in
/// input order, making the parallel result identical to the serial one.
///
/// # Examples
///
/// ```
/// let squares = synthir_logic::par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let workers = max_threads().min(items.len());
        if workers > 1 && !IN_PARALLEL.get() {
            return par_map_scoped(items, &f, workers);
        }
    }
    items.iter().map(f).collect()
}

#[cfg(feature = "parallel")]
std::thread_local! {
    /// Whether this thread is already a [`par_map`] worker. Nested calls
    /// (a parallel benchmark sweep whose jobs themselves batch-minimize)
    /// run serially instead of oversubscribing the machine with
    /// worker-per-worker thread fan-out.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[cfg(feature = "parallel")]
fn par_map_scoped<T, U, F>(items: &[T], f: &F, workers: usize) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    // Contiguous chunks, one per worker: results concatenate back in input
    // order and each thread touches a disjoint cache-friendly slice.
    let chunk = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    IN_PARALLEL.set(true);
                    slice.iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("kernel worker thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let mapped = par_map(&items, |&x| x * 3);
        assert_eq!(mapped, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_tiny_and_empty_inputs() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_equals_serial_for_nontrivial_work() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ x).collect();
        assert_eq!(par_map(&items, |&x| x.wrapping_mul(x) ^ x), serial);
    }

    #[test]
    fn nested_par_map_is_correct() {
        // Inner calls run serially inside worker threads, but results must
        // still be correct and ordered.
        let outer: Vec<u64> = (0..16).collect();
        let got = par_map(&outer, |&o| {
            let inner: Vec<u64> = (0..8).map(|i| o * 8 + i).collect();
            par_map(&inner, |&x| x * 2)
        });
        for (o, row) in got.iter().enumerate() {
            let expect: Vec<u64> = (0..8).map(|i| (o as u64 * 8 + i) * 2).collect();
            assert_eq!(*row, expect);
        }
    }
}
