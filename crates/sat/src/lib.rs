//! # synthir-sat
//!
//! A small, dependency-free CDCL SAT solver, built for the miter-based
//! equivalence checks in `synthir-sim`.
//!
//! The BDD engine in the simulator proves combinational equivalence only up
//! to 24 shared input bits; beyond that, exact checking needs a SAT solver
//! over a Tseitin encoding of the miter. This crate provides exactly the
//! solver core that workflow needs — nothing more:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with local clause minimization,
//! * VSIDS-style variable activities with exponential decay,
//! * phase saving and Luby-sequence restarts,
//! * activity-based learned-clause database reduction,
//! * model extraction for counterexample decoding.
//!
//! ## Example
//!
//! ```
//! use synthir_sat::{Lit, SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a | b) & (!a | b) & (a | !b)  =>  a & b
//! s.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! s.add_clause(&[Lit::negative(a), Lit::positive(b)]);
//! s.add_clause(&[Lit::positive(a), Lit::negative(b)]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert!(s.model_value(Lit::positive(a)));
//! assert!(s.model_value(Lit::positive(b)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A boolean variable of a [`Solver`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable's dense index (`0..Solver::num_vars()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
///
/// Negation is `!lit`; the encoding is the usual `var << 1 | sign` so
/// literals index watch lists densely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn positive(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn negative(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// A literal of `v` with the given polarity (`true` = negated).
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is the negation of its variable.
    pub fn is_negated(self) -> bool {
        self.0 & 1 != 0
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// The verdict of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment exists (read it with
    /// [`Solver::model_value`]).
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

const NO_REASON: u32 = u32::MAX;
const LEVEL_NONE: u32 = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: u32,
    /// Any other literal of the clause; if it is already true the clause is
    /// satisfied and the watch list walk can skip the clause body entirely.
    blocker: Lit,
}

/// Assignment of a variable: `0` unassigned, `1` true, `-1` false.
type Assign = i8;

fn lit_val(assign: &[Assign], l: Lit) -> i8 {
    let a = assign[l.var().index()];
    if l.is_negated() {
        -a
    } else {
        a
    }
}

/// An indexed binary max-heap over variable activities (the VSIDS decision
/// order).
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `-1` if absent.
    pos: Vec<i32>,
}

impl VarHeap {
    fn grow_to(&mut self, n: usize) {
        self.pos.resize(n, -1);
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn bumped(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize, act);
        }
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = -1;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[largest] as usize]
            {
                largest = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[largest] as usize]
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

/// A CDCL SAT solver.
///
/// Usage: create variables with [`Solver::new_var`], add clauses with
/// [`Solver::add_clause`] (at decision level zero, i.e. before or between
/// `solve` calls), then call [`Solver::solve`]. After
/// [`SatResult::Sat`], [`Solver::model_value`] reads the satisfying
/// assignment.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<Assign>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    model: Vec<bool>,
    ok: bool,
    num_learned: usize,
    conflicts: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.level.push(LEVEL_NONE);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow_to(self.assign.len());
        self.heap.insert(v.0, &self.activity);
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of conflicts encountered across all `solve` calls.
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Must be called at decision level zero. Returns `false` if the solver
    /// state is already known unsatisfiable (including when this clause
    /// makes it so); further `add_clause`/`solve` calls then keep returning
    /// `false`/`Unsat`.
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable was not created by this solver.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(self.trail_lim.is_empty(), "add_clause above level 0");
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedup, drop top-level-false literals, detect
        // tautologies and top-level-satisfied clauses.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut prev: Option<Lit> = None;
        let mut keep: Vec<Lit> = Vec::with_capacity(ls.len());
        for &l in &ls {
            assert!(l.var().index() < self.num_vars(), "unknown variable");
            if prev == Some(!l) {
                return true; // tautology: x | !x
            }
            match lit_val(&self.assign, l) {
                1 => return true, // already satisfied at level 0
                -1 => {}          // false at level 0: drop the literal
                _ => keep.push(l),
            }
            prev = Some(l);
        }
        match keep.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(keep[0], NO_REASON);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(keep, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learned: bool) -> u32 {
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learned {
            self.num_learned += 1;
        }
        self.clauses.push(Clause {
            lits,
            learned,
            deleted: false,
            activity: 0.0,
        });
        cref
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let mut restarts = 0u32;
        let mut max_learned = (self.clauses.len() / 3).max(1000);
        loop {
            let budget = 64 * luby(restarts);
            match self.search(budget, &mut max_learned) {
                Some(res) => {
                    if res == SatResult::Unsat {
                        self.ok = false;
                    } else {
                        self.cancel_until(0);
                    }
                    return res;
                }
                None => restarts += 1,
            }
        }
    }

    /// The model value of a literal after [`SatResult::Sat`].
    ///
    /// # Panics
    ///
    /// Panics if no model is available (before the first satisfiable
    /// `solve`).
    pub fn model_value(&self, l: Lit) -> bool {
        assert!(!self.model.is_empty(), "no model available");
        self.model[l.var().index()] ^ l.is_negated()
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn search(&mut self, budget: u64, max_learned: &mut usize) -> Option<SatResult> {
        let mut local_conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                local_conflicts += 1;
                if self.decision_level() == 0 {
                    return Some(SatResult::Unsat);
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                self.learn(learnt);
                self.decay_activities();
            } else {
                if local_conflicts >= budget {
                    self.cancel_until(0);
                    return None;
                }
                if self.num_learned > *max_learned {
                    self.reduce_db();
                    *max_learned += *max_learned / 2;
                }
                match self.pick_branch() {
                    None => {
                        // Everything assigned without conflict: a model.
                        self.model = self.assign.iter().map(|&a| a == 1).collect();
                        return Some(SatResult::Sat);
                    }
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assign[v as usize] == 0 {
                let var = Var(v);
                return Some(Lit::new(var, !self.phase[v as usize]));
            }
        }
        None
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert_eq!(self.assign[v], 0);
        self.assign[v] = if l.is_negated() { -1 } else { 1 };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("nonempty trail");
            let v = l.var().index();
            self.phase[v] = self.assign[v] == 1;
            self.assign[v] = 0;
            self.level[v] = LEVEL_NONE;
            self.reason[v] = NO_REASON;
            self.heap.insert(l.var().0, &self.activity);
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if lit_val(&self.assign, w.blocker) == 1 {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let c = &mut self.clauses[w.cref as usize];
                if c.deleted {
                    continue; // drop the stale watcher
                }
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], false_lit);
                let first = c.lits[0];
                let w2 = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if first != w.blocker && lit_val(&self.assign, first) == 1 {
                    ws[j] = w2;
                    j += 1;
                    continue;
                }
                // Look for an unwatched non-false literal to take over.
                for k in 2..c.lits.len() {
                    if lit_val(&self.assign, c.lits[k]) != -1 {
                        c.lits.swap(1, k);
                        let new_watch = c.lits[1].code();
                        self.watches[new_watch].push(w2);
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[j] = w2;
                j += 1;
                if lit_val(&self.assign, first) == -1 {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    break;
                }
                self.unchecked_enqueue(first, w.cref);
            }
            ws.truncate(j);
            // Propagation may have appended watchers for this literal (a new
            // watch can be the propagated literal itself); keep them.
            let mut tail = std::mem::take(&mut self.watches[false_lit.code()]);
            ws.append(&mut tail);
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, usize) {
        let current = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0: asserting literal
        let mut to_clear: Vec<Var> = Vec::new();
        let mut path = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            let skip = usize::from(p.is_some());
            // Borrow-friendly copy: conflict clauses are short.
            let clause_lits: Vec<Lit> = self.clauses[confl as usize].lits[skip..].to_vec();
            if self.clauses[confl as usize].learned {
                self.bump_clause(confl);
            }
            for q in clause_lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on: most recent seen trail entry.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path -= 1;
            if path == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, NO_REASON);
        }
        // Local minimization: drop literals whose entire reason is already
        // in the clause (or at level 0).
        let keep = |solver: &Solver, q: Lit| -> bool {
            let r = solver.reason[q.var().index()];
            if r == NO_REASON {
                return true;
            }
            solver.clauses[r as usize].lits[1..]
                .iter()
                .any(|&x| !solver.seen[x.var().index()] && solver.level[x.var().index()] > 0)
        };
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        minimized.extend(learnt[1..].iter().copied().filter(|&q| keep(self, q)));
        let mut learnt = minimized;
        for v in to_clear {
            self.seen[v.index()] = false;
        }
        // Backtrack level: highest level among the non-asserting literals;
        // that literal becomes the second watch.
        let back_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, back_level)
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        debug_assert!(!learnt.is_empty());
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], NO_REASON);
        } else {
            let first = learnt[0];
            let cref = self.attach(learnt, true);
            self.bump_clause(cref);
            self.unchecked_enqueue(first, cref);
        }
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v.0, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learned) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Whether a clause is the reason of its first literal's assignment.
    fn is_locked(&self, cref: u32) -> bool {
        let c = &self.clauses[cref as usize];
        let v = c.lits[0].var().index();
        self.assign[v] != 0 && self.reason[v] == cref
    }

    /// Deletes the lower-activity half of the (unlocked, non-binary)
    /// learned clauses. Watchers are dropped lazily during propagation.
    fn reduce_db(&mut self) {
        let mut candidates: Vec<(u32, f64)> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learned && !c.deleted && c.lits.len() > 2 && !self.is_locked(i)
            })
            .map(|i| (i, self.clauses[i as usize].activity))
            .collect();
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
        for &(i, _) in candidates.iter().take(candidates.len() / 2) {
            self.clauses[i as usize].deleted = true;
            self.clauses[i as usize].lits = Vec::new();
            self.num_learned -= 1;
        }
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(x: u32) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    let mut x = x as u64;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(s.new_var())).collect()
    }

    #[test]
    fn literal_encoding() {
        let mut s = Solver::new();
        let v = s.new_var();
        let p = Lit::positive(v);
        assert_eq!(!p, Lit::negative(v));
        assert_eq!(!!p, p);
        assert_eq!(p.var(), v);
        assert!(!p.is_negated());
        assert!((!p).is_negated());
        assert_eq!(Lit::new(v, true), Lit::negative(v));
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let x = lits(&mut s, 3);
        s.add_clause(&[x[0], x[1]]);
        s.add_clause(&[!x[0]]);
        s.add_clause(&[!x[1], x[2]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(!s.model_value(x[0]));
        assert!(s.model_value(x[1]));
        assert!(s.model_value(x[2]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let x = lits(&mut s, 1);
        s.add_clause(&[x[0]]);
        assert!(!s.add_clause(&[!x[0]]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let mut s = Solver::new();
        let x = lits(&mut s, 2);
        assert!(s.add_clause(&[x[0], !x[0]]));
        assert!(s.add_clause(&[x[1], x[0], !x[1]]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn no_clauses_is_sat() {
        let mut s = Solver::new();
        let x = lits(&mut s, 4);
        assert_eq!(s.solve(), SatResult::Sat);
        // The model must cover every variable.
        for &l in &x {
            let _ = s.model_value(l);
        }
    }

    /// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes, UNSAT.
    /// Small but requires genuine conflict-driven search.
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &x {
            s.add_clause(row);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause(&[!x[p1][h], !x[p2][h]]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5 {
            let mut s = pigeonhole(n + 1, n);
            assert_eq!(s.solve(), SatResult::Unsat, "php({}, {n})", n + 1);
        }
    }

    #[test]
    fn pigeonhole_exact_fit_sat() {
        let mut s = pigeonhole(4, 4);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_parity() {
        // x0 ^ x1 ^ ... ^ x15 = 1, all equalities chained; flipping the
        // final unit makes it UNSAT against an even-parity constraint.
        let n = 16;
        let mut s = Solver::new();
        let x = lits(&mut s, n);
        let mut acc = x[0];
        for &xi in x.iter().take(n).skip(1) {
            // t = acc ^ xi
            let t = Lit::positive(s.new_var());
            s.add_clause(&[!t, acc, xi]);
            s.add_clause(&[!t, !acc, !xi]);
            s.add_clause(&[t, !acc, xi]);
            s.add_clause(&[t, acc, !xi]);
            acc = t;
        }
        s.add_clause(&[acc]);
        assert_eq!(s.solve(), SatResult::Sat);
        let parity = x.iter().fold(false, |a, &l| a ^ s.model_value(l));
        assert!(parity, "model must have odd parity");
    }

    #[test]
    fn solve_is_repeatable_and_incremental() {
        let mut s = Solver::new();
        let x = lits(&mut s, 3);
        s.add_clause(&[x[0], x[1], x[2]]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Clauses can be added between solves (level 0 after solve).
        s.add_clause(&[!x[0]]);
        s.add_clause(&[!x[1]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(x[2]));
        s.add_clause(&[!x[2]]);
        assert_eq!(s.solve(), SatResult::Unsat);
        // Once UNSAT, stays UNSAT.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u32).map(luby).collect();
        assert_eq!(got, want);
    }
}
