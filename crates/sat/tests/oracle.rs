//! Oracle property tests: the CDCL solver against brute-force enumeration
//! on random CNFs small enough to enumerate exhaustively.

use synthir_sat::{Lit, SatResult, Solver, Var};

/// Minimal deterministic RNG (SplitMix64), same as the sim crate's.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random CNF as `(num_vars, clauses)`, with clauses of 1–4 literals.
fn random_cnf(seed: u64) -> (usize, Vec<Vec<(usize, bool)>>) {
    let mut rng = SplitMix::new(seed);
    let nvars = 3 + rng.below(12) as usize; // 3..=14
    let nclauses = 1 + rng.below(60) as usize;
    let mut clauses = Vec::with_capacity(nclauses);
    for _ in 0..nclauses {
        let len = 1 + rng.below(4) as usize;
        let clause: Vec<(usize, bool)> = (0..len)
            .map(|_| (rng.below(nvars as u64) as usize, rng.below(2) == 1))
            .collect();
        clauses.push(clause);
    }
    (nvars, clauses)
}

/// Exhaustively checks satisfiability and returns a witness if any.
fn brute_force(nvars: usize, clauses: &[Vec<(usize, bool)>]) -> Option<u64> {
    'assignments: for m in 0u64..(1 << nvars) {
        for clause in clauses {
            let sat = clause.iter().any(|&(v, neg)| (m >> v & 1 == 1) != neg);
            if !sat {
                continue 'assignments;
            }
        }
        return Some(m);
    }
    None
}

fn solver_for(nvars: usize, clauses: &[Vec<(usize, bool)>]) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, neg)| Lit::new(vars[v], neg))
            .collect();
        s.add_clause(&lits);
    }
    (s, vars)
}

#[test]
fn verdicts_match_brute_force_on_random_cnfs() {
    let mut sat = 0;
    let mut unsat = 0;
    for seed in 0..400u64 {
        let (nvars, clauses) = random_cnf(seed);
        let expect = brute_force(nvars, &clauses);
        let (mut s, vars) = solver_for(nvars, &clauses);
        match s.solve() {
            SatResult::Sat => {
                assert!(expect.is_some(), "seed {seed}: solver SAT, oracle UNSAT");
                sat += 1;
                // The model must actually satisfy every clause.
                for clause in &clauses {
                    assert!(
                        clause
                            .iter()
                            .any(|&(v, neg)| s.model_value(Lit::new(vars[v], neg))),
                        "seed {seed}: model violates a clause"
                    );
                }
            }
            SatResult::Unsat => {
                assert!(
                    expect.is_none(),
                    "seed {seed}: solver UNSAT, oracle found {:#x}",
                    expect.unwrap()
                );
                unsat += 1;
            }
        }
    }
    // The seed mix must actually exercise both verdicts.
    assert!(sat > 50, "only {sat} satisfiable instances");
    assert!(unsat > 50, "only {unsat} unsatisfiable instances");
}

#[test]
fn incremental_clause_addition_matches_oracle() {
    // Add clauses in two batches with a solve in between; the final verdict
    // must match the oracle on the full set.
    for seed in 400..480u64 {
        let (nvars, clauses) = random_cnf(seed);
        let split = clauses.len() / 2;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
        let add = |s: &mut Solver, batch: &[Vec<(usize, bool)>]| {
            for clause in batch {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, neg)| Lit::new(vars[v], neg))
                    .collect();
                s.add_clause(&lits);
            }
        };
        add(&mut s, &clauses[..split]);
        let first = s.solve();
        if first == SatResult::Unsat {
            // A subset being UNSAT forces the full set UNSAT.
            assert!(
                brute_force(nvars, &clauses[..split]).is_none(),
                "seed {seed}"
            );
            continue;
        }
        add(&mut s, &clauses[split..]);
        let verdict = s.solve();
        let expect = brute_force(nvars, &clauses);
        assert_eq!(
            verdict == SatResult::Sat,
            expect.is_some(),
            "seed {seed}: incremental verdict diverges from oracle"
        );
    }
}
