//! Property-based tests: every synthesis pass must preserve the function
//! of randomly generated netlists.

use proptest::prelude::*;
use synthir_netlist::{GateKind, NetId, Netlist};
use synthir_sim::{check_comb_equiv, EquivOptions};

/// Builds a random combinational netlist over `n_inputs` inputs with
/// `n_gates` gates, outputs on the last few nets.
fn random_netlist(n_inputs: usize, n_gates: usize, seed: u64) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NetId> = nl.add_input("x", n_inputs);
    let kinds = [
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Inv,
        GateKind::Mux2,
        GateKind::Xnor2,
    ];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..n_gates {
        let kind = kinds[(next() % kinds.len() as u64) as usize];
        let ins: Vec<NetId> = (0..kind.arity())
            .map(|_| pool[(next() % pool.len() as u64) as usize])
            .collect();
        let out = nl.add_gate(kind, &ins);
        pool.push(out);
    }
    let n_out = 3.min(pool.len());
    let outs: Vec<NetId> = pool[pool.len() - n_out..].to_vec();
    nl.add_output("y", &outs);
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn const_fold_preserves_function(seed in any::<u64>()) {
        let golden = random_netlist(5, 24, seed);
        let mut opt = golden.clone();
        synthir_synth::constfold::const_fold(&mut opt);
        let res = check_comb_equiv(&golden, &opt, &EquivOptions::new()).unwrap();
        prop_assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn strash_preserves_function(seed in any::<u64>()) {
        let golden = random_netlist(5, 24, seed);
        let mut opt = golden.clone();
        synthir_synth::strash::strash(&mut opt);
        let res = check_comb_equiv(&golden, &opt, &EquivOptions::new()).unwrap();
        prop_assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn resynthesis_preserves_function(seed in any::<u64>()) {
        let golden = random_netlist(6, 20, seed);
        let mut opt = golden.clone();
        let opts = synthir_synth::SynthOptions::default();
        synthir_synth::resynth::resynthesize(&mut opt, &opts);
        let res = check_comb_equiv(&golden, &opt, &EquivOptions::new()).unwrap();
        prop_assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn techmap_preserves_function(seed in any::<u64>()) {
        let golden = random_netlist(5, 24, seed);
        let mut opt = golden.clone();
        synthir_synth::techmap::techmap(&mut opt);
        let res = check_comb_equiv(&golden, &opt, &EquivOptions::new()).unwrap();
        prop_assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn full_flow_preserves_function_and_never_grows_area(seed in any::<u64>()) {
        let golden = random_netlist(6, 28, seed);
        let lib = synthir_netlist::Library::vt90();
        let opts = synthir_synth::SynthOptions::default();
        let r = synthir_synth::flow::compile_netlist(
            golden.clone(), None, &[], &lib, &opts,
        ).unwrap();
        let res = check_comb_equiv(&golden, &r.netlist, &EquivOptions::new()).unwrap();
        prop_assert!(res.is_equivalent(), "{res:?}");
        let before = golden.area_report(&lib).total();
        prop_assert!(
            r.area.total() <= before * 1.01,
            "area grew: {} -> {}",
            before,
            r.area.total()
        );
    }
}
