//! Static timing analysis.
//!
//! The paper's experiments "only compare designs that synthesized to
//! identical timing targets"; this module provides the measurement. The
//! delay model is per-cell pin-to-output delay plus a crude fanout term,
//! with flop clock-to-Q as launch and setup time as capture margin.
//!
//! Every delay comes from the [`Library`]'s per-cell metadata table
//! (`Library::combinational_cells`, flop rows included) — nothing is
//! hardcoded here — so mapper choices ([`crate::techmap`] vs
//! [`crate::cutmap`]) show up honestly in the reported area/delay
//! tradeoff: a mapper that picks a bigger-but-faster cell pays for it in
//! area and is credited for it in `critical_delay`, from the same rows
//! the mappers themselves optimized against.

use synthir_netlist::{topo, Library, NetId, Netlist};

/// The result of static timing analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register / input-to-register / register-to-output
    /// path delay in ns (including clock-to-Q and setup where applicable).
    pub critical_delay: f64,
    /// The net where the critical path ends.
    pub critical_net: Option<NetId>,
    /// Per-net arrival times (ns).
    pub arrival: Vec<f64>,
}

impl TimingReport {
    /// Whether the design meets a clock period (ns).
    pub fn meets(&self, clock_ns: f64) -> bool {
        self.critical_delay <= clock_ns
    }

    /// Slack against a clock period (ns); positive means timing is met.
    pub fn slack(&self, clock_ns: f64) -> f64 {
        clock_ns - self.critical_delay
    }
}

/// Runs static timing analysis.
///
/// # Panics
///
/// Panics if the netlist has a combinational cycle (validate first).
pub fn sta(nl: &Netlist, lib: &Library) -> TimingReport {
    let order = topo::topological_order(nl).expect("acyclic netlist");
    let fanout = nl.fanout_map();
    let mut arrival = vec![0.0f64; nl.num_nets()];
    // Launch points: flop outputs start at clock-to-Q.
    for (_, g) in nl.gates() {
        if g.kind.is_sequential() {
            arrival[g.output.index()] = lib.delay(g.kind);
        }
    }
    let mut critical = 0.0f64;
    let mut critical_net = None;
    for gid in order {
        let g = nl.gate(gid);
        if g.kind.is_sequential() || g.kind.is_constant() {
            continue;
        }
        let input_arrival = g
            .inputs
            .iter()
            .map(|i| arrival[i.index()])
            .fold(0.0, f64::max);
        let fo = fanout[g.output.index()].len().saturating_sub(1) as f64;
        let t = input_arrival + lib.delay(g.kind) + fo * lib.fanout_delay;
        arrival[g.output.index()] = t;
        if t > critical {
            critical = t;
            critical_net = Some(g.output);
        }
    }
    // Capture at flop D pins requires setup margin.
    let mut critical_delay = critical;
    for (_, g) in nl.gates() {
        if g.kind.is_sequential() {
            let t = arrival[g.inputs[0].index()] + lib.setup_time;
            if t > critical_delay {
                critical_delay = t;
                critical_net = Some(g.inputs[0]);
            }
        }
    }
    // Primary outputs capture without margin.
    for net in nl.output_nets() {
        if arrival[net.index()] > critical_delay {
            critical_delay = arrival[net.index()];
            critical_net = Some(net);
        }
    }
    TimingReport {
        critical_delay,
        critical_net,
        arrival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::{GateKind, ResetKind};

    #[test]
    fn chain_delay_accumulates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let mut n = a;
        for _ in 0..5 {
            n = nl.add_gate(GateKind::Inv, &[n]);
        }
        nl.add_output("y", &[n]);
        let lib = Library::vt90();
        let rep = sta(&nl, &lib);
        let expected = 5.0 * lib.delay(GateKind::Inv);
        assert!((rep.critical_delay - expected).abs() < 1e-9);
        assert!(rep.meets(1.0));
        assert!(!rep.meets(expected / 2.0));
    }

    #[test]
    fn flop_paths_include_clk_q_and_setup() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 1)[0];
        let kind = GateKind::Dff {
            reset: ResetKind::None,
            init: false,
        };
        let q = nl.add_gate(kind, &[d]);
        let x = nl.add_gate(GateKind::Inv, &[q]);
        let _q2 = nl.add_gate(kind, &[x]);
        nl.add_output("q2", &[_q2]);
        let lib = Library::vt90();
        let rep = sta(&nl, &lib);
        let expected = lib.delay(kind) + lib.delay(GateKind::Inv) + lib.setup_time;
        assert!((rep.critical_delay - expected).abs() < 1e-9);
    }

    #[test]
    fn fanout_penalty() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let x = nl.add_gate(GateKind::Inv, &[a]);
        // Three consumers of x.
        let y1 = nl.add_gate(GateKind::Inv, &[x]);
        let y2 = nl.add_gate(GateKind::Inv, &[x]);
        let y3 = nl.add_gate(GateKind::Inv, &[x]);
        nl.add_output("y1", &[y1]);
        nl.add_output("y2", &[y2]);
        nl.add_output("y3", &[y3]);
        let lib = Library::vt90();
        let rep = sta(&nl, &lib);
        let expected = lib.delay(GateKind::Inv) + 2.0 * lib.fanout_delay + lib.delay(GateKind::Inv);
        assert!((rep.critical_delay - expected).abs() < 1e-9);
    }

    #[test]
    fn slack_sign() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let y = nl.add_gate(GateKind::Inv, &[a]);
        nl.add_output("y", &[y]);
        let rep = sta(&nl, &Library::vt90());
        assert!(rep.slack(5.0) > 0.0);
        assert!(rep.slack(0.0) < 0.0);
    }
}
