//! Algebraic factoring: building multi-level logic from a two-level cover.

use std::collections::HashMap;
use synthir_logic::{cube::Literal, Cover, Cube};
use synthir_netlist::{GateKind, NetId, Netlist};

/// Emits a multi-level And/Or/Inv network computing `cover` over the given
/// support nets (variable `i` of the cover reads `support[i]`). Returns the
/// root net.
///
/// Factoring is recursive most-common-literal division, the classic "weak
/// division" heuristic: `F = l·Q + R` where `l` is the literal occurring in
/// the most cubes.
///
/// # Panics
///
/// Panics if `cover.nvars() != support.len()`.
pub fn emit_cover(nl: &mut Netlist, cover: &Cover, support: &[NetId]) -> NetId {
    assert_eq!(cover.nvars(), support.len(), "support arity mismatch");
    if cover.is_empty() {
        return nl.const0();
    }
    if cover.cubes().iter().any(|c| c.literal_count() == 0) {
        return nl.const1();
    }
    let mut ctx = Emit {
        nl,
        support: support.to_vec(),
        inv_cache: HashMap::new(),
    };
    ctx.factor(cover.cubes().to_vec())
}

struct Emit<'a> {
    nl: &'a mut Netlist,
    support: Vec<NetId>,
    inv_cache: HashMap<NetId, NetId>,
}

impl Emit<'_> {
    fn literal_net(&mut self, var: usize, positive: bool) -> NetId {
        let base = self.support[var];
        if positive {
            base
        } else {
            if let Some(&n) = self.inv_cache.get(&base) {
                return n;
            }
            let n = self.nl.add_gate(GateKind::Inv, &[base]);
            self.inv_cache.insert(base, n);
            n
        }
    }

    fn cube_net(&mut self, cube: &Cube) -> NetId {
        let lits: Vec<NetId> = (0..cube.nvars())
            .filter_map(|v| match cube.literal(v) {
                Literal::DontCare => None,
                Literal::Positive => Some(self.literal_net(v, true)),
                Literal::Negative => Some(self.literal_net(v, false)),
            })
            .collect();
        self.tree(&lits, GateKind::And2)
    }

    fn tree(&mut self, nets: &[NetId], kind: GateKind) -> NetId {
        match nets.len() {
            0 => match kind {
                GateKind::And2 => self.nl.const1(),
                _ => self.nl.const0(),
            },
            1 => nets[0],
            _ => {
                let mid = nets.len() / 2;
                let lo = self.tree(&nets[..mid], kind);
                let hi = self.tree(&nets[mid..], kind);
                self.nl.add_gate(kind, &[lo, hi])
            }
        }
    }

    fn factor(&mut self, cubes: Vec<Cube>) -> NetId {
        debug_assert!(!cubes.is_empty());
        if cubes.len() == 1 {
            return self.cube_net(&cubes[0]);
        }
        // Count literal occurrences.
        let nvars = cubes[0].nvars();
        let mut best: Option<(usize, bool, usize)> = None; // (var, positive, count)
        for v in 0..nvars {
            let mut pos = 0;
            let mut neg = 0;
            for c in &cubes {
                match c.literal(v) {
                    Literal::Positive => pos += 1,
                    Literal::Negative => neg += 1,
                    Literal::DontCare => {}
                }
            }
            for (polarity, count) in [(true, pos), (false, neg)] {
                if count >= 2 && best.map(|(_, _, bc)| count > bc).unwrap_or(true) {
                    best = Some((v, polarity, count));
                }
            }
        }
        match best {
            None => {
                // No shared literal: flat sum of products.
                let terms: Vec<NetId> = cubes.iter().map(|c| self.cube_net(c)).collect();
                self.tree(&terms, GateKind::Or2)
            }
            Some((var, positive, _)) => {
                let want = if positive {
                    Literal::Positive
                } else {
                    Literal::Negative
                };
                let mut q = Vec::new();
                let mut r = Vec::new();
                for c in cubes {
                    if c.literal(var) == want {
                        q.push(c.with_literal(var, Literal::DontCare));
                    } else {
                        r.push(c);
                    }
                }
                let lit = self.literal_net(var, positive);
                let q_net = if q.len() == 1 && q[0].literal_count() == 0 {
                    // l·1 = l
                    lit
                } else {
                    let qn = self.factor(q);
                    self.nl.add_gate(GateKind::And2, &[lit, qn])
                };
                if r.is_empty() {
                    q_net
                } else {
                    let rn = self.factor(r);
                    self.nl.add_gate(GateKind::Or2, &[q_net, rn])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conefn::cone_function_on;
    use synthir_logic::TruthTable;

    fn check_cover(cover: &Cover, nvars: usize) {
        let mut nl = Netlist::new("t");
        let support = nl.add_input("x", nvars);
        let root = emit_cover(&mut nl, cover, &support);
        nl.add_output("y", &[root]);
        let tt = cone_function_on(&nl, root, &support);
        let expected = cover.to_truth_table(nvars);
        assert_eq!(tt, expected, "emitted logic must match cover");
    }

    #[test]
    fn emits_constants() {
        let mut nl = Netlist::new("t");
        let support = nl.add_input("x", 2);
        let zero = emit_cover(&mut nl, &Cover::empty(2), &support);
        assert_eq!(nl.as_constant(zero), Some(false));
        let one = emit_cover(&mut nl, &Cover::tautology_cover(2), &support);
        assert_eq!(nl.as_constant(one), Some(true));
    }

    #[test]
    fn emits_single_cube() {
        // a & !c
        check_cover(&Cover::from_cubes(3, [Cube::new(3, 0b001, 0b101)]), 3);
    }

    #[test]
    fn emits_majority() {
        let tt = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let cover = synthir_logic::espresso::minimize_tt(&tt, None);
        check_cover(&cover, 3);
    }

    #[test]
    fn emits_random_covers() {
        for seed in 0..10u64 {
            let tt = TruthTable::from_fn(5, |m| {
                (m as u64).wrapping_mul(0x9E37 ^ seed).wrapping_add(seed) % 7 < 3
            });
            let cover = synthir_logic::espresso::minimize_tt(&tt, None);
            check_cover(&cover, 5);
        }
    }

    #[test]
    fn factoring_shares_literals() {
        // a&b + a&c + a&d: factoring should produce a & (b+c+d):
        // 1 AND for the product, OR tree, no repeated a-literals.
        let cover = Cover::from_cubes(
            4,
            [
                Cube::new(4, 0b0011, 0b0011),
                Cube::new(4, 0b0101, 0b0101),
                Cube::new(4, 0b1001, 0b1001),
            ],
        );
        let mut nl = Netlist::new("t");
        let support = nl.add_input("x", 4);
        let root = emit_cover(&mut nl, &cover, &support);
        nl.add_output("y", &[root]);
        // Factored form: 2 OR + 1 AND = 3 gates (flat would be 3 AND + 2 OR).
        assert!(nl.num_gates() <= 4, "got {} gates", nl.num_gates());
    }
}
