//! FSM extraction, unreachable-state pruning, and re-encoding.
//!
//! The paper's Fig. 6 experiment shows that a synthesis tool cannot detect
//! the state register of a *table-based* FSM (the coding style hides it), so
//! non-power-of-two state counts synthesize poorly — until the designer adds
//! the `set_fsm_state_vector` / `set_fsm_encoding` annotations, after which
//! table-based and case-statement styles synthesize nearly identically.
//!
//! This pass is that machinery. It only runs when FSM metadata
//! ([`synthir_rtl::elaborate::FsmNets`]) is present — metadata that the
//! case-statement coding style attaches automatically (mimicking the tool's
//! idiom recognition) and that a generator can derive from its tables for
//! the table-based style (the paper's recommendation).
//!
//! Given the state register, the pass:
//! 1. extracts the state-transition graph by exhaustive cone evaluation,
//! 2. prunes states unreachable from the reset state (the "Manual"
//!    optimization of the Fig. 9 PCtrl experiment),
//! 3. re-encodes the reachable states (binary / one-hot / Gray), and
//! 4. rebuilds next-state and output logic with the unused codes as
//!    don't-cares.

use crate::factor::emit_cover;
use crate::options::{FsmEncoding, SynthOptions};
use crate::SynthError;
use std::collections::{BTreeSet, HashMap};
use synthir_logic::espresso::EspressoOptions;
use synthir_logic::{BitVec, Cover, TruthTable};
use synthir_netlist::{topo, GateId, GateKind, NetId, Netlist, ResetKind};
use synthir_rtl::elaborate::FsmNets;

/// Re-encodes the FSM. Returns `Ok(true)` when the netlist was rewritten.
///
/// # Errors
///
/// Returns [`SynthError::FsmExtraction`] when the state register is damaged
/// (a state net no longer driven by a flop) or the extraction exceeds the
/// enumeration budget; callers typically treat this as "skip the pass",
/// exactly like a synthesis tool giving up on FSM extraction.
pub fn fsm_reencode(
    nl: &mut Netlist,
    fsm: &FsmNets,
    opts: &SynthOptions,
) -> Result<bool, SynthError> {
    let state_width = fsm.state_nets.len();
    if state_width == 0 || state_width > 24 {
        return Err(SynthError::FsmExtraction(format!(
            "state register width {state_width} unsupported"
        )));
    }
    // Locate the state flops.
    let mut state_flops: Vec<GateId> = Vec::new();
    for &q in &fsm.state_nets {
        let Some(g) = nl.driver(q) else {
            return Err(SynthError::FsmExtraction(
                "state net has no driver (already folded?)".into(),
            ));
        };
        if !nl.gate(g).kind.is_sequential() {
            return Err(SynthError::FsmExtraction(
                "state net not driven by a flop".into(),
            ));
        }
        state_flops.push(g);
    }
    let (reset_kind, rst_net) = {
        let g = nl.gate(state_flops[0]);
        match g.kind {
            GateKind::Dff { reset, .. } => (reset, g.inputs.get(1).copied()),
            _ => unreachable!(),
        }
    };
    let state_d: Vec<NetId> = state_flops.iter().map(|&g| nl.gate(g).inputs[0]).collect();

    // Roots whose logic must be re-expressed over the new encoding: only
    // those that actually depend on the state register. Logic behind other
    // flop boundaries (e.g. a datapath fed from registered controller
    // outputs) is untouched — exactly the scope a tool's FSM extraction
    // has.
    let depends_on_state = |nl: &Netlist, root: NetId| {
        topo::comb_support(nl, root)
            .iter()
            .any(|s| fsm.state_nets.contains(s))
    };
    let output_roots: Vec<NetId> = nl
        .output_nets()
        .into_iter()
        .filter(|&r| depends_on_state(nl, r))
        .collect();
    let other_flops: Vec<GateId> = nl
        .gates()
        .filter(|(id, g)| {
            g.kind.is_sequential() && !state_flops.contains(id) && depends_on_state(nl, g.inputs[0])
        })
        .map(|(id, _)| id)
        .collect();
    let other_d: Vec<NetId> = other_flops.iter().map(|&g| nl.gate(g).inputs[0]).collect();

    // The free inputs: every non-state comb source feeding a rebuilt root.
    let mut others: BTreeSet<NetId> = BTreeSet::new();
    for &root in output_roots.iter().chain(&other_d).chain(&state_d) {
        for s in topo::comb_support(nl, root) {
            if !fsm.state_nets.contains(&s) {
                others.insert(s);
            }
        }
    }
    let others: Vec<NetId> = others.into_iter().collect();
    let f = others.len();
    let max_codes = 1usize << state_width.min(20);
    if f > 20 || max_codes.saturating_mul(1 << f) > opts.fsm_enum_limit {
        return Err(SynthError::FsmExtraction(format!(
            "enumeration budget exceeded ({} inputs, {} possible codes)",
            f, max_codes
        )));
    }

    // --- 1. Extract behaviour by exhaustive bit-parallel evaluation. ---
    let order =
        topo::topological_order(nl).map_err(|e| SynthError::InvalidNetlist(e.to_string()))?;
    let combos = 1usize << f;
    // Evaluate one state code at a time, all input combos bit-parallel.
    let eval_code = |nl: &Netlist, code: u128| -> HashMap<NetId, BitVec> {
        let mut vals = vec![0u64; nl.num_nets()];
        let words = combos.div_ceil(64);
        let mut out: HashMap<NetId, BitVec> = HashMap::new();
        let mut track: Vec<NetId> = Vec::new();
        track.extend(output_roots.iter().copied());
        track.extend(other_d.iter().copied());
        track.extend(state_d.iter().copied());
        track.sort();
        track.dedup();
        for &t in &track {
            out.insert(t, BitVec::zeros(combos));
        }
        for w in 0..words {
            for (i, &s) in others.iter().enumerate() {
                let mut word = 0u64;
                for b in 0..64 {
                    let p = w * 64 + b;
                    if p < combos && p >> i & 1 != 0 {
                        word |= 1 << b;
                    }
                }
                vals[s.index()] = word;
            }
            for (i, &s) in fsm.state_nets.iter().enumerate() {
                vals[s.index()] = if code >> i & 1 != 0 { u64::MAX } else { 0 };
            }
            let mut ins = Vec::with_capacity(4);
            for &gid in &order {
                let g = nl.gate(gid);
                if g.kind.is_sequential() {
                    continue;
                }
                ins.clear();
                ins.extend(g.inputs.iter().map(|i| vals[i.index()]));
                vals[g.output.index()] = g.kind.eval_words(&ins);
            }
            for &t in &track {
                let word = vals[t.index()];
                let bv = out.get_mut(&t).expect("tracked");
                for b in 0..64 {
                    let p = w * 64 + b;
                    if p < combos && word >> b & 1 != 0 {
                        bv.set(p, true);
                    }
                }
            }
        }
        out
    };

    // --- 2. Reachability BFS from the reset code. ---
    let mut reachable: Vec<u128> = vec![fsm.reset_code];
    let mut seen: BTreeSet<u128> = BTreeSet::new();
    seen.insert(fsm.reset_code);
    let mut behaviours: HashMap<u128, HashMap<NetId, BitVec>> = HashMap::new();
    let mut qi = 0;
    while qi < reachable.len() {
        let code = reachable[qi];
        qi += 1;
        if reachable.len() > max_codes {
            return Err(SynthError::FsmExtraction("state explosion".into()));
        }
        let beh = eval_code(nl, code);
        for combo in 0..combos {
            let mut next = 0u128;
            for (i, &d) in state_d.iter().enumerate() {
                if beh[&d].get(combo) {
                    next |= 1 << i;
                }
            }
            if seen.insert(next) {
                reachable.push(next);
            }
        }
        behaviours.insert(code, beh);
    }
    reachable.sort();
    let n_states = reachable.len();
    let idx_of: HashMap<u128, usize> = reachable.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    // --- 3. Choose the new encoding. ---
    let new_codes: Vec<u128> = match opts.fsm_encoding {
        FsmEncoding::Binary => (0..n_states as u128).collect(),
        FsmEncoding::Gray => (0..n_states as u128).map(|i| i ^ (i >> 1)).collect(),
        FsmEncoding::OneHot => (0..n_states).map(|i| 1u128 << i).collect(),
        FsmEncoding::Keep => reachable.clone(),
    };
    let new_width = match opts.fsm_encoding {
        FsmEncoding::OneHot => n_states,
        FsmEncoding::Keep => state_width,
        _ => {
            let mut w = 1;
            while (1usize << w) < n_states {
                w += 1;
            }
            w
        }
    };
    if new_width + f > 22 {
        return Err(SynthError::FsmExtraction(
            "re-encoded truth tables too wide".into(),
        ));
    }
    let code_of_pattern: HashMap<u128, usize> =
        new_codes.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    // --- 4. Rebuild logic over [new_state, others]. ---
    let total_vars = new_width + f;
    let dc_tt = TruthTable::from_fn(total_vars, |m| {
        let pat = (m & ((1 << new_width) - 1)) as u128;
        !code_of_pattern.contains_key(&pat)
    });
    let dc_cover = Cover::from_truth_table(&dc_tt);
    let espresso_opts = EspressoOptions::default();

    let new_q: Vec<NetId> = (0..new_width)
        .map(|i| nl.add_named_net(format!("fsm_state[{i}]")))
        .collect();
    let mut support: Vec<NetId> = new_q.clone();
    support.extend(others.iter().copied());

    // Collect the truth table of every root to rebuild (next-state bits,
    // outputs, non-state flop D inputs), then minimize them as one batch:
    // the per-root jobs are independent, so the batch driver runs them
    // concurrently under the `parallel` feature with identical results.
    let root_tt = |value_of: &dyn Fn(usize, usize) -> bool| -> TruthTable {
        // value_of(state_idx, combo)
        TruthTable::from_fn(total_vars, |m| {
            let pat = (m & ((1 << new_width) - 1)) as u128;
            match code_of_pattern.get(&pat) {
                Some(&si) => value_of(si, m >> new_width),
                None => false,
            }
        })
    };
    let mut root_tts: Vec<TruthTable> = Vec::new();
    for bit in 0..new_width {
        root_tts.push(root_tt(&|si, combo| {
            let old_code = reachable[si];
            let beh = &behaviours[&old_code];
            let mut next = 0u128;
            for (i, &d) in state_d.iter().enumerate() {
                if beh[&d].get(combo) {
                    next |= 1 << i;
                }
            }
            let ni = idx_of[&next];
            new_codes[ni] >> bit & 1 != 0
        }));
    }
    for &o in &output_roots {
        root_tts.push(root_tt(&|si, combo| {
            behaviours[&reachable[si]][&o].get(combo)
        }));
    }
    for (fi, _) in other_flops.iter().enumerate() {
        let d = other_d[fi];
        root_tts.push(root_tt(&|si, combo| {
            behaviours[&reachable[si]][&d].get(combo)
        }));
    }
    let root_ons: Vec<Cover> = root_tts.iter().map(Cover::from_truth_table).collect();
    let covers =
        synthir_logic::espresso::minimize_batch(&root_ons, Some(&dc_cover), &espresso_opts);
    let mut cover_it = covers.iter();
    let mut next_root = |nl: &mut Netlist| -> NetId {
        emit_cover(nl, cover_it.next().expect("one cover per root"), &support)
    };

    // Next-state bits.
    let mut new_state_d: Vec<NetId> = Vec::with_capacity(new_width);
    for _ in 0..new_width {
        new_state_d.push(next_root(nl));
    }
    // Output roots.
    let mut new_outputs: Vec<(NetId, NetId)> = Vec::new();
    for &o in &output_roots {
        new_outputs.push((o, next_root(nl)));
    }
    // Non-state flop D roots.
    let mut new_other_d: Vec<(GateId, NetId)> = Vec::new();
    for &fgate in other_flops.iter() {
        new_other_d.push((fgate, next_root(nl)));
    }

    // --- 5. Stitch the new logic in. ---
    let new_reset_code = new_codes[idx_of[&fsm.reset_code]];
    for (i, &q) in new_q.iter().enumerate() {
        let init = new_reset_code >> i & 1 != 0;
        let kind = GateKind::Dff {
            reset: reset_kind,
            init,
        };
        let inputs: Vec<NetId> = match (reset_kind, rst_net) {
            (ResetKind::None, _) => vec![new_state_d[i]],
            (_, Some(r)) => vec![new_state_d[i], r],
            (_, None) => vec![new_state_d[i]],
        };
        nl.attach_gate(kind, &inputs, q)
            .expect("fresh state net is undriven");
    }
    for (old, new) in new_outputs {
        nl.replace_net_uses(old, new);
    }
    for (fgate, new_d) in new_other_d {
        let g = nl.gate(fgate).clone();
        let mut inputs = g.inputs.clone();
        inputs[0] = new_d;
        nl.rewrite_gate(fgate, g.kind, &inputs);
    }
    nl.sweep();
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-state counter written over 2 bits: state 3 is unreachable. The
    /// direct netlist wastes logic treating code 3 as a care condition.
    fn mod3_counter(extra_wasteful: bool) -> (Netlist, FsmNets) {
        let mut nl = Netlist::new("mod3");
        let rst = nl.add_input("rst", 1)[0];
        let en = nl.add_input("en", 1)[0];
        let q0 = nl.add_net();
        let q1 = nl.add_net();
        // next0 = en ? !q0 & !q1 : q0 ; next1 = en ? q0 : q1
        let nq0 = nl.add_gate(GateKind::Inv, &[q0]);
        let nq1 = nl.add_gate(GateKind::Inv, &[q1]);
        let both0 = nl.add_gate(GateKind::And2, &[nq0, nq1]);
        let d0 = nl.add_gate(GateKind::Mux2, &[en, q0, both0]);
        let mut next1 = q0;
        if extra_wasteful {
            // Same function, clumsier structure.
            let t = nl.add_gate(GateKind::And2, &[q0, q0]);
            next1 = nl.add_gate(GateKind::Or2, &[t, both0]);
            // (q0 | (!q0 & !q1)) differs from q0 at state 0; mask with q0:
            next1 = nl.add_gate(GateKind::And2, &[next1, q0]);
        }
        let d1 = nl.add_gate(GateKind::Mux2, &[en, q1, next1]);
        let kind = GateKind::Dff {
            reset: ResetKind::Sync,
            init: false,
        };
        nl.attach_gate(kind, &[d0, rst], q0).unwrap();
        nl.attach_gate(kind, &[d1, rst], q1).unwrap();
        // Output: one-hot decode of the state.
        let s0 = nl.add_gate(GateKind::And2, &[nq0, nq1]);
        let s1 = nl.add_gate(GateKind::And2, &[q0, nq1]);
        let s2 = nl.add_gate(GateKind::And2, &[nq0, q1]);
        nl.add_output("onehot", &[s0, s1, s2]);
        let fsm = FsmNets {
            state_nets: vec![q0, q1],
            codes: vec![0, 1, 2],
            reset_code: 0,
        };
        (nl, fsm)
    }

    #[test]
    fn reencode_preserves_behaviour() {
        let (mut nl, fsm) = mod3_counter(false);
        let golden = nl.clone();
        let opts = SynthOptions::default();
        assert!(fsm_reencode(&mut nl, &fsm, &opts).unwrap());
        crate::constfold::const_fold(&mut nl);
        let res =
            synthir_sim::check_seq_equiv(&golden, &nl, &synthir_sim::EquivOptions::new()).unwrap();
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn onehot_encoding_uses_one_flop_per_state() {
        let (mut nl, fsm) = mod3_counter(false);
        let opts = SynthOptions {
            fsm_encoding: FsmEncoding::OneHot,
            ..Default::default()
        };
        let golden = mod3_counter(false).0;
        fsm_reencode(&mut nl, &fsm, &opts).unwrap();
        // One-hot over 3 states allocates 3 state bits, but the third is
        // inferable from the other two and may be swept.
        assert!(nl.flop_count() >= 2 && nl.flop_count() <= 3);
        let res =
            synthir_sim::check_seq_equiv(&golden, &nl, &synthir_sim::EquivOptions::new()).unwrap();
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn gray_and_keep_encodings_work() {
        for enc in [FsmEncoding::Gray, FsmEncoding::Keep, FsmEncoding::Binary] {
            let (mut nl, fsm) = mod3_counter(false);
            let golden = nl.clone();
            let opts = SynthOptions {
                fsm_encoding: enc,
                ..Default::default()
            };
            fsm_reencode(&mut nl, &fsm, &opts).unwrap();
            let res = synthir_sim::check_seq_equiv(&golden, &nl, &synthir_sim::EquivOptions::new())
                .unwrap();
            assert!(res.is_equivalent(), "{enc:?}: {res:?}");
        }
    }

    #[test]
    fn fails_cleanly_without_state_flops() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let y = nl.add_gate(GateKind::Inv, &[a]);
        nl.add_output("y", &[y]);
        let fsm = FsmNets {
            state_nets: vec![a],
            codes: vec![0, 1],
            reset_code: 0,
        };
        let opts = SynthOptions::default();
        assert!(matches!(
            fsm_reencode(&mut nl, &fsm, &opts),
            Err(SynthError::FsmExtraction(_))
        ));
    }
}
