//! The AIG cleanup pass: the netlist-facing wrapper around the
//! [`synthir_aig`] optimization core.
//!
//! One invocation replaces what previously took two fixpoint loops over the
//! flat netlist (`const_fold` + `strash`, each re-sorting and re-hashing the
//! whole graph per round): the netlist is imported into a structurally
//! hashed And-Inverter Graph — where constant folding, sharing, and two-level
//! simplification happen *at construction* — locally rewritten (2-input-cut
//! NPN resynthesis plus dangling-node sweep), optionally SAT-swept, and
//! exported back. Port names, flop reset/init semantics, and the FSM /
//! value-set annotations the paper's flow depends on are carried across the
//! round-trip by literal maps.

use synthir_aig::{from_netlist, optimize, to_netlist, AigLit, SweepOptions};
use synthir_netlist::{NetId, Netlist};
use synthir_rtl::elaborate::{FsmNets, NetGroupValues};

/// Runs the AIG cleanup over `nl` in place, remapping the FSM metadata and
/// value-set annotations onto the rebuilt netlist. Returns the number of
/// rewrites: gates eliminated across the round-trip (construction-time
/// folding included) plus SAT-sweep merges.
pub fn aig_optimize(
    nl: &mut Netlist,
    mut fsm: Option<&mut FsmNets>,
    annotations: &mut [NetGroupValues],
    sat_sweep: bool,
) -> usize {
    let gates_before = nl.num_gates();
    let Ok(imp) = from_netlist(nl) else {
        // Cyclic netlists are rejected by `compile`'s validation before any
        // pass runs; a failure here means "leave the netlist untouched".
        return 0;
    };
    // Literals that must stay materialized across the rebuild: the FSM
    // state vector and every annotated net group.
    let mut keep: Vec<AigLit> = Vec::new();
    let net_keep = |keep: &mut Vec<AigLit>, nets: &[NetId]| -> bool {
        let lits: Option<Vec<AigLit>> = nets.iter().map(|&n| imp.lits.get(n)).collect();
        match lits {
            Some(lits) => {
                keep.extend(&lits);
                true
            }
            None => false,
        }
    };
    let fsm_mapped = fsm
        .as_ref()
        .is_some_and(|f| net_keep(&mut keep, &f.state_nets));
    let anno_mapped: Vec<bool> = annotations
        .iter()
        .map(|g| net_keep(&mut keep, &g.nets))
        .collect();

    let sweep_opts = SweepOptions::default();
    let (opt, stats) = optimize(&imp.aig, &keep, sat_sweep.then_some(&sweep_opts));
    let exp = to_netlist(
        &opt.aig,
        &keep.iter().map(|&l| opt.lit(l)).collect::<Vec<_>>(),
    );

    // Remap the metadata through import → optimize → export.
    let remap = |nets: &mut [NetId]| {
        for n in nets.iter_mut() {
            let lit = opt.lit(imp.lits.get(*n).expect("kept net was mapped"));
            *n = exp.net_of(lit).expect("kept literal has a net");
        }
    };
    if fsm_mapped {
        if let Some(f) = &mut fsm {
            remap(&mut f.state_nets);
        }
    }
    for (g, mapped) in annotations.iter_mut().zip(&anno_mapped) {
        if *mapped {
            remap(&mut g.nets);
        } else {
            // A net of this group was invisible to the import (cannot
            // happen for elaborated designs); neutralize the group rather
            // than let stale ids alias the rebuilt netlist.
            g.nets.clear();
        }
    }
    *nl = exp.netlist;
    gates_before.saturating_sub(nl.num_gates()) + stats.sat_merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_logic::ValueSet;
    use synthir_netlist::{GateKind, ResetKind};

    #[test]
    fn folds_and_shares_in_one_call() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c1 = nl.const1();
        let x = nl.add_gate(GateKind::And2, &[a, c1]); // == a
        let y = nl.add_gate(GateKind::And2, &[x, b]);
        let z = nl.add_gate(GateKind::And2, &[b, a]); // == y after folding
        let w = nl.add_gate(GateKind::Or2, &[y, z]); // == y
        nl.add_output("w", &[w]);
        let n = aig_optimize(&mut nl, None, &mut [], false);
        assert!(n >= 1);
        // One And2 remains.
        assert_eq!(nl.num_gates(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn fsm_metadata_is_remapped_onto_surviving_flops() {
        let mut nl = Netlist::new("t");
        let rst = nl.add_input("rst", 1)[0];
        let d = nl.add_input("d", 1)[0];
        // A state register behind a removable double inverter.
        let i1 = nl.add_gate(GateKind::Inv, &[d]);
        let i2 = nl.add_gate(GateKind::Inv, &[i1]);
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[i2, rst],
        );
        nl.add_output("q", &[q]);
        let mut fsm = FsmNets {
            state_nets: vec![q],
            codes: vec![0, 1],
            reset_code: 0,
        };
        aig_optimize(&mut nl, Some(&mut fsm), &mut [], false);
        // The state net survived and is still flop-driven.
        let sq = fsm.state_nets[0];
        let drv = nl.driver(sq).expect("state net driven");
        assert!(nl.gate(drv).kind.is_sequential());
        assert_eq!(nl.flop_count(), 1);
        // The double inverter is gone.
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn annotations_follow_their_nets() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input("x", 2);
        let i1 = nl.add_gate(GateKind::Inv, &[x[0]]);
        let g0 = nl.add_gate(GateKind::Inv, &[i1]); // == x[0]
        let y = nl.add_gate(GateKind::And2, &[g0, x[1]]);
        nl.add_output("y", &[y]);
        let mut annos = vec![NetGroupValues {
            nets: vec![g0, x[1]],
            values: ValueSet::from_values(2, [0b01u128, 0b10]),
        }];
        aig_optimize(&mut nl, None, &mut annos, false);
        // Every annotated net exists in the rebuilt netlist and feeds the
        // surviving logic (g0 collapsed onto the input).
        for &n in &annos[0].nets {
            assert!(n.index() < nl.num_nets());
        }
        nl.validate().unwrap();
    }
}
