//! Constant propagation and folding (the `k = 1` case of the paper's
//! optimization taxonomy).
//!
//! Bound configuration tables elaborate into mux trees over constant leaves;
//! this pass is what collapses them. The rules also clean up after the other
//! passes (buffer/double-inverter removal, mux strength reduction, constant
//! flop elimination).

use synthir_netlist::{GateId, GateKind, NetId, Netlist};

/// Runs constant folding to a fixpoint. Returns the number of rewrites
/// applied.
pub fn const_fold(nl: &mut Netlist) -> usize {
    let mut total = 0;
    loop {
        let n = fold_once(nl);
        total += n;
        nl.sweep();
        if n == 0 {
            break;
        }
    }
    total
}

enum Action {
    ReplaceConst(bool),
    ReplaceNet(NetId),
    Rewrite(GateKind, Vec<NetId>),
}

fn fold_once(nl: &mut Netlist) -> usize {
    let Ok(order) = synthir_netlist::topo::topological_order(nl) else {
        return 0;
    };
    let mut count = 0;
    for gid in order {
        if !nl.is_live(gid) {
            continue;
        }
        let Some(action) = simplify(nl, gid) else {
            continue;
        };
        let out = nl.gate(gid).output;
        match action {
            Action::ReplaceConst(v) => {
                let c = nl.constant(v);
                nl.replace_net_uses(out, c);
            }
            Action::ReplaceNet(n) => {
                nl.replace_net_uses(out, n);
            }
            Action::Rewrite(kind, inputs) => {
                nl.rewrite_gate(gid, kind, &inputs);
            }
        }
        count += 1;
    }
    count
}

/// The constant value of a net, if driven by a constant gate.
fn cval(nl: &Netlist, n: NetId) -> Option<bool> {
    nl.as_constant(n)
}

/// Whether `a` is the complement of `b` (one drives the other through an
/// inverter).
fn complements(nl: &Netlist, a: NetId, b: NetId) -> bool {
    let inv_of = |x: NetId| -> Option<NetId> {
        nl.driver(x).and_then(|g| {
            let gate = nl.gate(g);
            if gate.kind == GateKind::Inv {
                Some(gate.inputs[0])
            } else {
                None
            }
        })
    };
    inv_of(a) == Some(b) || inv_of(b) == Some(a)
}

#[allow(clippy::too_many_lines)]
fn simplify(nl: &mut Netlist, gid: GateId) -> Option<Action> {
    let gate = nl.gate(gid).clone();
    let ins = &gate.inputs;
    let c: Vec<Option<bool>> = ins.iter().map(|&n| cval(nl, n)).collect();
    use GateKind::*;
    match gate.kind {
        Const0 | Const1 => None,
        Buf => Some(Action::ReplaceNet(ins[0])),
        Inv => match c[0] {
            Some(v) => Some(Action::ReplaceConst(!v)),
            None => {
                // Inv(Inv(x)) = x
                let d = nl.driver(ins[0])?;
                let dg = nl.gate(d);
                if dg.kind == Inv {
                    Some(Action::ReplaceNet(dg.inputs[0]))
                } else {
                    None
                }
            }
        },
        And2 | And3 | And4 | Or2 | Or3 | Or4 | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | Nor4 => {
            let (is_and, inverted) = match gate.kind {
                And2 | And3 | And4 => (true, false),
                Nand2 | Nand3 | Nand4 => (true, true),
                Or2 | Or3 | Or4 => (false, false),
                _ => (false, true),
            };
            // In AND terms: absorbing = 0, identity = 1; dual for OR.
            let absorbing = !is_and;
            let mut kept: Vec<NetId> = Vec::new();
            for (i, &n) in ins.iter().enumerate() {
                match c[i] {
                    Some(v) if v == absorbing => {
                        return Some(Action::ReplaceConst(absorbing ^ inverted));
                    }
                    Some(_) => {} // identity: drop
                    None => {
                        if !kept.contains(&n) {
                            kept.push(n);
                        }
                    }
                }
            }
            // Complementary pair → absorbing result.
            for i in 0..kept.len() {
                for j in i + 1..kept.len() {
                    if complements(nl, kept[i], kept[j]) {
                        return Some(Action::ReplaceConst(absorbing ^ inverted));
                    }
                }
            }
            match kept.len() {
                0 => Some(Action::ReplaceConst(!absorbing ^ inverted)),
                1 => {
                    if inverted {
                        Some(Action::Rewrite(Inv, kept))
                    } else {
                        Some(Action::ReplaceNet(kept[0]))
                    }
                }
                k if k < ins.len() || kept != *ins => {
                    let kind = match (is_and, inverted, k) {
                        (true, false, 2) => And2,
                        (true, false, 3) => And3,
                        (true, true, 2) => Nand2,
                        (true, true, 3) => Nand3,
                        (false, false, 2) => Or2,
                        (false, false, 3) => Or3,
                        (false, true, 2) => Nor2,
                        (false, true, 3) => Nor3,
                        _ => return None, // 4 distinct inputs: nothing to do
                    };
                    Some(Action::Rewrite(kind, kept))
                }
                _ => None,
            }
        }
        Xor2 | Xnor2 => {
            let base_inverted = gate.kind == Xnor2;
            match (c[0], c[1]) {
                (Some(a), Some(b)) => Some(Action::ReplaceConst((a ^ b) != base_inverted)),
                (Some(v), None) | (None, Some(v)) => {
                    let other = if c[0].is_some() { ins[1] } else { ins[0] };
                    if v != base_inverted {
                        Some(Action::Rewrite(Inv, vec![other]))
                    } else {
                        Some(Action::ReplaceNet(other))
                    }
                }
                (None, None) => {
                    if ins[0] == ins[1] {
                        Some(Action::ReplaceConst(base_inverted))
                    } else if complements(nl, ins[0], ins[1]) {
                        Some(Action::ReplaceConst(!base_inverted))
                    } else {
                        None
                    }
                }
            }
        }
        Mux2 => {
            let (s, d0, d1) = (ins[0], ins[1], ins[2]);
            match (c[0], c[1], c[2]) {
                (Some(false), _, _) => Some(Action::ReplaceNet(d0)),
                (Some(true), _, _) => Some(Action::ReplaceNet(d1)),
                (None, Some(a), Some(b)) => Some(if a == b {
                    Action::ReplaceConst(a)
                } else if b {
                    Action::Rewrite(Buf, vec![s])
                } else {
                    Action::Rewrite(Inv, vec![s])
                }),
                (None, Some(false), None) => Some(Action::Rewrite(And2, vec![s, d1])),
                (None, Some(true), None) => {
                    // !s | d1
                    let ns = nl.add_gate(Inv, &[s]);
                    Some(Action::Rewrite(Or2, vec![ns, d1]))
                }
                (None, None, Some(false)) => {
                    // !s & d0
                    let ns = nl.add_gate(Inv, &[s]);
                    Some(Action::Rewrite(And2, vec![ns, d0]))
                }
                (None, None, Some(true)) => Some(Action::Rewrite(Or2, vec![s, d0])),
                (None, None, None) => {
                    if d0 == d1 {
                        Some(Action::ReplaceNet(d0))
                    } else if s == d1 || complements(nl, s, d0) {
                        // s ? s : d0 == s | d0 ; also (!s==d0) case: s?d1:!s
                        if s == d1 {
                            Some(Action::Rewrite(Or2, vec![s, d0]))
                        } else {
                            None
                        }
                    } else if s == d0 {
                        // s ? d1 : s == s & d1
                        Some(Action::Rewrite(And2, vec![s, d1]))
                    } else {
                        None
                    }
                }
            }
        }
        Aoi21 | Oai21 | Aoi22 | Oai22 => {
            // These appear only after techmap, which runs after folding; any
            // constants remaining here are handled by a conservative rule:
            // full constant evaluation only.
            if c.iter().all(|v| v.is_some()) {
                let vals: Vec<bool> = c.iter().map(|v| v.unwrap()).collect();
                Some(Action::ReplaceConst(gate.kind.eval(&vals)))
            } else {
                None
            }
        }
        Dff { init, .. } => {
            // A flop whose D pin is a constant equal to its init/reset value
            // never changes: fold to the constant.
            if c[0] == Some(init) {
                Some(Action::ReplaceConst(init))
            } else if ins[0] == gate.output {
                // Pure self-loop holds its init value forever.
                Some(Action::ReplaceConst(init))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::{Library, ResetKind};

    #[test]
    fn folds_constant_and() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let c1 = nl.const1();
        let y = nl.add_gate(GateKind::And2, &[a, c1]);
        nl.add_output("y", &[y]);
        const_fold(&mut nl);
        // The AND is gone; output is the input directly.
        assert_eq!(nl.output_nets()[0], a);
        assert_eq!(nl.num_gates(), 0);
    }

    #[test]
    fn folds_mux_tree_of_constants() {
        // A 4:1 constant mux tree = a 2-input function; folding should
        // reduce it to a couple of gates at most.
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s", 2);
        let c0 = nl.const0();
        let c1 = nl.const1();
        // Table 0,1,1,0 = XOR.
        let lo = nl.add_gate(GateKind::Mux2, &[s[0], c0, c1]);
        let hi = nl.add_gate(GateKind::Mux2, &[s[0], c1, c0]);
        let y = nl.add_gate(GateKind::Mux2, &[s[1], lo, hi]);
        nl.add_output("y", &[y]);
        const_fold(&mut nl);
        let lib = Library::vt90();
        // XOR as mux-of-buf/inv: folding gives mux(s1, s0, !s0) — small.
        assert!(nl.area_report(&lib).combinational <= 2.0 * lib.area(GateKind::Xor2));
        assert!(nl.num_gates() <= 3);
    }

    #[test]
    fn removes_double_inverters_and_buffers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_gate(GateKind::Buf, &[a]);
        let i1 = nl.add_gate(GateKind::Inv, &[b]);
        let i2 = nl.add_gate(GateKind::Inv, &[i1]);
        nl.add_output("y", &[i2]);
        const_fold(&mut nl);
        assert_eq!(nl.output_nets()[0], a);
    }

    #[test]
    fn folds_xor_identities() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let same = nl.add_gate(GateKind::Xor2, &[a, a]);
        let na = nl.add_gate(GateKind::Inv, &[a]);
        let comp = nl.add_gate(GateKind::Xnor2, &[a, na]);
        nl.add_output("z", &[same]);
        nl.add_output("c", &[comp]);
        const_fold(&mut nl);
        assert_eq!(nl.as_constant(nl.output_nets()[0]), Some(false));
        assert_eq!(nl.as_constant(nl.output_nets()[1]), Some(false));
    }

    #[test]
    fn and_with_complement_is_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let na = nl.add_gate(GateKind::Inv, &[a]);
        let y = nl.add_gate(GateKind::And2, &[a, na]);
        nl.add_output("y", &[y]);
        const_fold(&mut nl);
        assert_eq!(nl.as_constant(nl.output_nets()[0]), Some(false));
    }

    #[test]
    fn constant_flop_folds() {
        let mut nl = Netlist::new("t");
        let c0 = nl.const0();
        let rst = nl.add_input("rst", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[c0, rst],
        );
        nl.add_output("q", &[q]);
        const_fold(&mut nl);
        assert_eq!(nl.flop_count(), 0);
        assert_eq!(nl.as_constant(nl.output_nets()[0]), Some(false));
    }

    #[test]
    fn flop_with_nonmatching_constant_kept() {
        // D=1 but init=0: the flop output changes after the first cycle, so
        // it must not fold.
        let mut nl = Netlist::new("t");
        let c1 = nl.const1();
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[c1],
        );
        nl.add_output("q", &[q]);
        const_fold(&mut nl);
        assert_eq!(nl.flop_count(), 1);
    }

    #[test]
    fn mux_strength_reduction() {
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s", 1)[0];
        let d = nl.add_input("d", 1)[0];
        let c0 = nl.const0();
        let y = nl.add_gate(GateKind::Mux2, &[s, c0, d]);
        nl.add_output("y", &[y]);
        const_fold(&mut nl);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::And2);
    }

    #[test]
    fn nary_gates_shrink() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c1 = nl.const1();
        let y = nl.add_gate(GateKind::And3, &[a, c1, b]);
        nl.add_output("y", &[y]);
        const_fold(&mut nl);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::And2);
        // Nand with a zero input is constant one.
        let mut nl2 = Netlist::new("t2");
        let a2 = nl2.add_input("a", 1)[0];
        let c0 = nl2.const0();
        let y2 = nl2.add_gate(GateKind::Nand3, &[a2, c0, a2]);
        nl2.add_output("y", &[y2]);
        const_fold(&mut nl2);
        assert_eq!(nl2.as_constant(nl2.output_nets()[0]), Some(true));
    }
}
