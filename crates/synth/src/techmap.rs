//! Technology mapping: rewriting the generic And/Or/Inv/Mux network into
//! the cheaper inverting cells of the library (NAND/NOR/AOI/OAI) and wider
//! fan-in gates.
//!
//! A greedy peephole mapper: each rule fires only when the intermediate
//! nets it swallows have no other fanout, so the rewrite is always
//! area-neutral or better under [`synthir_netlist::Library::vt90`].

use synthir_netlist::{GateId, GateKind, Netlist};

/// Runs the peephole mapper to a fixpoint. Returns the number of rewrites.
pub fn techmap(nl: &mut Netlist) -> usize {
    let mut total = 0;
    loop {
        let n = map_once(nl);
        total += n;
        nl.sweep();
        if n == 0 {
            break;
        }
    }
    total
}

fn map_once(nl: &mut Netlist) -> usize {
    let fanout = nl.fanout_map();
    let out_nets: std::collections::HashSet<_> = nl.output_nets().into_iter().collect();
    let single_fanout = |nl: &Netlist, gid: GateId| -> bool {
        let out = nl.gate(gid).output;
        fanout[out.index()].len() == 1 && !out_nets.contains(&out)
    };
    let gids: Vec<GateId> = nl.gates().map(|(id, _)| id).collect();
    let mut count = 0;
    for gid in gids {
        if !nl.is_live(gid) {
            continue;
        }
        let g = nl.gate(gid).clone();
        use GateKind::*;
        match g.kind {
            // Inv(And*) -> Nand*, Inv(Or*) -> Nor* (absorb the inner gate).
            Inv => {
                let Some(inner) = nl.driver(g.inputs[0]) else {
                    continue;
                };
                if !single_fanout(nl, inner) {
                    continue;
                }
                let ig = nl.gate(inner).clone();
                let mapped = match ig.kind {
                    And2 => Some(Nand2),
                    And3 => Some(Nand3),
                    And4 => Some(Nand4),
                    Or2 => Some(Nor2),
                    Or3 => Some(Nor3),
                    Or4 => Some(Nor4),
                    Xor2 => Some(Xnor2),
                    Xnor2 => Some(Xor2),
                    Nand2 => Some(And2),
                    Nor2 => Some(Or2),
                    _ => None,
                };
                // AOI/OAI patterns: Inv(Or2(And2(a,b), c)) etc.
                if ig.kind == Or2 {
                    if let Some((aoi_inputs, wide)) = match_and_or(nl, &ig, true) {
                        if wide {
                            nl.rewrite_gate(gid, Aoi22, &aoi_inputs);
                        } else {
                            nl.rewrite_gate(gid, Aoi21, &aoi_inputs);
                        }
                        count += 1;
                        continue;
                    }
                }
                if ig.kind == And2 {
                    if let Some((oai_inputs, wide)) = match_and_or(nl, &ig, false) {
                        if wide {
                            nl.rewrite_gate(gid, Oai22, &oai_inputs);
                        } else {
                            nl.rewrite_gate(gid, Oai21, &oai_inputs);
                        }
                        count += 1;
                        continue;
                    }
                }
                if let Some(kind) = mapped {
                    nl.rewrite_gate(gid, kind, &ig.inputs);
                    count += 1;
                }
            }
            // Widen AND/OR trees: And2(And2(a,b), c) -> And3 when the inner
            // gate has a single fanout.
            And2 | Or2 => {
                let widened = try_widen(nl, gid, &g, &single_fanout);
                if widened {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

/// For an Or2 (when `and_inner`) finds `Or2(And2(a,b), c)` → `[a,b,c]`
/// (Aoi21) or `Or2(And2(a,b), And2(c,d))` → `[a,b,c,d]` (Aoi22); dual for
/// And2 with Or2 children. Inner gates must be single-fanout.
fn match_and_or(
    nl: &Netlist,
    outer: &synthir_netlist::Gate,
    and_inner: bool,
) -> Option<(Vec<synthir_netlist::NetId>, bool)> {
    let want = if and_inner {
        GateKind::And2
    } else {
        GateKind::Or2
    };
    let fanout = nl.fanout_map();
    let out_nets: std::collections::HashSet<_> = nl.output_nets().into_iter().collect();
    let inner_of = |n: synthir_netlist::NetId| -> Option<&synthir_netlist::Gate> {
        let d = nl.driver(n)?;
        let g = nl.gate(d);
        if g.kind == want && fanout[n.index()].len() == 1 && !out_nets.contains(&n) {
            Some(g)
        } else {
            None
        }
    };
    match (inner_of(outer.inputs[0]), inner_of(outer.inputs[1])) {
        (Some(a), Some(b)) => Some((
            vec![a.inputs[0], a.inputs[1], b.inputs[0], b.inputs[1]],
            true,
        )),
        (Some(a), None) => Some((vec![a.inputs[0], a.inputs[1], outer.inputs[1]], false)),
        (None, Some(b)) => Some((vec![b.inputs[0], b.inputs[1], outer.inputs[0]], false)),
        (None, None) => None,
    }
}

fn try_widen(
    nl: &mut Netlist,
    gid: GateId,
    g: &synthir_netlist::Gate,
    single_fanout: &dyn Fn(&Netlist, GateId) -> bool,
) -> bool {
    let (two, three, four) = match g.kind {
        GateKind::And2 => (GateKind::And2, GateKind::And3, GateKind::And4),
        GateKind::Or2 => (GateKind::Or2, GateKind::Or3, GateKind::Or4),
        _ => return false,
    };
    for (i, &inp) in g.inputs.iter().enumerate() {
        let Some(inner) = nl.driver(inp) else {
            continue;
        };
        let ig = nl.gate(inner).clone();
        if ig.kind != two || !single_fanout(nl, inner) {
            continue;
        }
        let other = g.inputs[1 - i];
        // Check whether the other side is also a mergeable pair -> 4-input.
        if let Some(oinner) = nl.driver(other) {
            let og = nl.gate(oinner).clone();
            if og.kind == two && single_fanout(nl, oinner) {
                nl.rewrite_gate(
                    gid,
                    four,
                    &[ig.inputs[0], ig.inputs[1], og.inputs[0], og.inputs[1]],
                );
                return true;
            }
        }
        nl.rewrite_gate(gid, three, &[ig.inputs[0], ig.inputs[1], other]);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::Library;

    #[test]
    fn inv_and_becomes_nand() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let x = nl.add_gate(GateKind::And2, &[a, b]);
        let y = nl.add_gate(GateKind::Inv, &[x]);
        nl.add_output("y", &[y]);
        techmap(&mut nl);
        assert_eq!(nl.num_gates(), 1);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::Nand2);
    }

    #[test]
    fn aoi21_pattern() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c = nl.add_input("c", 1)[0];
        let ab = nl.add_gate(GateKind::And2, &[a, b]);
        let o = nl.add_gate(GateKind::Or2, &[ab, c]);
        let y = nl.add_gate(GateKind::Inv, &[o]);
        nl.add_output("y", &[y]);
        techmap(&mut nl);
        assert_eq!(nl.num_gates(), 1);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::Aoi21);
    }

    #[test]
    fn and_tree_widens() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input("x", 4);
        let t1 = nl.add_gate(GateKind::And2, &[x[0], x[1]]);
        let t2 = nl.add_gate(GateKind::And2, &[x[2], x[3]]);
        let y = nl.add_gate(GateKind::And2, &[t1, t2]);
        nl.add_output("y", &[y]);
        techmap(&mut nl);
        assert_eq!(nl.num_gates(), 1);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::And4);
    }

    #[test]
    fn shared_nodes_not_absorbed() {
        // The And2 feeds both the Inv and an output: must stay an And2.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let x = nl.add_gate(GateKind::And2, &[a, b]);
        let y = nl.add_gate(GateKind::Inv, &[x]);
        nl.add_output("y", &[y]);
        nl.add_output("x", &[x]);
        techmap(&mut nl);
        assert_eq!(nl.num_gates(), 2);
    }

    #[test]
    fn mapping_reduces_area_and_preserves_function() {
        // (a&b) | (c&d), inverted — classic AOI22.
        let mut nl = Netlist::new("t");
        let x = nl.add_input("x", 4);
        let ab = nl.add_gate(GateKind::And2, &[x[0], x[1]]);
        let cd = nl.add_gate(GateKind::And2, &[x[2], x[3]]);
        let o = nl.add_gate(GateKind::Or2, &[ab, cd]);
        let y = nl.add_gate(GateKind::Inv, &[o]);
        nl.add_output("y", &[y]);
        let lib = Library::vt90();
        let before_area = nl.area_report(&lib).combinational;
        let golden = nl.clone();
        techmap(&mut nl);
        let after_area = nl.area_report(&lib).combinational;
        assert!(after_area < before_area);
        let res =
            synthir_sim::check_comb_equiv(&golden, &nl, &synthir_sim::EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }
}
