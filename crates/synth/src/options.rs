//! Synthesis options — the knobs the paper's experiments sweep.

/// State-encoding styles for FSM re-encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FsmEncoding {
    /// Minimum-length binary codes `0..n`.
    Binary,
    /// One flop per state.
    OneHot,
    /// Binary-reflected Gray codes.
    Gray,
    /// Keep the original codes (prune unreachables only).
    Keep,
}

/// Which technology mapper [`crate::flow::compile`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Mapper {
    /// The greedy peephole rule mapper ([`crate::techmap`]): local
    /// NAND/NOR/AOI/OAI pattern rewrites on the flat netlist. The
    /// default, and the A/B baseline the cut mapper is measured against.
    #[default]
    Rules,
    /// The cut-based mapper ([`crate::cutmap`]): k-feasible cut
    /// enumeration on the AIG, NPN matching against the library's cell
    /// metadata, and depth/area-flow/exact-local-area cover selection,
    /// emitting the mapped netlist directly from the chosen cuts.
    Cuts,
}

impl Mapper {
    /// Parses a mapper name (the CLI `--mapper` values).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input as the error value.
    pub fn parse(s: &str) -> Result<Mapper, String> {
        match s {
            "rules" | "rule" => Ok(Mapper::Rules),
            "cuts" | "cut" => Ok(Mapper::Cuts),
            other => Err(other.to_string()),
        }
    }

    /// The canonical name (`rules` / `cuts`).
    pub fn name(&self) -> &'static str {
        match self {
            Mapper::Rules => "rules",
            Mapper::Cuts => "cuts",
        }
    }
}

/// Options controlling [`crate::flow::compile`].
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Maximum cone support for collapse-and-re-cover resynthesis.
    /// Models the tool's effort limit; cones wider than this keep their
    /// structural form.
    pub collapse_support: usize,
    /// Skip resynthesis acceptance when the minimized cover exceeds this
    /// many cubes (protects parity-like functions from exponential covers).
    pub max_cover_cubes: usize,
    /// Maximum value-set size considered by state propagation (`k` in the
    /// paper). Annotations with more values are ignored, which reproduces
    /// the paper's observation that manual annotation stops helping beyond
    /// 32-bit one-hot subfields.
    pub max_valueset: usize,
    /// Run the state-propagation pass at all.
    pub state_propagation: bool,
    /// Run forward retiming before optimization (Fig. 8's "Retimed"
    /// variants).
    pub retime: bool,
    /// Run FSM re-encoding when FSM metadata is present.
    pub fsm_reencode: bool,
    /// Encoding used by FSM re-encoding.
    pub fsm_encoding: FsmEncoding,
    /// Enumeration budget (state × input combinations) for FSM extraction.
    pub fsm_enum_limit: usize,
    /// Run structural hashing.
    pub strash: bool,
    /// Run technology mapping (NAND/NOR/AOI conversion).
    pub techmap: bool,
    /// Which technology mapper to run when `techmap` is on: the rule
    /// mapper (default) or the cut-based mapper.
    pub mapper: Mapper,
    /// Use the AIG optimization core for netlist cleanup: constant folding,
    /// structural hashing, and local rewriting happen in one pass over a
    /// hash-consed And-Inverter Graph instead of fixpoint loops over the
    /// flat netlist. Disable to reproduce the original (pre-AIG) pass
    /// order, e.g. for A/B benchmarking.
    pub aig: bool,
    /// Run SAT sweeping inside the AIG cleanup: candidate equivalences
    /// from random-simulation signatures, proved by the CDCL solver and
    /// merged on proof. Off by default (it trades compile time for the
    /// sharing structural methods cannot see). Requires [`SynthOptions::aig`].
    pub sat_sweep: bool,
    /// Debug option: after every pass, SAT-check the netlist against its
    /// predecessor (combinational miter for pure logic, bounded model check
    /// from reset for sequential designs) and abort the flow if a pass
    /// changed observable behaviour. Expensive; off by default.
    pub verify_each_pass: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            collapse_support: 14,
            max_cover_cubes: 96,
            max_valueset: 32,
            state_propagation: true,
            retime: false,
            fsm_reencode: true,
            fsm_encoding: FsmEncoding::Binary,
            fsm_enum_limit: 1 << 18,
            strash: true,
            techmap: true,
            mapper: Mapper::Rules,
            aig: true,
            sat_sweep: false,
            verify_each_pass: false,
        }
    }
}

impl SynthOptions {
    /// The default `compile` recipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns options with retiming enabled.
    pub fn with_retime(mut self) -> Self {
        self.retime = true;
        self
    }

    /// Returns options with a specific FSM encoding.
    pub fn with_fsm_encoding(mut self, enc: FsmEncoding) -> Self {
        self.fsm_encoding = enc;
        self
    }

    /// Returns options with per-pass SAT verification enabled.
    pub fn with_verify_each_pass(mut self) -> Self {
        self.verify_each_pass = true;
        self
    }

    /// Returns options using the original (pre-AIG) pass order: netlist
    /// `const_fold` + `strash` fixpoint loops instead of the AIG core.
    pub fn without_aig(mut self) -> Self {
        self.aig = false;
        self
    }

    /// Returns options with SAT sweeping enabled inside the AIG cleanup.
    pub fn with_sat_sweep(mut self) -> Self {
        self.sat_sweep = true;
        self
    }

    /// Returns options using a specific technology mapper.
    pub fn with_mapper(mut self, mapper: Mapper) -> Self {
        self.mapper = mapper;
        self
    }

    /// Returns options using the cut-based technology mapper
    /// ([`Mapper::Cuts`]).
    pub fn with_cut_mapper(mut self) -> Self {
        self.mapper = Mapper::Cuts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_limits() {
        let o = SynthOptions::default();
        assert_eq!(o.max_valueset, 32);
        assert!(o.state_propagation);
        assert!(!o.retime);
        assert!(o.fsm_reencode);
    }

    #[test]
    fn builder_methods() {
        let o = SynthOptions::new()
            .with_retime()
            .with_fsm_encoding(FsmEncoding::OneHot);
        assert!(o.retime);
        assert_eq!(o.fsm_encoding, FsmEncoding::OneHot);
        assert_eq!(o.mapper, Mapper::Rules);
        assert_eq!(o.with_cut_mapper().mapper, Mapper::Cuts);
    }

    #[test]
    fn mapper_names_round_trip() {
        for m in [Mapper::Rules, Mapper::Cuts] {
            assert_eq!(Mapper::parse(m.name()), Ok(m));
        }
        assert!(Mapper::parse("bogus").is_err());
    }
}
