//! State propagation and folding (the `1 < k < 2^n` generalization of
//! constant propagation — Section III-B of the paper).
//!
//! Given a *value-set annotation* on a group of nets (e.g. "this 8-bit bus
//! is one-hot"), the pass evaluates every net computable from the group over
//! all `k` values. Nets that are constant across the whole set are folded;
//! nets with identical columns are merged (the "merging nodes under
//! observability" optimization of the paper's reference \[16\]).
//!
//! Two faithful limitations of the commercial tool are modelled:
//!
//! * **flop boundaries stop propagation** — the cone exploration never
//!   crosses a sequential element, so an annotation on logic *before* a flop
//!   does nothing for logic *after* it (the paper's Fig. 8 finding); and
//! * **an effort cap on `k`** — sets wider than
//!   [`crate::SynthOptions::max_valueset`] are ignored, which reproduces the
//!   paper's observation that annotating subfields wider than 32 bits stops
//!   being effective.

use std::collections::{HashMap, HashSet};
use synthir_netlist::{topo, NetId, Netlist};
use synthir_rtl::elaborate::NetGroupValues;

/// Applies state propagation and folding for each annotated group.
/// Returns the number of nets folded or merged.
pub fn state_propagate(nl: &mut Netlist, groups: &[NetGroupValues], max_k: usize) -> usize {
    let mut changed = 0;
    for g in groups {
        changed += propagate_group(nl, g, max_k);
    }
    if changed > 0 {
        nl.sweep();
    }
    changed
}

fn propagate_group(nl: &mut Netlist, group: &NetGroupValues, max_k: usize) -> usize {
    let values = group.values.widen(max_k);
    let Some(k) = values.len() else {
        return 0; // unconstrained after widening: the tool gives up
    };
    if k == 0 || group.nets.is_empty() {
        return 0;
    }
    let vals: Vec<u128> = values
        .iter_values()
        .expect("constrained set enumerates")
        .collect();

    // Find the cone: nets computable from the group and constants only,
    // never crossing a flop boundary.
    let Ok(order) = topo::topological_order(nl) else {
        return 0;
    };
    let group_nets: HashSet<NetId> = group.nets.iter().copied().collect();
    let mut supported: HashSet<NetId> = group_nets.clone();
    let mut cone: Vec<(NetId, synthir_netlist::GateId)> = Vec::new();
    for gid in &order {
        let g = nl.gate(*gid);
        if g.kind.is_sequential() {
            continue; // flop boundary: propagation stops here
        }
        if g.kind.is_constant() {
            supported.insert(g.output);
            continue;
        }
        if g.inputs.iter().all(|i| supported.contains(i)) && !group_nets.contains(&g.output) {
            supported.insert(g.output);
            cone.push((g.output, *gid));
        }
    }
    if cone.is_empty() {
        return 0;
    }

    // Evaluate the cone over all k values, 64 per word.
    let words = k.div_ceil(64);
    let mut sigs: HashMap<NetId, Vec<u64>> = HashMap::new();
    for (n, _) in &cone {
        sigs.insert(*n, vec![0u64; words]);
    }
    let mut net_vals = vec![0u64; nl.num_nets()];
    for w in 0..words {
        for (bit_idx, &net) in group.nets.iter().enumerate() {
            let mut word = 0u64;
            for b in 0..64 {
                let vi = w * 64 + b;
                if vi < k && vals[vi] >> bit_idx & 1 != 0 {
                    word |= 1 << b;
                }
            }
            net_vals[net.index()] = word;
        }
        for (_, g) in nl.gates() {
            if g.kind.is_constant() {
                net_vals[g.output.index()] = g.kind.eval_words(&[]);
            }
        }
        let mut ins = Vec::with_capacity(4);
        for (n, gid) in &cone {
            let g = nl.gate(*gid);
            ins.clear();
            ins.extend(g.inputs.iter().map(|i| net_vals[i.index()]));
            let v = g.kind.eval_words(&ins);
            net_vals[n.index()] = v;
            sigs.get_mut(n).expect("cone net")[w] = v;
        }
    }

    // Mask for the tail of the last word.
    let tail_bits = k - (words - 1) * 64;
    let tail_mask = if tail_bits == 64 {
        u64::MAX
    } else {
        (1u64 << tail_bits) - 1
    };
    let is_const = |sig: &[u64], val: bool| -> bool {
        for (i, &w) in sig.iter().enumerate() {
            let mask = if i + 1 == sig.len() {
                tail_mask
            } else {
                u64::MAX
            };
            let expect = if val { mask } else { 0 };
            if w & mask != expect {
                return false;
            }
        }
        true
    };

    let mut changed = 0;
    let mut reps: HashMap<Vec<u64>, NetId> = HashMap::new();
    for (n, _) in &cone {
        let sig = sigs[n].clone();
        if is_const(&sig, false) {
            let c = nl.const0();
            nl.replace_net_uses(*n, c);
            changed += 1;
        } else if is_const(&sig, true) {
            let c = nl.const1();
            nl.replace_net_uses(*n, c);
            changed += 1;
        } else {
            let mut key = sig;
            if let Some(last) = key.last_mut() {
                *last &= tail_mask;
            }
            match reps.get(&key) {
                Some(&rep) => {
                    nl.replace_net_uses(*n, rep);
                    changed += 1;
                }
                None => {
                    reps.insert(key, *n);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_logic::ValueSet;
    use synthir_netlist::{GateKind, ResetKind};

    /// The paper's ones-counter example: over a one-hot bus, `|(y & (y<<1))`
    /// is constant 0 and should fold away.
    fn pairwise_and_design(n: usize, annotate: bool) -> (Netlist, Vec<NetGroupValues>, NetId) {
        let mut nl = Netlist::new("t");
        let y = nl.add_input("y", n);
        let mut terms = Vec::new();
        for i in 0..n - 1 {
            terms.push(nl.add_gate(GateKind::And2, &[y[i], y[i + 1]]));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = nl.add_gate(GateKind::Or2, &[acc, t]);
        }
        nl.add_output("any_adjacent", &[acc]);
        let groups = if annotate {
            vec![NetGroupValues {
                nets: y,
                values: ValueSet::one_hot(n as u32),
            }]
        } else {
            vec![]
        };
        (nl, groups, acc)
    }

    #[test]
    fn folds_onehot_invariant_to_constant() {
        let (mut nl, groups, _) = pairwise_and_design(8, true);
        let changed = state_propagate(&mut nl, &groups, 32);
        assert!(changed > 0);
        assert_eq!(nl.as_constant(nl.output_nets()[0]), Some(false));
        assert_eq!(nl.num_gates(), 1); // just the const cell
    }

    #[test]
    fn no_annotation_no_folding() {
        let (mut nl, groups, _) = pairwise_and_design(8, false);
        let before = nl.num_gates();
        let changed = state_propagate(&mut nl, &groups, 32);
        assert_eq!(changed, 0);
        assert_eq!(nl.num_gates(), before);
    }

    #[test]
    fn widening_limit_disables_large_sets() {
        let (mut nl, groups, _) = pairwise_and_design(40, true);
        // k = 40 > 32: the tool's effort limit ignores the annotation.
        let changed = state_propagate(&mut nl, &groups, 32);
        assert_eq!(changed, 0);
        // With a higher limit it works.
        let changed = state_propagate(&mut nl, &groups, 64);
        assert!(changed > 0);
    }

    #[test]
    fn stops_at_flop_boundary() {
        // annotation on y, but the consumer logic reads flop(y): no folding.
        let n = 4;
        let mut nl = Netlist::new("t");
        let y = nl.add_input("y", n);
        let r: Vec<NetId> = y
            .iter()
            .map(|&b| {
                nl.add_gate(
                    GateKind::Dff {
                        reset: ResetKind::None,
                        init: false,
                    },
                    &[b],
                )
            })
            .collect();
        let t = nl.add_gate(GateKind::And2, &[r[0], r[1]]);
        nl.add_output("o", &[t]);
        let groups = vec![NetGroupValues {
            nets: y.clone(),
            values: ValueSet::one_hot(n as u32),
        }];
        let changed = state_propagate(&mut nl, &groups, 32);
        assert_eq!(changed, 0, "propagation must not cross the flops");
        // Annotating the flop outputs themselves does fold.
        let groups = vec![NetGroupValues {
            nets: r,
            values: ValueSet::one_hot(n as u32),
        }];
        let changed = state_propagate(&mut nl, &groups, 32);
        assert!(changed > 0);
        assert_eq!(nl.as_constant(nl.output_nets()[0]), Some(false));
    }

    #[test]
    fn merges_equal_columns() {
        // Over the set {01, 10}, y0 and !y1 are the same function.
        let mut nl = Netlist::new("t");
        let y = nl.add_input("y", 2);
        let ny1 = nl.add_gate(GateKind::Inv, &[y[1]]);
        let a = nl.add_gate(GateKind::And2, &[y[0], y[0]]); // buf-ish
        nl.add_output("p", &[ny1]);
        nl.add_output("q", &[a]);
        let groups = vec![NetGroupValues {
            nets: y,
            values: ValueSet::from_values(2, [0b01, 0b10]),
        }];
        let changed = state_propagate(&mut nl, &groups, 32);
        assert!(changed >= 1);
        assert_eq!(nl.output_nets()[0], nl.output_nets()[1]);
    }

    #[test]
    fn constant_singleton_set_acts_like_constant_propagation() {
        // k = 1: the degenerate case the paper notes is ordinary constprop.
        let mut nl = Netlist::new("t");
        let y = nl.add_input("y", 3);
        let t0 = nl.add_gate(GateKind::And2, &[y[0], y[1]]);
        let t1 = nl.add_gate(GateKind::Or2, &[t0, y[2]]);
        nl.add_output("o", &[t1]);
        let groups = vec![NetGroupValues {
            nets: y,
            values: ValueSet::constant(3, 0b011),
        }];
        state_propagate(&mut nl, &groups, 32);
        assert_eq!(nl.as_constant(nl.output_nets()[0]), Some(true));
    }
}
