//! # synthir-synth
//!
//! A from-scratch logic-synthesis engine with the partial-evaluation
//! abilities the paper investigates.
//!
//! The paper's thesis is that a chip generator can emit flexible,
//! table-based controllers and rely on the synthesis tool to specialize them
//! ("partial evaluation"), *provided* the tool performs:
//!
//! 1. **constant propagation and folding** — [`constfold`]: configuration
//!    constants flow through the lookup structure and collapse it;
//! 2. **two-level re-covering** — [`resynth`]: small cones are collapsed to
//!    truth tables and re-covered with an espresso-style minimizer, which is
//!    what makes a folded table match a hand-written sum-of-products;
//! 3. **state propagation and folding** — [`stateprop`]: known value *sets*
//!    (`1 < k < 2^n`) are propagated through downstream logic — but, as in
//!    the commercial tools the paper measures, **never across flop
//!    boundaries** unless the user supplies an annotation ([`stateprop`]
//!    consumes [`synthir_rtl::elaborate::NetGroupValues`]) or retiming
//!    ([`retime`]) happens to move the boundary;
//! 4. **FSM re-encoding** — [`fsmreencode`]: only when the coding style (or
//!    a manual `set_fsm_state_vector` annotation) identifies the state
//!    register, the engine extracts the state graph, prunes unreachable
//!    states, and re-encodes.
//!
//! [`flow::compile`] sequences these passes like a `compile` run of the
//! commercial tool the paper used, and [`timing`] provides the static
//! timing side of the methodology. The optimized network is lowered to
//! library cells by one of two technology mappers
//! ([`options::Mapper`]): the greedy peephole rule mapper ([`techmap`])
//! or the cut-based mapper ([`cutmap`]) — k-feasible cuts on the AIG,
//! NPN-matched against the [`synthir_netlist::Library`] cell metadata,
//! with depth-oriented and area-recovery cover selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aigopt;
pub mod conefn;
pub mod constfold;
pub mod cutmap;
pub mod factor;
pub mod flow;
pub mod fsmreencode;
pub mod options;
pub mod resynth;
pub mod retime;
pub mod stateprop;
pub mod strash;
pub mod techmap;
pub mod timing;

pub use cutmap::cut_map;
pub use flow::{compile, CompileResult, PassStat};
pub use options::{FsmEncoding, Mapper, SynthOptions};
pub use timing::{sta, TimingReport};

/// Errors produced by the synthesis engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The input netlist is structurally invalid.
    InvalidNetlist(String),
    /// An FSM re-encoding was requested but the netlist does not have the
    /// required state/input/output separation within effort limits.
    FsmExtraction(String),
    /// `verify_each_pass` found a pass that changed observable behaviour
    /// (or could not run the check).
    PassVerification(String),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            SynthError::FsmExtraction(e) => write!(f, "fsm extraction failed: {e}"),
            SynthError::PassVerification(e) => write!(f, "pass verification failed: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}
