//! The `compile` flow: the pass pipeline a synthesis run executes.

use crate::options::SynthOptions;
use crate::timing::{sta, TimingReport};
use crate::SynthError;
use synthir_netlist::{AreaReport, Library, Netlist};
use synthir_rtl::elaborate::{Elaborated, FsmNets, NetGroupValues};

/// The output of a [`compile`] run.
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// The optimized, mapped netlist.
    pub netlist: Netlist,
    /// Area under the provided library.
    pub area: AreaReport,
    /// Static timing of the result.
    pub timing: TimingReport,
    /// Pass statistics (pass name, number of rewrites).
    pub stats: Vec<(&'static str, usize)>,
}

/// Compiles an elaborated module: the equivalent of a `compile` run of the
/// commercial tool the paper used, including its partial-evaluation
/// behaviour.
///
/// # Errors
///
/// Returns [`SynthError::InvalidNetlist`] if the input netlist is
/// malformed. FSM extraction failures are *not* errors: like the real tool,
/// the flow silently skips the pass (recorded in `stats`).
pub fn compile(
    elab: &Elaborated,
    lib: &Library,
    opts: &SynthOptions,
) -> Result<CompileResult, SynthError> {
    compile_netlist(
        elab.netlist.clone(),
        elab.fsm.as_ref(),
        &elab.annotations,
        lib,
        opts,
    )
}

/// Compiles a raw netlist with optional FSM metadata and annotations.
///
/// # Errors
///
/// Returns [`SynthError::InvalidNetlist`] if the input netlist is malformed.
pub fn compile_netlist(
    mut nl: Netlist,
    fsm: Option<&FsmNets>,
    annotations: &[NetGroupValues],
    lib: &Library,
    opts: &SynthOptions,
) -> Result<CompileResult, SynthError> {
    nl.validate()
        .map_err(|e| SynthError::InvalidNetlist(e.to_string()))?;
    let mut stats: Vec<(&'static str, usize)> = Vec::new();
    let mut verifier = PassVerifier::new(opts.verify_each_pass, &nl);

    // 1. Baseline cleanup: constant folding plus sharing.
    stats.push(("const_fold", crate::constfold::const_fold(&mut nl)));
    verifier.check(&nl, "const_fold")?;
    if opts.strash {
        stats.push(("strash", crate::strash::strash(&mut nl)));
        verifier.check(&nl, "strash")?;
    }

    // 2. FSM re-encoding (only with metadata, like the real tool).
    if opts.fsm_reencode {
        if let Some(fsm) = fsm {
            match crate::fsmreencode::fsm_reencode(&mut nl, fsm, opts) {
                Ok(true) => {
                    stats.push(("fsm_reencode", 1));
                    stats.push(("const_fold", crate::constfold::const_fold(&mut nl)));
                    verifier.check(&nl, "fsm_reencode")?;
                }
                Ok(false) => {}
                Err(SynthError::FsmExtraction(_)) => stats.push(("fsm_reencode_skipped", 1)),
                Err(e) => return Err(e),
            }
        }
    }

    // 3. Optional retiming (Fig. 8's "Retimed" variants): forward moves
    // flop banks past their downstream cones; backward moves them onto the
    // inputs of their driving cones. Both expose previously flop-separated
    // logic to combinational optimization.
    if opts.retime {
        let n = crate::retime::retime_forward(&mut nl, opts.collapse_support.max(16))
            + crate::retime::retime_backward(&mut nl, opts.collapse_support.max(16));
        stats.push(("retime", n));
        if n > 0 {
            stats.push(("const_fold", crate::constfold::const_fold(&mut nl)));
        }
        verifier.check(&nl, "retime")?;
    }

    // 4. State propagation and folding over annotated groups.
    if opts.state_propagation && !annotations.is_empty() {
        let n = crate::stateprop::state_propagate(&mut nl, annotations, opts.max_valueset);
        stats.push(("state_propagation", n));
        if n > 0 {
            stats.push(("const_fold", crate::constfold::const_fold(&mut nl)));
        }
        verifier.check(&nl, "state_propagation")?;
    }

    // 5. Collapse-and-re-cover resynthesis, then clean up again.
    stats.push(("resynthesize", crate::resynth::resynthesize(&mut nl, opts)));
    stats.push(("const_fold", crate::constfold::const_fold(&mut nl)));
    verifier.check(&nl, "resynthesize")?;
    if opts.strash {
        stats.push(("strash", crate::strash::strash(&mut nl)));
        verifier.check(&nl, "strash")?;
    }

    // 6. Technology mapping.
    if opts.techmap {
        stats.push(("techmap", crate::techmap::techmap(&mut nl)));
        verifier.check(&nl, "techmap")?;
    }
    nl.sweep();
    verifier.check(&nl, "sweep")?;
    nl.validate()
        .map_err(|e| SynthError::InvalidNetlist(e.to_string()))?;

    let area = nl.area_report(lib);
    let timing = sta(&nl, lib);
    Ok(CompileResult {
        netlist: nl,
        area,
        timing,
        stats,
    })
}

/// The `verify_each_pass` debug harness: holds the netlist as of the last
/// verified pass and SAT-checks each new snapshot against it.
///
/// Pure combinational designs use the miter check; anything with flops is
/// bounded-model-checked from reset. Both are exact within their scope, so
/// a pass that changes observable behaviour is caught with a concrete
/// counterexample in the error message.
struct PassVerifier {
    prev: Option<Netlist>,
}

impl PassVerifier {
    fn new(enabled: bool, nl: &Netlist) -> Self {
        PassVerifier {
            prev: enabled.then(|| nl.clone()),
        }
    }

    fn check(&mut self, nl: &Netlist, pass: &'static str) -> Result<(), SynthError> {
        let Some(prev) = &self.prev else {
            return Ok(());
        };
        use synthir_sim::{check_comb_equiv, check_seq_equiv, EquivEngine, EquivOptions};
        let mut eopts = EquivOptions::new();
        eopts.engine = EquivEngine::Sat;
        eopts.bmc_depth = 6;
        let res = if prev.flop_count() == 0 && nl.flop_count() == 0 {
            check_comb_equiv(prev, nl, &eopts)
        } else {
            check_seq_equiv(prev, nl, &eopts)
        }
        .map_err(|e| SynthError::PassVerification(format!("after `{pass}`: {e}")))?;
        match res {
            synthir_sim::EquivResult::Equivalent => {
                self.prev = Some(nl.clone());
                Ok(())
            }
            synthir_sim::EquivResult::Inequivalent(cex) => {
                Err(SynthError::PassVerification(format!(
                    "pass `{pass}` changed behaviour: output `{}` differs \
                     ({:#x} vs {:#x}) for inputs {:?}",
                    cex.output, cex.left, cex.right, cex.inputs
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_logic::TruthTable;
    use synthir_rtl::{elaborate, styles};

    fn random_tt(inputs: usize, seed: u64) -> TruthTable {
        TruthTable::from_fn(inputs, |m| {
            let h = (m as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed)
                .rotate_left(17)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            h >> 63 != 0
        })
    }

    /// The Fig. 5 claim in miniature: a table-based module and a direct SOP
    /// module for the same function compile to similar areas.
    #[test]
    fn table_matches_sop_after_compile() {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        for seed in 0..5u64 {
            let tts: Vec<TruthTable> = (0..4).map(|i| random_tt(5, seed * 16 + i)).collect();
            let covers: Vec<synthir_logic::Cover> = tts
                .iter()
                .map(|t| synthir_logic::espresso::minimize_tt(t, None))
                .collect();
            let words: Vec<u128> = (0..32)
                .map(|m| {
                    tts.iter()
                        .enumerate()
                        .fold(0u128, |acc, (i, t)| acc | (u128::from(t.eval(m)) << i))
                })
                .collect();
            let sop = styles::sop_module("sop", 5, &covers);
            let tab = styles::table_module("tab", 5, 4, &words);
            let r_sop = compile(&elaborate(&sop).unwrap(), &lib, &opts).unwrap();
            let r_tab = compile(&elaborate(&tab).unwrap(), &lib, &opts).unwrap();
            // Equivalent results...
            let res = synthir_sim::check_comb_equiv(
                &r_sop.netlist,
                &r_tab.netlist,
                &synthir_sim::EquivOptions::new(),
            )
            .unwrap();
            assert!(res.is_equivalent(), "seed {seed}: {res:?}");
            // ...with areas within 40% of each other.
            let a = r_sop.area.total();
            let b = r_tab.area.total();
            assert!(
                (a - b).abs() / a.max(b) < 0.4,
                "seed {seed}: sop {a:.1} vs table {b:.1}"
            );
        }
    }

    /// The partial-evaluation headline: the programmable table costs flops
    /// and read logic; the bound table costs neither.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn bound_table_removes_all_sequential_area() {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let words: Vec<u128> = (0..16).map(|m| (m as u128 * 7) & 0x7).collect();
        let full = styles::table_module_programmable("full", 4, 3);
        let auto = styles::table_module("auto", 4, 3, &words);
        let r_full = compile(&elaborate(&full).unwrap(), &lib, &opts).unwrap();
        let r_auto = compile(&elaborate(&auto).unwrap(), &lib, &opts).unwrap();
        assert!(r_full.area.sequential > 0.0);
        assert_eq!(r_auto.area.sequential, 0.0);
        assert!(r_auto.area.total() < 0.25 * r_full.area.total());
        // And the specialized design equals the programmed flexible one
        // (checked functionally on the combinational read path by binding
        // the config port): here we simply check the auto result against
        // the truth table directly.
        let sim = synthir_sim::CombSim::new(&r_auto.netlist).unwrap();
        let x = r_auto.netlist.input("x").unwrap().nets.clone();
        for m in 0..16usize {
            let sources: Vec<_> = x
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, if m >> i & 1 != 0 { u64::MAX } else { 0u64 }))
                .collect();
            let vals = sim.eval_with(&r_auto.netlist, &sources);
            let y = r_auto.netlist.output("y").unwrap().nets.clone();
            let mut got = 0u128;
            for (i, &n) in y.iter().enumerate() {
                if vals[n.index()] & 1 != 0 {
                    got |= 1 << i;
                }
            }
            assert_eq!(got, words[m], "minterm {m}");
        }
    }

    /// `verify_each_pass` SAT-checks every pass against its predecessor —
    /// on healthy passes the flow completes and the results are identical
    /// to an unverified run. Covers both the combinational miter (SOP
    /// module, no flops) and the sequential BMC (table FSM) checkers.
    #[test]
    fn verify_each_pass_accepts_healthy_flows() {
        let lib = Library::vt90();
        let verified = SynthOptions::default().with_verify_each_pass();
        assert!(verified.verify_each_pass);
        // Combinational: a direct SOP module.
        let tts: Vec<TruthTable> = (0..2).map(|i| random_tt(4, 99 + i)).collect();
        let covers: Vec<synthir_logic::Cover> = tts
            .iter()
            .map(|t| synthir_logic::espresso::minimize_tt(t, None))
            .collect();
        let sop = styles::sop_module("sop", 4, &covers);
        let elab = elaborate(&sop).unwrap();
        let r = compile(&elab, &lib, &verified).unwrap();
        let r0 = compile(&elab, &lib, &SynthOptions::default()).unwrap();
        assert_eq!(r.netlist.num_gates(), r0.netlist.num_gates());
        // Sequential: a bound table FSM (flops + reset).
        let words: Vec<u128> = (0..16).map(|m| (m as u128 * 5) & 0x7).collect();
        let tab = styles::table_module("tab", 4, 3, &words);
        let elab = elaborate(&tab).unwrap();
        let r = compile(&elab, &lib, &verified).unwrap();
        assert!(r.netlist.num_gates() > 0);
    }

    #[test]
    fn compile_reports_stats_and_timing() {
        let lib = Library::vt90();
        let words: Vec<u128> = (0..8).map(|m| m as u128 % 2).collect();
        let tab = styles::table_module("t", 3, 1, &words);
        let r = compile(&elaborate(&tab).unwrap(), &lib, &SynthOptions::default()).unwrap();
        assert!(!r.stats.is_empty());
        assert!(r.timing.critical_delay >= 0.0);
        assert!(r.timing.meets(5.0), "tiny logic must meet 5ns");
    }
}
