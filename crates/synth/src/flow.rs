//! The `compile` flow: the pass pipeline a synthesis run executes.

use crate::options::SynthOptions;
use crate::timing::{sta, TimingReport};
use crate::SynthError;
use std::time::{Duration, Instant};
use synthir_netlist::{AreaReport, Library, Netlist};
use synthir_rtl::elaborate::{Elaborated, FsmNets, NetGroupValues};

/// One pass's record in [`CompileResult::stats`]: what ran, how much it
/// changed, and what it cost.
#[derive(Clone, Debug)]
pub struct PassStat {
    /// Pass name (`aig_opt`, `const_fold`, `resynthesize`, …).
    pub name: &'static str,
    /// Number of rewrites/merges/folds the pass applied (pass-specific
    /// unit; 0 for a pass that ran but changed nothing).
    pub rewrites: usize,
    /// Live gate count entering the pass.
    pub gates_before: usize,
    /// Live gate count leaving the pass.
    pub gates_after: usize,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
}

/// The output of a [`compile`] run.
#[derive(Clone, Debug)]
pub struct CompileResult {
    /// The optimized, mapped netlist.
    pub netlist: Netlist,
    /// Area under the provided library.
    pub area: AreaReport,
    /// Static timing of the result.
    pub timing: TimingReport,
    /// Structured per-pass statistics, in execution order.
    pub stats: Vec<PassStat>,
}

/// Compiles an elaborated module: the equivalent of a `compile` run of the
/// commercial tool the paper used, including its partial-evaluation
/// behaviour.
///
/// # Errors
///
/// Returns [`SynthError::InvalidNetlist`] if the input netlist is
/// malformed. FSM extraction failures are *not* errors: like the real tool,
/// the flow silently skips the pass (recorded in `stats`).
pub fn compile(
    elab: &Elaborated,
    lib: &Library,
    opts: &SynthOptions,
) -> Result<CompileResult, SynthError> {
    compile_netlist(
        elab.netlist.clone(),
        elab.fsm.as_ref(),
        &elab.annotations,
        lib,
        opts,
    )
}

/// Records one pass into `stats`, timing it and sampling gate counts.
fn run_pass(
    stats: &mut Vec<PassStat>,
    nl: &mut Netlist,
    name: &'static str,
    f: impl FnOnce(&mut Netlist) -> usize,
) {
    let gates_before = nl.num_gates();
    let t0 = Instant::now();
    let rewrites = f(nl);
    stats.push(PassStat {
        name,
        rewrites,
        gates_before,
        gates_after: nl.num_gates(),
        elapsed: t0.elapsed(),
    });
}

/// Compiles a raw netlist with optional FSM metadata and annotations.
///
/// With [`SynthOptions::aig`] (the default) the front half of the flow
/// runs on the structurally-hashed And-Inverter Graph ([`crate::aigopt`]):
/// one graph-construction pass — with local rewriting and the optional SAT
/// sweep ([`SynthOptions::sat_sweep`]) — replaces the `const_fold` +
/// `strash` fixpoint loops before the netlist is handed to FSM
/// re-encoding, state propagation, resynthesis, and technology mapping;
/// the mapped netlist then gets one extra single-sweep
/// [`crate::strash::strash`] over the post-techmap gates. With `aig` off
/// the original pass order is preserved verbatim for A/B comparison.
///
/// # Errors
///
/// Returns [`SynthError::InvalidNetlist`] if the input netlist is malformed.
pub fn compile_netlist(
    mut nl: Netlist,
    fsm: Option<&FsmNets>,
    annotations: &[NetGroupValues],
    lib: &Library,
    opts: &SynthOptions,
) -> Result<CompileResult, SynthError> {
    nl.validate()
        .map_err(|e| SynthError::InvalidNetlist(e.to_string()))?;
    let mut stats: Vec<PassStat> = Vec::new();
    let mut verifier = PassVerifier::new(opts.verify_each_pass, &nl);
    // The AIG round-trips rebuild the netlist, so the metadata must follow
    // it through owned, remappable copies.
    let mut fsm: Option<FsmNets> = fsm.cloned();
    let mut annos: Vec<NetGroupValues> = annotations.to_vec();

    // 1. Baseline cleanup: constant folding plus sharing — one AIG pass,
    // or the original fixpoint pair.
    if opts.aig {
        run_pass(&mut stats, &mut nl, "aig_opt", |nl| {
            crate::aigopt::aig_optimize(nl, fsm.as_mut(), &mut annos, opts.sat_sweep)
        });
        verifier.check(&nl, "aig_opt")?;
    } else {
        run_pass(
            &mut stats,
            &mut nl,
            "const_fold",
            crate::constfold::const_fold,
        );
        verifier.check(&nl, "const_fold")?;
        if opts.strash {
            run_pass(&mut stats, &mut nl, "strash", crate::strash::strash);
            verifier.check(&nl, "strash")?;
        }
    }

    // 2. FSM re-encoding (only with metadata, like the real tool).
    if opts.fsm_reencode {
        if let Some(f) = fsm.as_ref() {
            let t0 = Instant::now();
            let gates_before = nl.num_gates();
            match crate::fsmreencode::fsm_reencode(&mut nl, f, opts) {
                Ok(true) => {
                    stats.push(PassStat {
                        name: "fsm_reencode",
                        rewrites: 1,
                        gates_before,
                        gates_after: nl.num_gates(),
                        elapsed: t0.elapsed(),
                    });
                    run_pass(
                        &mut stats,
                        &mut nl,
                        "const_fold",
                        crate::constfold::const_fold,
                    );
                    verifier.check(&nl, "fsm_reencode")?;
                }
                Ok(false) => {}
                Err(SynthError::FsmExtraction(_)) => stats.push(PassStat {
                    name: "fsm_reencode_skipped",
                    rewrites: 1,
                    gates_before,
                    gates_after: nl.num_gates(),
                    elapsed: t0.elapsed(),
                }),
                Err(e) => return Err(e),
            }
        }
    }

    // 3. Optional retiming (Fig. 8's "Retimed" variants): forward moves
    // flop banks past their downstream cones; backward moves them onto the
    // inputs of their driving cones. Both expose previously flop-separated
    // logic to combinational optimization.
    if opts.retime {
        let mut moved = 0;
        run_pass(&mut stats, &mut nl, "retime", |nl| {
            moved = crate::retime::retime_forward(nl, opts.collapse_support.max(16))
                + crate::retime::retime_backward(nl, opts.collapse_support.max(16));
            moved
        });
        if moved > 0 {
            run_pass(
                &mut stats,
                &mut nl,
                "const_fold",
                crate::constfold::const_fold,
            );
        }
        verifier.check(&nl, "retime")?;
    }

    // 4. State propagation and folding over annotated groups.
    if opts.state_propagation && !annos.is_empty() {
        let mut folded = 0;
        run_pass(&mut stats, &mut nl, "state_propagation", |nl| {
            folded = crate::stateprop::state_propagate(nl, &annos, opts.max_valueset);
            folded
        });
        if folded > 0 {
            run_pass(
                &mut stats,
                &mut nl,
                "const_fold",
                crate::constfold::const_fold,
            );
        }
        verifier.check(&nl, "state_propagation")?;
    }

    // 5. Collapse-and-re-cover resynthesis, then clean up again. The
    // cleanup stays on the flat netlist even in AIG mode: resynthesis
    // emits the n-ary And/Or structure technology mapping patterns
    // against, and an AIG round-trip here would re-decompose it to
    // 2-input form right before mapping.
    run_pass(&mut stats, &mut nl, "resynthesize", |nl| {
        crate::resynth::resynthesize(nl, opts)
    });
    run_pass(
        &mut stats,
        &mut nl,
        "const_fold",
        crate::constfold::const_fold,
    );
    verifier.check(&nl, "resynthesize")?;
    if opts.strash {
        run_pass(&mut stats, &mut nl, "strash", crate::strash::strash);
        verifier.check(&nl, "strash")?;
    }

    // 6. Technology mapping. The rule mapper rewrites the flat netlist in
    // place (then shares over the *mapped* gates — AOI conversion can
    // duplicate cells the pre-map passes never saw); the cut mapper
    // re-imports the netlist into the AIG and emits the mapped netlist
    // directly from its chosen cuts, so no post-map strash is needed
    // (the AIG is already structurally hashed and cells are emitted
    // at most once per node).
    if opts.techmap {
        match opts.mapper {
            crate::options::Mapper::Rules => {
                run_pass(&mut stats, &mut nl, "techmap", |nl| {
                    crate::techmap::techmap(nl)
                });
                verifier.check(&nl, "techmap")?;
                if opts.aig && opts.strash {
                    run_pass(&mut stats, &mut nl, "strash_mapped", crate::strash::strash);
                    verifier.check(&nl, "strash_mapped")?;
                }
            }
            crate::options::Mapper::Cuts => {
                run_pass(&mut stats, &mut nl, "cutmap", |nl| {
                    crate::cutmap::cut_map(nl, lib)
                });
                verifier.check(&nl, "cutmap")?;
            }
        }
    }
    nl.sweep();
    verifier.check(&nl, "sweep")?;
    nl.validate()
        .map_err(|e| SynthError::InvalidNetlist(e.to_string()))?;

    let area = nl.area_report(lib);
    let timing = sta(&nl, lib);
    Ok(CompileResult {
        netlist: nl,
        area,
        timing,
        stats,
    })
}

/// The `verify_each_pass` debug harness: holds the netlist as of the last
/// verified pass and SAT-checks each new snapshot against it.
///
/// Pure combinational designs use the miter check; anything with flops is
/// bounded-model-checked from reset. Both are exact within their scope, so
/// a pass that changes observable behaviour is caught with a concrete
/// counterexample in the error message.
struct PassVerifier {
    prev: Option<Netlist>,
}

impl PassVerifier {
    fn new(enabled: bool, nl: &Netlist) -> Self {
        PassVerifier {
            prev: enabled.then(|| nl.clone()),
        }
    }

    fn check(&mut self, nl: &Netlist, pass: &'static str) -> Result<(), SynthError> {
        let Some(prev) = &self.prev else {
            return Ok(());
        };
        use synthir_sim::{check_comb_equiv, check_seq_equiv, EquivEngine, EquivOptions};
        let mut eopts = EquivOptions::new();
        eopts.engine = EquivEngine::Sat;
        eopts.bmc_depth = 6;
        let res = if prev.flop_count() == 0 && nl.flop_count() == 0 {
            check_comb_equiv(prev, nl, &eopts)
        } else {
            check_seq_equiv(prev, nl, &eopts)
        }
        .map_err(|e| SynthError::PassVerification(format!("after `{pass}`: {e}")))?;
        match res {
            synthir_sim::EquivResult::Equivalent => {
                self.prev = Some(nl.clone());
                Ok(())
            }
            synthir_sim::EquivResult::Inequivalent(cex) => {
                Err(SynthError::PassVerification(format!(
                    "pass `{pass}` changed behaviour: output `{}` differs \
                     ({:#x} vs {:#x}) for inputs {:?}",
                    cex.output, cex.left, cex.right, cex.inputs
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_logic::TruthTable;
    use synthir_rtl::{elaborate, styles};

    fn random_tt(inputs: usize, seed: u64) -> TruthTable {
        TruthTable::from_fn(inputs, |m| {
            let h = (m as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ seed)
                .rotate_left(17)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            h >> 63 != 0
        })
    }

    /// The Fig. 5 claim in miniature: a table-based module and a direct SOP
    /// module for the same function compile to similar areas.
    #[test]
    fn table_matches_sop_after_compile() {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        for seed in 0..5u64 {
            let tts: Vec<TruthTable> = (0..4).map(|i| random_tt(5, seed * 16 + i)).collect();
            let covers: Vec<synthir_logic::Cover> = tts
                .iter()
                .map(|t| synthir_logic::espresso::minimize_tt(t, None))
                .collect();
            let words: Vec<u128> = (0..32)
                .map(|m| {
                    tts.iter()
                        .enumerate()
                        .fold(0u128, |acc, (i, t)| acc | (u128::from(t.eval(m)) << i))
                })
                .collect();
            let sop = styles::sop_module("sop", 5, &covers);
            let tab = styles::table_module("tab", 5, 4, &words);
            let r_sop = compile(&elaborate(&sop).unwrap(), &lib, &opts).unwrap();
            let r_tab = compile(&elaborate(&tab).unwrap(), &lib, &opts).unwrap();
            // Equivalent results...
            let res = synthir_sim::check_comb_equiv(
                &r_sop.netlist,
                &r_tab.netlist,
                &synthir_sim::EquivOptions::new(),
            )
            .unwrap();
            assert!(res.is_equivalent(), "seed {seed}: {res:?}");
            // ...with areas within 40% of each other.
            let a = r_sop.area.total();
            let b = r_tab.area.total();
            assert!(
                (a - b).abs() / a.max(b) < 0.4,
                "seed {seed}: sop {a:.1} vs table {b:.1}"
            );
        }
    }

    /// The partial-evaluation headline: the programmable table costs flops
    /// and read logic; the bound table costs neither.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn bound_table_removes_all_sequential_area() {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let words: Vec<u128> = (0..16).map(|m| (m as u128 * 7) & 0x7).collect();
        let full = styles::table_module_programmable("full", 4, 3);
        let auto = styles::table_module("auto", 4, 3, &words);
        let r_full = compile(&elaborate(&full).unwrap(), &lib, &opts).unwrap();
        let r_auto = compile(&elaborate(&auto).unwrap(), &lib, &opts).unwrap();
        assert!(r_full.area.sequential > 0.0);
        assert_eq!(r_auto.area.sequential, 0.0);
        assert!(r_auto.area.total() < 0.25 * r_full.area.total());
        // And the specialized design equals the programmed flexible one
        // (checked functionally on the combinational read path by binding
        // the config port): here we simply check the auto result against
        // the truth table directly.
        let sim = synthir_sim::CombSim::new(&r_auto.netlist).unwrap();
        let x = r_auto.netlist.input("x").unwrap().nets.clone();
        for m in 0..16usize {
            let sources: Vec<_> = x
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, if m >> i & 1 != 0 { u64::MAX } else { 0u64 }))
                .collect();
            let vals = sim.eval_with(&r_auto.netlist, &sources);
            let y = r_auto.netlist.output("y").unwrap().nets.clone();
            let mut got = 0u128;
            for (i, &n) in y.iter().enumerate() {
                if vals[n.index()] & 1 != 0 {
                    got |= 1 << i;
                }
            }
            assert_eq!(got, words[m], "minterm {m}");
        }
    }

    /// `verify_each_pass` SAT-checks every pass against its predecessor —
    /// on healthy passes the flow completes and the results are identical
    /// to an unverified run. Covers both the combinational miter (SOP
    /// module, no flops) and the sequential BMC (table FSM) checkers, in
    /// both the AIG and the original pipelines.
    #[test]
    fn verify_each_pass_accepts_healthy_flows() {
        let lib = Library::vt90();
        for base in [
            SynthOptions::default(),
            SynthOptions::default().without_aig(),
        ] {
            let verified = base.clone().with_verify_each_pass();
            assert!(verified.verify_each_pass);
            // Combinational: a direct SOP module.
            let tts: Vec<TruthTable> = (0..2).map(|i| random_tt(4, 99 + i)).collect();
            let covers: Vec<synthir_logic::Cover> = tts
                .iter()
                .map(|t| synthir_logic::espresso::minimize_tt(t, None))
                .collect();
            let sop = styles::sop_module("sop", 4, &covers);
            let elab = elaborate(&sop).unwrap();
            let r = compile(&elab, &lib, &verified).unwrap();
            let r0 = compile(&elab, &lib, &base).unwrap();
            assert_eq!(r.netlist.num_gates(), r0.netlist.num_gates());
            // Sequential: a bound table FSM (flops + reset).
            let words: Vec<u128> = (0..16).map(|m| (m as u128 * 5) & 0x7).collect();
            let tab = styles::table_module("tab", 4, 3, &words);
            let elab = elaborate(&tab).unwrap();
            let r = compile(&elab, &lib, &verified).unwrap();
            assert!(r.netlist.num_gates() > 0);
        }
    }

    /// The AIG pipeline with SAT sweeping stays verified too.
    #[test]
    fn verify_each_pass_accepts_sat_sweeping() {
        let lib = Library::vt90();
        let opts = SynthOptions::default()
            .with_sat_sweep()
            .with_verify_each_pass();
        let words: Vec<u128> = (0..32).map(|m| (m as u128 * 11) & 0xF).collect();
        let tab = styles::table_module("tab", 5, 4, &words);
        let r = compile(&elaborate(&tab).unwrap(), &lib, &opts).unwrap();
        assert!(r.netlist.num_gates() > 0);
        assert!(r.stats.iter().any(|s| s.name == "aig_opt"));
    }

    /// The AIG pipeline must match the original pipeline functionally and
    /// never lose area on the flow's own workloads.
    #[test]
    fn aig_pipeline_matches_seed_pipeline() {
        let lib = Library::vt90();
        let aig_opts = SynthOptions::default();
        let seed_opts = SynthOptions::default().without_aig();
        for seed in 0..4u64 {
            let words: Vec<u128> = (0..32)
                .map(|m| ((m as u128).wrapping_mul(37 + seed as u128)) & 0x1F)
                .collect();
            let tab = styles::table_module("tab", 5, 5, &words);
            let elab = elaborate(&tab).unwrap();
            let r_aig = compile(&elab, &lib, &aig_opts).unwrap();
            let r_seed = compile(&elab, &lib, &seed_opts).unwrap();
            let mut eopts = synthir_sim::EquivOptions::new();
            eopts.engine = synthir_sim::EquivEngine::Sat;
            let res =
                synthir_sim::check_seq_equiv(&r_aig.netlist, &r_seed.netlist, &eopts).unwrap();
            assert!(res.is_equivalent(), "seed {seed}");
            assert!(
                r_aig.area.total() <= r_seed.area.total() * 1.001,
                "seed {seed}: aig {:.1} µm² vs seed pipeline {:.1} µm²",
                r_aig.area.total(),
                r_seed.area.total()
            );
        }
    }

    #[test]
    fn compile_reports_stats_and_timing() {
        let lib = Library::vt90();
        let words: Vec<u128> = (0..8).map(|m| m as u128 % 2).collect();
        let tab = styles::table_module("t", 3, 1, &words);
        let r = compile(&elaborate(&tab).unwrap(), &lib, &SynthOptions::default()).unwrap();
        assert!(!r.stats.is_empty());
        let s = &r.stats[0];
        assert_eq!(s.name, "aig_opt");
        assert!(s.gates_before >= s.gates_after);
        assert!(r.timing.critical_delay >= 0.0);
        assert!(r.timing.meets(5.0), "tiny logic must meet 5ns");
    }
}
