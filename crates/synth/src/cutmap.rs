//! Cut-based technology mapping on the AIG
//! (`SynthOptions::mapper = Mapper::Cuts`, CLI `--mapper cuts`).
//!
//! Where the rule mapper ([`crate::techmap`]) pattern-matches the flat
//! netlist locally, this pass maps the design *globally* from its
//! And-Inverter Graph:
//!
//! 1. **Cut enumeration** — every AND node gets a bounded set of
//!    k-feasible priority cuts (k ≤ 4) with per-cut truth tables
//!    ([`synthir_aig::cuts`]);
//! 2. **NPN matching** — each cut function is canonicalized
//!    ([`synthir_aig::npn`]) and looked up in an NPN-indexed view of the
//!    [`Library`]'s cell metadata ([`NpnIndex`]); a hit yields the cell
//!    plus the exact pin permutation/polarities realizing the cut;
//! 3. **Cover selection** — a depth-oriented first pass (min arrival
//!    under the library's per-cell delays), then area-flow and
//!    exact-local-area recovery passes choose one cut per needed node;
//! 4. **Emission** — the mapped [`Netlist`] is built directly from the
//!    chosen cuts (ports, flop semantics, and polarity-memoized inverters
//!    preserved), replacing the export → rule-rewrite detour.
//!
//! Because cut truth tables are contextually sound (reconvergent
//! sub-cones bake in circuit-level don't-cares — see
//! [`synthir_aig::cuts`]), the mapped netlist is functionally equivalent
//! to the input by construction; `SynthOptions::verify_each_pass` and the
//! benchmark cross-proofs check it with the SAT/BDD engines anyway.

use synthir_aig::cuts::{enumerate_cuts, Cut};
use synthir_aig::npn::{canonicalize, NpnTransform};
use synthir_aig::{from_netlist, Aig, AigLit, AigNode, FxMap};
use synthir_netlist::{CellSpec, GateKind, Library, NetId, Netlist, ResetKind};

/// Cut width. The library has no cell wider than 4 data pins, which is
/// also [`synthir_aig::cuts::MAX_K`].
const K: usize = 4;
/// Priority-cut bound per node.
const MAX_CUTS: usize = 8;

/// An NPN-indexed view of a [`Library`]'s combinational cell metadata:
/// canonical truth-table class → the cells realizing it, cheapest first.
///
/// # Examples
///
/// ```
/// use synthir_netlist::{GateKind, Library};
/// use synthir_synth::cutmap::NpnIndex;
///
/// let idx = NpnIndex::build(&Library::vt90());
/// // All eight ±(±a · ±b) functions hit the AND2 class; the cheapest
/// // realization is the NAND2 cell.
/// let m = idx.matches(0b1000, 2).expect("AND2 class indexed");
/// assert_eq!(m[0].kind, GateKind::Nand2);
/// // XOR has its own class.
/// assert!(idx.matches(0b0110, 2).is_some());
/// // 3-input XOR matches no single cell.
/// assert!(idx.matches(0b1001_0110, 3).is_none());
/// ```
pub struct NpnIndex {
    classes: FxMap<(u8, u16), Vec<CellMatch>>,
}

/// One library cell in an NPN class.
#[derive(Clone, Copy, Debug)]
pub struct CellMatch {
    /// The cell kind.
    pub kind: GateKind,
    /// The cell's area/delay metadata row.
    pub spec: CellSpec,
    /// Transform mapping the cell's pin function onto the class canon.
    to_canon: NpnTransform,
}

impl NpnIndex {
    /// Builds the index from a library's cell metadata table. Cells with
    /// 2–4 data pins participate; `Buf`/`Inv` are handled as aliases and
    /// constants as tie cells, so they are not indexed.
    pub fn build(lib: &Library) -> NpnIndex {
        let mut classes: FxMap<(u8, u16), Vec<CellMatch>> = FxMap::default();
        for (kind, spec) in lib.combinational_cells() {
            let n = kind.arity();
            if !(2..=K).contains(&n) {
                continue;
            }
            let (canon, s) = canonicalize(kind.truth_table(), n);
            classes
                .entry((n as u8, canon))
                .or_default()
                .push(CellMatch {
                    kind: *kind,
                    spec: *spec,
                    to_canon: s,
                });
        }
        for v in classes.values_mut() {
            v.sort_by(|a, b| {
                (a.spec.area, a.spec.delay)
                    .partial_cmp(&(b.spec.area, b.spec.delay))
                    .expect("finite costs")
            });
        }
        NpnIndex { classes }
    }

    /// The cells whose NPN class contains the `n`-variable function `tt`
    /// (cheapest area first), or `None` when no single cell realizes it.
    pub fn matches(&self, tt: u16, n: usize) -> Option<&[CellMatch]> {
        let (canon, _) = canonicalize(tt, n);
        self.classes
            .get(&(n as u8, canon))
            .map(|v: &Vec<CellMatch>| v.as_slice())
    }
}

/// How a node's chosen cut is realized in cells.
#[derive(Clone, Copy, Debug)]
enum Real {
    /// The node function is constant in context: a tie cell.
    Constant(bool),
    /// The node function equals (the complement of) a single leaf: no
    /// gate, just net sharing (plus a memoized inverter when `neg`).
    Alias {
        /// The leaf node aliased to.
        leaf: u32,
        /// Whether the node is the leaf's complement.
        neg: bool,
    },
    /// A library cell over the cut's leaves.
    Cell {
        kind: GateKind,
        spec: CellSpec,
        /// `pins[j]` = (index into the cut's leaves, complemented) for
        /// pin `j` of the cell.
        pins: [(u8, bool); K],
        arity: u8,
        /// The cell computes the *complement* of the node function.
        out_neg: bool,
    },
}

/// One mapping candidate: a cut plus a realization.
#[derive(Clone, Copy, Debug)]
struct Cand {
    cut: u16,
    real: Real,
}

impl Cand {
    fn area(&self) -> f64 {
        match self.real {
            Real::Cell { spec, .. } => spec.area,
            _ => 0.0,
        }
    }

    fn delay(&self) -> f64 {
        match self.real {
            Real::Cell { spec, .. } => spec.delay,
            _ => 0.0,
        }
    }
}

/// The result of mapping an AIG.
struct Mapped {
    netlist: Netlist,
    cells: usize,
}

/// Per-node use counts of each polarity in a cover.
#[derive(Clone, Copy, Default)]
struct Uses {
    plain: u32,
    compl: u32,
}

impl Uses {
    fn total(self) -> u32 {
        self.plain + self.compl
    }
}

/// The flow-facing entry point: maps `nl` with the cut-based mapper,
/// replacing it by the netlist emitted from the chosen cuts. Returns the
/// number of combinational cells emitted — matched cells, polarity
/// fix-up inverters, and tie cells included (the pass's `rewrites`
/// statistic).
///
/// A netlist whose combinational part is cyclic cannot be imported into
/// the AIG: `cut_map` then leaves `nl` untouched and returns `0` (the
/// synthesis flow validates acyclicity before any pass runs, so this
/// only concerns direct callers — validate first to distinguish "cyclic,
/// skipped" from "mapped, zero cells emitted").
pub fn cut_map(nl: &mut Netlist, lib: &Library) -> usize {
    let Ok(imp) = from_netlist(nl) else {
        // Cyclic netlists are rejected by `compile` validation up front;
        // leave the netlist untouched.
        return 0;
    };
    let mapped = map_aig(&imp.aig, lib);
    *nl = mapped.netlist;
    mapped.cells
}

/// Maps an AIG to a netlist of library cells via cut matching and
/// three-phase cover selection.
fn map_aig(aig: &Aig, lib: &Library) -> Mapped {
    let index = NpnIndex::build(lib);
    let inv = lib.cell(GateKind::Inv);
    let n_nodes = aig.node_count();
    let live = aig.live_marks(&[]);
    let cuts = enumerate_cuts(aig, K, MAX_CUTS);
    let cands = candidates(aig, &cuts, &index);

    // Structural polarity/fanout estimates seed the first pass.
    let structural = structural_uses(aig, &live);

    // Pass 1: depth-oriented. Passes 2..: area recovery with real cover
    // references from the previous pass's extraction.
    let mut choice = select(aig, &cuts, &cands, &inv, Mode::Depth, &structural, None);
    for _ in 0..2 {
        let cover = extract(aig, &cuts, &cands, &choice, &live);
        choice = select(
            aig,
            &cuts,
            &cands,
            &inv,
            Mode::Area,
            &structural,
            Some(&cover),
        );
    }
    // Exact-local-area refinement on the final cover.
    let cover = extract(aig, &cuts, &cands, &choice, &live);
    exact_local_area(aig, &cuts, &cands, &mut choice, cover, &live, &inv);

    let cover = extract(aig, &cuts, &cands, &choice, &live);
    emit(aig, &cuts, &cands, &choice, &cover, &live, n_nodes)
}

/// Builds the candidate realizations of every AND node.
fn candidates(aig: &Aig, cuts: &[Vec<Cut>], index: &NpnIndex) -> Vec<Vec<Cand>> {
    let mut canon_memo: FxMap<(u8, u16), (u16, NpnTransform)> = FxMap::default();
    let mut all: Vec<Vec<Cand>> = Vec::with_capacity(aig.node_count());
    for (i, node) in aig.nodes().iter().enumerate() {
        let mut list: Vec<Cand> = Vec::new();
        if matches!(node, AigNode::And(..)) {
            for (ci, cut) in cuts[i].iter().enumerate() {
                if cut.leaves() == [i as u32] {
                    continue; // the trivial cut cannot implement its own node
                }
                let ci16 = ci as u16;
                match cut.len() {
                    0 => list.push(Cand {
                        cut: ci16,
                        real: Real::Constant(cut.tt & 1 == 1),
                    }),
                    1 => list.push(Cand {
                        cut: ci16,
                        real: Real::Alias {
                            leaf: cut.leaves()[0],
                            neg: cut.tt == 0b01,
                        },
                    }),
                    n => {
                        let (canon, t) = *canon_memo
                            .entry((n as u8, cut.tt))
                            .or_insert_with(|| canonicalize(cut.tt, n));
                        let Some(matches) = index.classes.get(&(n as u8, canon)) else {
                            continue;
                        };
                        let ti = t.inverse(n);
                        for m in matches {
                            // f = (t⁻¹ ∘ s)·g: cut function f in terms of
                            // the cell function g.
                            let u = ti.compose(&m.to_canon, n);
                            let mut pins = [(0u8, false); K];
                            for v in 0..n {
                                pins[u.perm[v] as usize] = (v as u8, u.flips >> v & 1 != 0);
                            }
                            list.push(Cand {
                                cut: ci16,
                                real: Real::Cell {
                                    kind: m.kind,
                                    spec: m.spec,
                                    pins,
                                    arity: n as u8,
                                    out_neg: u.negate,
                                },
                            });
                        }
                    }
                }
            }
            debug_assert!(!list.is_empty(), "every AND node has a matchable cut");
        }
        all.push(list);
    }
    all
}

/// Structural (AIG-edge) polarity use counts — the seed estimate before
/// any cover exists.
fn structural_uses(aig: &Aig, live: &[bool]) -> Vec<Uses> {
    let mut uses = vec![Uses::default(); aig.node_count()];
    let mut count = |l: AigLit| {
        let u = &mut uses[l.node() as usize];
        if l.is_complemented() {
            u.compl += 1;
        } else {
            u.plain += 1;
        }
    };
    for (i, n) in aig.nodes().iter().enumerate() {
        if let AigNode::And(a, b) = *n {
            if live[i] {
                count(a);
                count(b);
            }
        }
    }
    for l in aig.latches() {
        if live[l.output as usize] {
            count(l.next);
            count(l.reset_lit);
        }
    }
    for p in aig.output_ports() {
        for &l in &p.lits {
            count(l);
        }
    }
    uses
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Depth,
    Area,
}

/// One cover from a choice vector: which nodes are needed, and how often
/// each polarity of each node is read.
struct Cover {
    uses: Vec<Uses>,
}

/// The leaves a candidate's realization reads, as (leaf, complemented).
fn cand_leaves(cut: &Cut, cand: &Cand) -> Vec<(u32, bool)> {
    match cand.real {
        Real::Constant(_) => Vec::new(),
        Real::Alias { leaf, neg } => vec![(leaf, neg)],
        Real::Cell { pins, arity, .. } => (0..arity as usize)
            .map(|j| {
                let (li, neg) = pins[j];
                (cut.leaves()[li as usize], neg)
            })
            .collect(),
    }
}

/// Selects one candidate per AND node in topological order.
///
/// Depth mode minimizes arrival (cell delays plus inverter fix-ups);
/// area mode minimizes area flow — candidate area divided by the node's
/// reference count from the previous cover, so shared logic looks cheap
/// and single-use logic pays full price. Inverter costs are charged when
/// a pin needs the polarity its leaf does not physically produce (the
/// producing phase is known for already-chosen leaves in the same pass).
fn select(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    cands: &[Vec<Cand>],
    inv: &CellSpec,
    mode: Mode,
    structural: &[Uses],
    prev: Option<&Cover>,
) -> Vec<usize> {
    let n_nodes = aig.node_count();
    let mut choice = vec![0usize; n_nodes];
    let mut arrival = vec![0.0f64; n_nodes];
    let mut flow = vec![0.0f64; n_nodes];
    let mut produced_compl = vec![false; n_nodes];
    let refs_of = |n: usize| -> f64 {
        let u = match prev {
            Some(c) if c.uses[n].total() > 0 => c.uses[n],
            _ => structural[n],
        };
        f64::from(u.total().max(1))
    };
    let needs = |n: usize| -> Uses {
        match prev {
            Some(c) if c.uses[n].total() > 0 => c.uses[n],
            _ => structural[n],
        }
    };
    for i in 0..n_nodes {
        if !matches!(aig.nodes()[i], AigNode::And(..)) {
            continue;
        }
        let mut best: Option<(f64, f64, usize)> = None;
        for (k, cand) in cands[i].iter().enumerate() {
            let mut arr = 0.0f64;
            let mut in_cost = 0.0f64;
            for (leaf, neg) in cand_leaves(&cuts[i][cand.cut as usize], cand) {
                let l = leaf as usize;
                let mismatch = neg != produced_compl[l];
                arr = arr.max(arrival[l] + if mismatch { inv.delay } else { 0.0 });
                in_cost += flow[l] + if mismatch { inv.area } else { 0.0 };
            }
            arr += cand.delay();
            // Output-polarity fix-up: consumers that need the phase the
            // candidate does not physically produce pay one inverter
            // (aliases produce whatever their leaf's net carries; both
            // tie-cell polarities are free).
            let out_pen = match cand.real {
                Real::Constant(_) => 0.0,
                _ => {
                    let produced = match cand.real {
                        Real::Cell { out_neg, .. } => out_neg,
                        Real::Alias { leaf, neg } => produced_compl[leaf as usize] ^ neg,
                        Real::Constant(_) => unreachable!(),
                    };
                    let u = needs(i);
                    let both = u.plain > 0 && u.compl > 0;
                    let wanted_compl = u.compl > 0 && u.plain == 0;
                    if both || (wanted_compl != produced && u.total() > 0) {
                        inv.area
                    } else {
                        0.0
                    }
                }
            };
            let af = (cand.area() + out_pen + in_cost) / refs_of(i);
            let key = match mode {
                Mode::Depth => (arr, af),
                Mode::Area => (af, arr),
            };
            if best.is_none_or(|(k0, k1, _)| key < (k0, k1)) {
                best = Some((key.0, key.1, k));
            }
        }
        let (_, _, k) = best.expect("every AND node has a candidate");
        choice[i] = k;
        let cand = &cands[i][k];
        let leaves = cand_leaves(&cuts[i][cand.cut as usize], cand);
        arrival[i] = leaves
            .iter()
            .map(|&(l, neg)| {
                arrival[l as usize]
                    + if neg != produced_compl[l as usize] {
                        inv.delay
                    } else {
                        0.0
                    }
            })
            .fold(0.0, f64::max)
            + cand.delay();
        flow[i] =
            (cand.area() + leaves.iter().map(|&(l, _)| flow[l as usize]).sum::<f64>()) / refs_of(i);
        produced_compl[i] = match cand.real {
            Real::Cell { out_neg, .. } => out_neg,
            Real::Alias { leaf, neg } => produced_compl[leaf as usize] ^ neg,
            Real::Constant(_) => false,
        };
    }
    choice
}

/// Extracts the cover of a choice vector: walks the required-node set
/// from the roots (output ports plus live-latch next/reset cones) and
/// counts polarity uses, resolving aliases onto their leaves.
fn extract(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    cands: &[Vec<Cand>],
    choice: &[usize],
    live: &[bool],
) -> Cover {
    let mut uses = vec![Uses::default(); aig.node_count()];
    let add = |uses: &mut Vec<Uses>, l: AigLit| {
        let u = &mut uses[l.node() as usize];
        if l.is_complemented() {
            u.compl += 1;
        } else {
            u.plain += 1;
        }
    };
    for p in aig.output_ports() {
        for &l in &p.lits {
            add(&mut uses, l);
        }
    }
    for lat in aig.latches() {
        if live[lat.output as usize] {
            add(&mut uses, lat.next);
            add(&mut uses, lat.reset_lit);
        }
    }
    // Reverse topological: by the time a node is processed, all its
    // consumers have recorded their uses.
    for i in (0..aig.node_count()).rev() {
        if uses[i].total() == 0 || !matches!(aig.nodes()[i], AigNode::And(..)) {
            continue;
        }
        let cand = &cands[i][choice[i]];
        match cand.real {
            Real::Constant(_) => {}
            Real::Alias { leaf, neg } => {
                // Reading this node's plain function is reading
                // leaf ^ neg; forward both phase counts.
                let (p, c) = (uses[i].plain, uses[i].compl);
                let u = &mut uses[leaf as usize];
                if neg {
                    u.compl += p;
                    u.plain += c;
                } else {
                    u.plain += p;
                    u.compl += c;
                }
            }
            Real::Cell { .. } => {
                for (leaf, neg) in cand_leaves(&cuts[i][cand.cut as usize], cand) {
                    add(&mut uses, AigLit::new(leaf, neg));
                }
            }
        }
    }
    Cover { uses }
}

/// Exact-local-area refinement: for each covered node (topological
/// order), re-choose the candidate whose *incremental* area — cell area,
/// polarity fix-up inverters, plus the exact area of leaves not otherwise
/// referenced — is smallest, maintaining cover reference counts by
/// recursive ref/deref.
fn exact_local_area(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    cands: &[Vec<Cand>],
    choice: &mut [usize],
    cover: Cover,
    live: &[bool],
    inv: &CellSpec,
) {
    let is_and = |n: u32| matches!(aig.nodes()[n as usize], AigNode::And(..));
    // Reference counts in the same convention `ref_cand`/`deref_cand`
    // maintain: one count per consumer *pin* (an alias is one pin on its
    // leaf) plus one per root read — NOT `cover.uses` totals, which
    // forward an alias's whole consumer count onto its leaf and would
    // leave leaf refs permanently high once consumers are re-chosen.
    let mut refs: Vec<u32> = vec![0; aig.node_count()];
    for p in aig.output_ports() {
        for &l in &p.lits {
            refs[l.node() as usize] += 1;
        }
    }
    for lat in aig.latches() {
        if live[lat.output as usize] {
            refs[lat.next.node() as usize] += 1;
            refs[lat.reset_lit.node() as usize] += 1;
        }
    }
    for i in (0..aig.node_count()).rev() {
        if refs[i] > 0 && is_and(i as u32) {
            let cand = &cands[i][choice[i]];
            for (leaf, _) in cand_leaves(&cuts[i][cand.cut as usize], cand) {
                refs[leaf as usize] += 1;
            }
        }
    }
    // The physically produced polarity of every node under the current
    // choices (leaves precede their consumers, so entries below `i` are
    // final by the time node `i` is scored; they are updated on commit).
    let mut produced_compl = vec![false; aig.node_count()];
    let produced_of = |produced_compl: &[bool], cand: &Cand| match cand.real {
        Real::Cell { out_neg, .. } => out_neg,
        Real::Alias { leaf, neg } => produced_compl[leaf as usize] ^ neg,
        Real::Constant(_) => false,
    };
    for i in 0..aig.node_count() {
        if is_and(i as u32) {
            produced_compl[i] = produced_of(&produced_compl, &cands[i][choice[i]]);
        }
    }
    // Inverters needed to fix a candidate's pin polarities and its output
    // polarity against what the node's consumers read. Conservative (no
    // sharing assumed), like the selection passes.
    let inv_fixups = |i: usize, cand: &Cand, produced_compl: &[bool]| -> f64 {
        let mut pen = 0.0;
        for (leaf, neg) in cand_leaves(&cuts[i][cand.cut as usize], cand) {
            if neg != produced_compl[leaf as usize] {
                pen += inv.area;
            }
        }
        let u = cover.uses[i];
        // Same produced-phase rule as the selection passes: aliases carry
        // their leaf's physical polarity, tie cells are free both ways.
        match cand.real {
            Real::Constant(_) => {}
            _ => {
                let produced = match cand.real {
                    Real::Cell { out_neg, .. } => out_neg,
                    Real::Alias { leaf, neg } => produced_compl[leaf as usize] ^ neg,
                    Real::Constant(_) => unreachable!(),
                };
                let both = u.plain > 0 && u.compl > 0;
                let wanted_compl = u.compl > 0 && u.plain == 0;
                if both || (wanted_compl != produced && u.total() > 0) {
                    pen += inv.area;
                }
            }
        }
        pen
    };

    /// Increments references of a candidate's leaves, materializing
    /// newly-needed sub-covers; returns the area added.
    fn ref_cand(
        n: usize,
        cand: &Cand,
        cuts: &[Vec<Cut>],
        cands: &[Vec<Cand>],
        choice: &[usize],
        refs: &mut [u32],
        is_and: &dyn Fn(u32) -> bool,
    ) -> f64 {
        let mut area = cand.area();
        for (leaf, _) in cand_leaves(&cuts[n][cand.cut as usize], cand) {
            if refs[leaf as usize] == 0 && is_and(leaf) {
                let lc = &cands[leaf as usize][choice[leaf as usize]];
                area += ref_cand(leaf as usize, lc, cuts, cands, choice, refs, is_and);
            }
            refs[leaf as usize] += 1;
        }
        area
    }

    /// The inverse of [`ref_cand`]; returns the area freed.
    fn deref_cand(
        n: usize,
        cand: &Cand,
        cuts: &[Vec<Cut>],
        cands: &[Vec<Cand>],
        choice: &[usize],
        refs: &mut [u32],
        is_and: &dyn Fn(u32) -> bool,
    ) -> f64 {
        let mut area = cand.area();
        for (leaf, _) in cand_leaves(&cuts[n][cand.cut as usize], cand) {
            refs[leaf as usize] -= 1;
            if refs[leaf as usize] == 0 && is_and(leaf) {
                let lc = &cands[leaf as usize][choice[leaf as usize]];
                area += deref_cand(leaf as usize, lc, cuts, cands, choice, refs, is_and);
            }
        }
        area
    }

    for i in 0..aig.node_count() {
        if refs[i] == 0 || !is_and(i as u32) {
            continue;
        }
        // Temporarily remove the current choice from the cover…
        let cur = choice[i];
        deref_cand(i, &cands[i][cur], cuts, cands, choice, &mut refs, &is_and);
        // …score every candidate by trial insertion…
        let mut best = cur;
        let mut best_area = f64::INFINITY;
        for (k, cand) in cands[i].iter().enumerate() {
            let a = ref_cand(i, cand, cuts, cands, choice, &mut refs, &is_and)
                + inv_fixups(i, cand, &produced_compl);
            deref_cand(i, cand, cuts, cands, choice, &mut refs, &is_and);
            if a < best_area {
                best_area = a;
                best = k;
            }
        }
        // …and commit the winner.
        choice[i] = best;
        ref_cand(i, &cands[i][best], cuts, cands, choice, &mut refs, &is_and);
        produced_compl[i] = produced_of(&produced_compl, &cands[i][best]);
    }
}

/// Emits the mapped netlist from the chosen cover.
fn emit(
    aig: &Aig,
    cuts: &[Vec<Cut>],
    cands: &[Vec<Cand>],
    choice: &[usize],
    cover: &Cover,
    live: &[bool],
    n_nodes: usize,
) -> Mapped {
    let mut nl = Netlist::new(aig.name());
    // Net of each node polarity, memoized (inverters created on demand).
    let mut plain_net: Vec<Option<NetId>> = vec![None; n_nodes];
    let mut inv_net: Vec<Option<NetId>> = vec![None; n_nodes];

    for p in aig.input_ports() {
        let nets = nl.add_input(&p.name, p.lits.len());
        for (&l, &n) in p.lits.iter().zip(&nets) {
            plain_net[l.node() as usize] = Some(n);
        }
    }
    for lat in aig.latches() {
        if live[lat.output as usize] {
            plain_net[lat.output as usize] = Some(nl.add_net());
        }
    }

    fn resolve(
        nl: &mut Netlist,
        plain_net: &mut [Option<NetId>],
        inv_net: &mut [Option<NetId>],
        l: AigLit,
    ) -> NetId {
        if let Some(v) = l.as_constant() {
            return nl.constant(v);
        }
        let n = l.node() as usize;
        let (want, other) = if l.is_complemented() {
            (&mut inv_net[n], plain_net[n])
        } else {
            (&mut plain_net[n], inv_net[n])
        };
        if let Some(net) = *want {
            return net;
        }
        let base = other.unwrap_or_else(|| panic!("literal {l:?} has no net in the cover"));
        let net = nl.add_gate(GateKind::Inv, &[base]);
        *want = Some(net);
        net
    }

    for i in 0..n_nodes {
        if cover.uses[i].total() == 0 || !matches!(aig.nodes()[i], AigNode::And(..)) {
            continue;
        }
        let cand = &cands[i][choice[i]];
        match cand.real {
            Real::Constant(v) => {
                // Both polarities are free tie cells — pre-populating the
                // complement keeps `resolve` from building Inv(TIELO).
                plain_net[i] = Some(nl.constant(v));
                inv_net[i] = Some(nl.constant(!v));
            }
            Real::Alias { leaf, neg } => {
                // No gate: each polarity of the node IS the matching
                // polarity of the leaf. Materialize exactly the phases
                // consumers read (resolving through the leaf's memoized
                // nets), so no Inv(Inv(leaf)) chains arise.
                if cover.uses[i].plain > 0 {
                    let net = resolve(
                        &mut nl,
                        &mut plain_net,
                        &mut inv_net,
                        AigLit::new(leaf, neg),
                    );
                    plain_net[i] = Some(net);
                }
                if cover.uses[i].compl > 0 {
                    let net = resolve(
                        &mut nl,
                        &mut plain_net,
                        &mut inv_net,
                        AigLit::new(leaf, !neg),
                    );
                    inv_net[i] = Some(net);
                }
            }
            Real::Cell {
                kind,
                pins,
                arity,
                out_neg,
                ..
            } => {
                let cut = &cuts[i][cand.cut as usize];
                let ins: Vec<NetId> = (0..arity as usize)
                    .map(|j| {
                        let (li, neg) = pins[j];
                        let leaf = cut.leaves()[li as usize];
                        resolve(
                            &mut nl,
                            &mut plain_net,
                            &mut inv_net,
                            AigLit::new(leaf, neg),
                        )
                    })
                    .collect();
                let out = nl.add_gate(kind, &ins);
                if out_neg {
                    inv_net[i] = Some(out);
                } else {
                    plain_net[i] = Some(out);
                }
            }
        }
    }

    for lat in aig.latches() {
        if !live[lat.output as usize] {
            continue;
        }
        let q = plain_net[lat.output as usize].expect("latch net pre-created");
        let d = resolve(&mut nl, &mut plain_net, &mut inv_net, lat.next);
        let kind = GateKind::Dff {
            reset: lat.reset,
            init: lat.init,
        };
        let inputs: Vec<NetId> = match lat.reset {
            ResetKind::None => vec![d],
            _ => vec![
                d,
                resolve(&mut nl, &mut plain_net, &mut inv_net, lat.reset_lit),
            ],
        };
        nl.attach_gate(kind, &inputs, q)
            .expect("latch net has no other driver");
    }
    for p in aig.output_ports() {
        let nets: Vec<NetId> = p
            .lits
            .iter()
            .map(|&l| resolve(&mut nl, &mut plain_net, &mut inv_net, l))
            .collect();
        nl.add_output(&p.name, &nets);
    }
    // Count every combinational cell that actually landed in the
    // netlist — matched cells, polarity fix-up inverters, tie cells —
    // so the pass's `rewrites` statistic matches what the area report
    // will charge for.
    let cells = nl.gates().filter(|(_, g)| !g.kind.is_sequential()).count();
    Mapped { netlist: nl, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_sim::{check_comb_equiv, EquivOptions};

    fn lib() -> Library {
        Library::vt90()
    }

    #[test]
    fn npn_index_realizations_are_correct() {
        // For every indexed class member, re-derive a realization for a
        // random representative of the class and check it pointwise.
        let index = NpnIndex::build(&lib());
        for (&(n, canon), matches) in &index.classes {
            let n = n as usize;
            for m in matches {
                // canon = to_canon · cell_tt: evaluate both sides.
                assert_eq!(
                    m.to_canon.apply(m.kind.truth_table(), n),
                    canon,
                    "{:?} transform is wrong",
                    m.kind
                );
            }
        }
    }

    #[test]
    fn maps_simple_patterns_to_single_cells() {
        // !(a&b | c) is one AOI21 (or an equally-cheap equivalent).
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c = nl.add_input("c", 1)[0];
        let ab = nl.add_gate(GateKind::And2, &[a, b]);
        let o = nl.add_gate(GateKind::Or2, &[ab, c]);
        let y = nl.add_gate(GateKind::Inv, &[o]);
        nl.add_output("y", &[y]);
        let golden = nl.clone();
        let cells = cut_map(&mut nl, &lib());
        assert_eq!(cells, 1, "{:?}", nl.gate_histogram());
        let res = check_comb_equiv(&golden, &nl, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn maps_wide_and_trees_to_wide_cells() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input("x", 4);
        let t1 = nl.add_gate(GateKind::And2, &[x[0], x[1]]);
        let t2 = nl.add_gate(GateKind::And2, &[x[2], x[3]]);
        let y = nl.add_gate(GateKind::And2, &[t1, t2]);
        nl.add_output("y", &[y]);
        let golden = nl.clone();
        cut_map(&mut nl, &lib());
        assert_eq!(nl.num_gates(), 1);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::And4);
        let res = check_comb_equiv(&golden, &nl, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn xor_survives_as_a_cell() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let y = nl.add_gate(GateKind::Xor2, &[a, b]);
        nl.add_output("y", &[y]);
        let golden = nl.clone();
        cut_map(&mut nl, &lib());
        assert_eq!(nl.num_gates(), 1);
        let g = nl.driver(nl.output_nets()[0]).unwrap();
        assert_eq!(nl.gate(g).kind, GateKind::Xor2);
        let res = check_comb_equiv(&golden, &nl, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn shared_logic_is_not_duplicated() {
        // The And2 feeds both an output and more logic: one cell each.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c = nl.add_input("c", 1)[0];
        let ab = nl.add_gate(GateKind::And2, &[a, b]);
        let y = nl.add_gate(GateKind::Or2, &[ab, c]);
        nl.add_output("ab", &[ab]);
        nl.add_output("y", &[y]);
        let golden = nl.clone();
        cut_map(&mut nl, &lib());
        let res = check_comb_equiv(&golden, &nl, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
        assert!(nl.num_gates() <= 2, "{:?}", nl.gate_histogram());
    }

    #[test]
    fn sequential_designs_round_trip() {
        use synthir_sim::check_seq_equiv;
        let mut nl = Netlist::new("t");
        let rst = nl.add_input("rst", 1)[0];
        let d = nl.add_input("d", 1)[0];
        let e = nl.add_input("e", 1)[0];
        let de = nl.add_gate(GateKind::Xor2, &[d, e]);
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: true,
            },
            &[de, rst],
        );
        let y = nl.add_gate(GateKind::Nand2, &[q, e]);
        nl.add_output("y", &[y]);
        let golden = nl.clone();
        cut_map(&mut nl, &lib());
        assert_eq!(nl.flop_count(), 1);
        let res = check_seq_equiv(&golden, &nl, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn random_netlists_map_equivalently_and_cheaply() {
        use synthir_netlist::GateKind::*;
        let lib = lib();
        let kinds = [And2, Or2, Nand2, Nor2, Xor2, Inv, Mux2, Aoi21];
        let mut state = 0x5555_AAAA_1234_8765u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..12 {
            let mut nl = Netlist::new("t");
            let ins = nl.add_input("x", 5);
            let mut nets = ins.clone();
            for _ in 0..30 {
                let kind = kinds[(rng() % kinds.len() as u64) as usize];
                let inputs: Vec<NetId> = (0..kind.arity())
                    .map(|_| nets[(rng() % nets.len() as u64) as usize])
                    .collect();
                nets.push(nl.add_gate(kind, &inputs));
            }
            let outs: Vec<NetId> = (0..3)
                .map(|_| nets[(rng() % nets.len() as u64) as usize])
                .collect();
            nl.add_output("y", &outs);
            let golden = nl.clone();
            cut_map(&mut nl, &lib);
            nl.validate().unwrap();
            let res = check_comb_equiv(&golden, &nl, &EquivOptions::new()).unwrap();
            assert!(res.is_equivalent(), "round {round}: {res:?}");
        }
    }
}
