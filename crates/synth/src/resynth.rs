//! Collapse-and-re-cover resynthesis.
//!
//! For every output and flop-input cone within the effort limit, the cone is
//! collapsed to a two-level cover, minimized with the espresso loop, factored
//! and re-emitted. This is the step that makes a constant-folded table reach
//! the area of a hand-written sum-of-products (Fig. 5): after folding, both
//! styles describe the same function, and re-covering erases most of the
//! structural difference — though not all of it, because the minimizer is
//! seeded with the *structural* cover of the existing netlist, so different
//! starting RTL can land in different local optima, exactly the scatter the
//! paper attributes to the tool's "bumpy" optimization surface.

use crate::conefn::cone_function;
use crate::factor::emit_cover;
use crate::options::SynthOptions;
use synthir_logic::espresso::{minimize, EspressoOptions};
use synthir_logic::{Cover, Cube, TruthTable};
use synthir_netlist::{topo, GateKind, Library, NetId, Netlist};

/// Re-covers all eligible cones. Returns the number of cones rebuilt.
///
/// Each rebuild is accepted only when the re-covered logic is estimated to
/// be no larger than the logic it retires (under [`Library::vt90`]), so the
/// pass never degrades structurally good implementations such as XOR trees.
///
/// The pass runs in two phases. Phase 1 collapses and minimizes every
/// eligible cone against the pre-pass netlist concurrently (the expensive,
/// pure work). Phase 2 applies the rebuilds serially in root order; until
/// the first mutation the netlist is untouched, so plans apply without any
/// re-collapse, and after a mutation each remaining plan is re-validated
/// against the current netlist — a cone altered by an earlier rebuild is
/// simply re-minimized on the spot. Either way the result is identical to
/// a fully serial pass.
pub fn resynthesize(nl: &mut Netlist, opts: &SynthOptions) -> usize {
    let mut roots: Vec<NetId> = Vec::new();
    for net in nl.output_nets() {
        roots.push(net);
    }
    for (_, g) in nl.gates() {
        if g.kind.is_sequential() {
            roots.push(g.inputs[0]);
        }
    }
    roots.sort();
    roots.dedup();
    let plans: Vec<Option<ConePlan>> =
        synthir_logic::par::par_map(&roots, |&root| plan_root(nl, root, opts));
    let mut rebuilt = 0;
    let mut mutated = false;
    for (&root, plan) in roots.iter().zip(&plans) {
        if rebuild_root(nl, root, opts, plan.as_ref(), &mut mutated) {
            rebuilt += 1;
        }
    }
    nl.sweep();
    rebuilt
}

/// The precomputed (phase-1) minimization of one cone, valid as long as the
/// cone still collapses to the same function from the same start cover.
struct ConePlan {
    support: Vec<NetId>,
    tt: TruthTable,
    start: Cover,
    minimized: Cover,
}

fn plan_root(nl: &Netlist, root: NetId, opts: &SynthOptions) -> Option<ConePlan> {
    let driver = nl.driver(root)?;
    let kind = nl.gate(driver).kind;
    if kind.is_sequential() || kind.is_constant() {
        return None;
    }
    let (support, tt) = cone_function(nl, root, opts.collapse_support)?;
    if tt.as_constant().is_some() {
        return None; // cheap: handled directly in phase 2
    }
    let start = structural_cover(nl, root, &support, 4 * opts.max_cover_cubes)
        .unwrap_or_else(|| Cover::from_truth_table(&tt));
    let minimized = minimize(&start, None, &EspressoOptions::default());
    Some(ConePlan {
        support,
        tt,
        start,
        minimized,
    })
}

fn rebuild_root(
    nl: &mut Netlist,
    root: NetId,
    opts: &SynthOptions,
    plan: Option<&ConePlan>,
    mutated: &mut bool,
) -> bool {
    // Until the first mutation the netlist is exactly what phase 1 saw, so
    // the plan needs no re-validation — re-collapsing the cone here would
    // just repeat phase 1's work serially.
    if let Some(p) = plan {
        if !*mutated {
            return apply_rebuild(nl, root, opts, &p.support, &p.tt, &p.minimized, mutated);
        }
    }
    let Some(driver) = nl.driver(root) else {
        return false;
    };
    let kind = nl.gate(driver).kind;
    if kind.is_sequential() || kind.is_constant() {
        return false;
    }
    let Some((support, tt)) = cone_function(nl, root, opts.collapse_support) else {
        return false;
    };
    if let Some(v) = tt.as_constant() {
        let c = nl.constant(v);
        nl.replace_net_uses(root, c);
        *mutated = true;
        return true;
    }
    // Seed the minimizer with the structural cover when it is small enough;
    // otherwise fall back to the canonical minterm cover.
    let start = structural_cover(nl, root, &support, 4 * opts.max_cover_cubes)
        .unwrap_or_else(|| Cover::from_truth_table(&tt));
    let minimized = match plan {
        Some(p) if p.support == support && p.tt == tt && p.start == start => p.minimized.clone(),
        _ => minimize(&start, None, &EspressoOptions::default()),
    };
    apply_rebuild(nl, root, opts, &support, &tt, &minimized, mutated)
}

/// Accepts or rejects a minimized cover for a cone and stitches it in when
/// it pays off. Sets `mutated` when the netlist changes.
fn apply_rebuild(
    nl: &mut Netlist,
    root: NetId,
    opts: &SynthOptions,
    support: &[NetId],
    tt: &TruthTable,
    minimized: &Cover,
    mutated: &mut bool,
) -> bool {
    if minimized.cube_count() > opts.max_cover_cubes {
        return false; // parity-like function: keep the structural form
    }
    debug_assert_eq!(
        &minimized.to_truth_table(support.len()),
        tt,
        "resynthesis must preserve the cone function"
    );
    // Accept only if the rebuilt logic is no larger than what it retires.
    let lib = Library::vt90();
    let new_cost = {
        let mut scratch = Netlist::new("scratch");
        let fake = scratch.add_input("x", support.len());
        let r = emit_cover(&mut scratch, minimized, &fake);
        let _ = r;
        scratch.area_report(&lib).combinational
    };
    if new_cost > dying_cone_area(nl, root, &lib) {
        return false;
    }
    let new_root = emit_cover(nl, minimized, support);
    // emit_cover adds gates even when the rebuild is then abandoned, so the
    // netlist diverges from the phase-1 snapshot either way.
    *mutated = true;
    if new_root == root {
        return false;
    }
    nl.replace_net_uses(root, new_root);
    true
}

/// The area of the cone gates that would die if every consumer of `root`
/// were rewired away: gates whose fanout lies entirely within the dying
/// set (computed by reverse-topological accumulation from the root driver).
fn dying_cone_area(nl: &Netlist, root: NetId, lib: &Library) -> f64 {
    let cone = topo::cone_gates(nl, root); // topological: inputs first
    let in_cone: std::collections::HashSet<_> = cone.iter().copied().collect();
    let fanout = nl.fanout_map();
    let out_nets: std::collections::HashSet<NetId> = nl.output_nets().into_iter().collect();
    let mut dying: std::collections::HashSet<synthir_netlist::GateId> =
        std::collections::HashSet::new();
    for &g in cone.iter().rev() {
        let out = nl.gate(g).output;
        if out == root {
            dying.insert(g);
            continue;
        }
        // Output ports keep a gate alive; so does any consumer outside the
        // dying set.
        let survives = out_nets.contains(&out)
            || fanout[out.index()]
                .iter()
                .any(|c| !in_cone.contains(c) || !dying.contains(c));
        if !survives {
            dying.insert(g);
        }
    }
    dying.iter().map(|&g| lib.area(nl.gate(g).kind)).sum()
}

/// Extracts a sum-of-products cover of the cone by structural collapse
/// (the tool's internal "collapse" operation). Returns `None` if any
/// intermediate cover exceeds `cap` cubes.
pub fn structural_cover(nl: &Netlist, root: NetId, support: &[NetId], cap: usize) -> Option<Cover> {
    let nvars = support.len();
    let var_of = |n: NetId| support.iter().position(|&s| s == n);
    let gates = topo::cone_gates(nl, root);
    // Per-net cover (and its complement where cheap to track).
    let mut covers: std::collections::HashMap<NetId, Cover> = std::collections::HashMap::new();
    let lookup = |covers: &std::collections::HashMap<NetId, Cover>,
                  nl: &Netlist,
                  n: NetId|
     -> Option<Cover> {
        if let Some(v) = var_of(n) {
            return Some(Cover::from_cubes(
                nvars,
                [Cube::new(nvars, 1u64 << v, 1u64 << v)],
            ));
        }
        if let Some(c) = nl.as_constant(n) {
            return Some(if c {
                Cover::tautology_cover(nvars)
            } else {
                Cover::empty(nvars)
            });
        }
        covers.get(&n).cloned()
    };
    for gid in gates {
        let g = nl.gate(gid).clone();
        let ins: Vec<Cover> = g
            .inputs
            .iter()
            .map(|&i| lookup(&covers, nl, i))
            .collect::<Option<Vec<_>>>()?;
        let out = eval_cover(g.kind, &ins, cap)?;
        if out.cube_count() > cap {
            return None;
        }
        covers.insert(g.output, out);
    }
    lookup(&covers, nl, root)
}

fn eval_cover(kind: GateKind, ins: &[Cover], cap: usize) -> Option<Cover> {
    use GateKind::*;
    let and2 = |a: &Cover, b: &Cover| -> Option<Cover> {
        let mut out = Cover::empty(a.nvars());
        for x in a.cubes() {
            for y in b.cubes() {
                if let Some(c) = x.intersect(y) {
                    out.push(c);
                }
                if out.cube_count() > cap {
                    return None;
                }
            }
        }
        out.remove_contained_cubes();
        Some(out)
    };
    let or_all = |cs: &[Cover]| -> Option<Cover> {
        let mut out = cs[0].clone();
        for c in &cs[1..] {
            out = out.union(c);
        }
        out.remove_contained_cubes();
        if out.cube_count() > cap {
            None
        } else {
            Some(out)
        }
    };
    let and_all = |cs: &[Cover]| -> Option<Cover> {
        let mut out = cs[0].clone();
        for c in &cs[1..] {
            out = and2(&out, c)?;
        }
        Some(out)
    };
    let not = |c: &Cover| -> Option<Cover> {
        let r = c.complement();
        if r.cube_count() > cap {
            None
        } else {
            Some(r)
        }
    };
    match kind {
        Const0 => Some(Cover::empty(ins.first().map(|c| c.nvars()).unwrap_or(0))),
        Const1 => Some(Cover::tautology_cover(
            ins.first().map(|c| c.nvars()).unwrap_or(0),
        )),
        Buf => Some(ins[0].clone()),
        Inv => not(&ins[0]),
        And2 | And3 | And4 => and_all(ins),
        Or2 | Or3 | Or4 => or_all(ins),
        Nand2 | Nand3 | Nand4 => not(&and_all(ins)?),
        Nor2 | Nor3 | Nor4 => not(&or_all(ins)?),
        Xor2 => {
            let na = not(&ins[0])?;
            let nb = not(&ins[1])?;
            or_all(&[and2(&ins[0], &nb)?, and2(&na, &ins[1])?])
        }
        Xnor2 => {
            let na = not(&ins[0])?;
            let nb = not(&ins[1])?;
            or_all(&[and2(&ins[0], &ins[1])?, and2(&na, &nb)?])
        }
        Mux2 => {
            let ns = not(&ins[0])?;
            or_all(&[and2(&ns, &ins[1])?, and2(&ins[0], &ins[2])?])
        }
        Aoi21 => not(&or_all(&[and2(&ins[0], &ins[1])?, ins[2].clone()])?),
        Oai21 => not(&and2(&or_all(&[ins[0].clone(), ins[1].clone()])?, &ins[2])?),
        Aoi22 => not(&or_all(&[
            and2(&ins[0], &ins[1])?,
            and2(&ins[2], &ins[3])?,
        ])?),
        Oai22 => not(&and2(
            &or_all(&[ins[0].clone(), ins[1].clone()])?,
            &or_all(&[ins[2].clone(), ins[3].clone()])?,
        )?),
        Dff { .. } => None,
    }
}

/// Convenience: the truth table of the root must survive resynthesis; used
/// by tests and by the flow's internal assertions.
pub fn cone_tt(nl: &Netlist, root: NetId, max_support: usize) -> Option<TruthTable> {
    cone_function(nl, root, max_support).map(|(_, tt)| tt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::Library;

    /// Builds the raw mux-tree netlist for a 3-input truth table (as table
    /// elaboration would) and checks resynthesis collapses it to SOP size.
    #[test]
    fn collapses_constant_mux_tree() {
        let tt = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let mut nl = Netlist::new("t");
        let s = nl.add_input("x", 3);
        let leaves: Vec<NetId> = (0..8).map(|m| nl.constant(tt.eval(m))).collect();
        // Build mux tree.
        fn tree(nl: &mut Netlist, leaves: &[NetId], addr: &[NetId]) -> NetId {
            if addr.is_empty() {
                return leaves[0];
            }
            let half = leaves.len() / 2;
            let msb = addr[addr.len() - 1];
            let lo = tree(nl, &leaves[..half], &addr[..addr.len() - 1]);
            let hi = tree(nl, &leaves[half..], &addr[..addr.len() - 1]);
            nl.add_gate(GateKind::Mux2, &[msb, lo, hi])
        }
        let y = tree(&mut nl, &leaves, &s);
        nl.add_output("y", &[y]);

        let before = nl.num_gates();
        crate::constfold::const_fold(&mut nl);
        let opts = SynthOptions::default();
        resynthesize(&mut nl, &opts);
        crate::constfold::const_fold(&mut nl);
        assert!(nl.num_gates() < before);
        // Function preserved.
        let out = nl.output_nets()[0];
        let tt2 = cone_tt(&nl, out, 8).unwrap();
        assert_eq!(tt2, tt);
        // Majority-of-3 factored: at most ~6 gates.
        assert!(nl.num_gates() <= 6, "got {}", nl.num_gates());
        let lib = Library::vt90();
        assert!(nl.area_report(&lib).combinational < 30.0);
    }

    #[test]
    fn skips_parity_blowup() {
        // 10-input parity: espresso cover has 512 cubes > cap; the XOR tree
        // must be left intact.
        let mut nl = Netlist::new("p");
        let xs = nl.add_input("x", 10);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = nl.add_gate(GateKind::Xor2, &[acc, x]);
        }
        nl.add_output("y", &[acc]);
        let before = nl.num_gates();
        let opts = SynthOptions::default();
        resynthesize(&mut nl, &opts);
        assert_eq!(nl.num_gates(), before);
    }

    #[test]
    fn structural_cover_matches_function() {
        let mut nl = Netlist::new("t");
        let x = nl.add_input("x", 4);
        let ab = nl.add_gate(GateKind::And2, &[x[0], x[1]]);
        let cd = nl.add_gate(GateKind::Nand2, &[x[2], x[3]]);
        let y = nl.add_gate(GateKind::Xor2, &[ab, cd]);
        nl.add_output("y", &[y]);
        let cover = structural_cover(&nl, y, &x, 1000).unwrap();
        let tt = cone_tt(&nl, y, 8).unwrap();
        assert_eq!(cover.to_truth_table(4), tt);
    }

    #[test]
    fn rebuilds_flop_input_cones() {
        use synthir_netlist::ResetKind;
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let c1 = nl.const1();
        // Redundant: (a & 1) | (a & a) == a.
        let t1 = nl.add_gate(GateKind::And2, &[a, c1]);
        let t2 = nl.add_gate(GateKind::And2, &[a, a]);
        let d = nl.add_gate(GateKind::Or2, &[t1, t2]);
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[d],
        );
        nl.add_output("q", &[q]);
        let opts = SynthOptions::default();
        resynthesize(&mut nl, &opts);
        crate::constfold::const_fold(&mut nl);
        // The D cone should now be the input directly.
        let flop = nl
            .gates()
            .find(|(_, g)| g.kind.is_sequential())
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(nl.gate(flop).inputs[0], a);
    }
}
