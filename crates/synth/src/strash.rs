//! Structural hashing: merging identical gates.
//!
//! After table collapse and resynthesis, many cones share identical product
//! terms; merging them models the sharing a synthesis tool extracts and is
//! required for multi-output tables to approach direct-implementation area.
//! Pre-techmap cleanup now happens inside the AIG core
//! ([`crate::aigopt`]); this pass remains for the *mapped* netlist, where
//! techmap's NAND/NOR/AOI instances can duplicate.

use std::collections::HashMap;
use synthir_netlist::{GateKind, NetId, Netlist};

/// Runs structural hashing. Returns the number of merges.
///
/// A single topological sweep suffices: each gate's inputs are first
/// canonicalized through the merges already recorded, so cascades resolve
/// without re-sorting or re-hashing the netlist per round (the old
/// fixpoint loop cloned every gate and re-ran `topological_order` each
/// iteration). All rewiring is applied in one bulk
/// [`Netlist::remap_uses`] at the end instead of a netlist-wide scan per
/// merge.
pub fn strash(nl: &mut Netlist) -> usize {
    let Ok(order) = synthir_netlist::topo::topological_order(nl) else {
        return 0;
    };
    let mut table: HashMap<(GateKind, Vec<NetId>), NetId> = HashMap::new();
    // Merged net → canonical net. Canonical nets are never themselves
    // merged (each key's first gate wins), so one lookup fully resolves.
    let mut repl: HashMap<NetId, NetId> = HashMap::new();
    let mut merges = 0;
    for gid in order {
        let gate = nl.gate(gid);
        if gate.kind.is_sequential() {
            // Merging flops is only sound when D, reset kind and init all
            // match; conservative and rarely profitable here — skip.
            continue;
        }
        let kind = gate.kind;
        let canon: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|n| *repl.get(n).unwrap_or(n))
            .collect();
        let key = (kind, normalize_inputs(kind, &canon));
        match table.get(&key) {
            Some(&existing) => {
                let out = nl.gate(gid).output;
                if existing != out {
                    repl.insert(out, existing);
                    merges += 1;
                }
            }
            None => {
                table.insert(key, nl.gate(gid).output);
            }
        }
    }
    nl.remap_uses(&repl);
    nl.sweep();
    merges
}

/// Sorts the inputs of commutative gates so permuted duplicates hash alike.
fn normalize_inputs(kind: GateKind, inputs: &[NetId]) -> Vec<NetId> {
    use GateKind::*;
    let mut v = inputs.to_vec();
    match kind {
        And2 | And3 | And4 | Or2 | Or3 | Or4 | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | Nor4
        | Xor2 | Xnor2 => v.sort(),
        Aoi21 | Oai21
            // (a, b) symmetric; c fixed.
            if v[0] > v[1] => {
                v.swap(0, 1);
            }
        Aoi22 | Oai22 => {
            // (a,b) and (c,d) symmetric, and the pairs commute.
            if v[0] > v[1] {
                v.swap(0, 1);
            }
            if v[2] > v[3] {
                v.swap(2, 3);
            }
            if (v[0], v[1]) > (v[2], v[3]) {
                v.swap(0, 2);
                v.swap(1, 3);
            }
        }
        _ => {}
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_identical_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let x = nl.add_gate(GateKind::And2, &[a, b]);
        let y = nl.add_gate(GateKind::And2, &[b, a]); // permuted duplicate
        let z = nl.add_gate(GateKind::Or2, &[x, y]);
        nl.add_output("z", &[z]);
        let merges = strash(&mut nl);
        assert_eq!(merges, 1);
        // Or2(x, x) remains (const_fold would collapse it further).
        assert_eq!(nl.num_gates(), 2);
    }

    #[test]
    fn cascading_merges() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let x1 = nl.add_gate(GateKind::And2, &[a, b]);
        let x2 = nl.add_gate(GateKind::And2, &[a, b]);
        let y1 = nl.add_gate(GateKind::Inv, &[x1]);
        let y2 = nl.add_gate(GateKind::Inv, &[x2]);
        nl.add_output("p", &[y1]);
        nl.add_output("q", &[y2]);
        let merges = strash(&mut nl);
        assert_eq!(merges, 2);
        assert_eq!(nl.num_gates(), 2);
        assert_eq!(nl.output_nets()[0], nl.output_nets()[1]);
    }

    #[test]
    fn flops_not_merged() {
        use synthir_netlist::ResetKind;
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 1)[0];
        let kind = GateKind::Dff {
            reset: ResetKind::None,
            init: false,
        };
        let q1 = nl.add_gate(kind, &[d]);
        let q2 = nl.add_gate(kind, &[d]);
        nl.add_output("a", &[q1]);
        nl.add_output("b", &[q2]);
        assert_eq!(strash(&mut nl), 0);
        assert_eq!(nl.flop_count(), 2);
    }

    #[test]
    fn mux_inputs_not_reordered() {
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s", 1)[0];
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let m1 = nl.add_gate(GateKind::Mux2, &[s, a, b]);
        let m2 = nl.add_gate(GateKind::Mux2, &[s, b, a]);
        nl.add_output("x", &[m1]);
        nl.add_output("y", &[m2]);
        assert_eq!(strash(&mut nl), 0);
    }
}
