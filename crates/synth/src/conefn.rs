//! Cone extraction: collapsing a combinational cone to a truth table.

use synthir_logic::TruthTable;
use synthir_netlist::{topo, NetId, Netlist};

/// The complete function of a combinational cone rooted at `root`, expressed
/// over the cone's support (primary inputs and flop outputs), or `None` if
/// the support exceeds `max_support`.
///
/// Variable `i` of the returned table corresponds to `support[i]`.
pub fn cone_function(
    nl: &Netlist,
    root: NetId,
    max_support: usize,
) -> Option<(Vec<NetId>, TruthTable)> {
    let support = topo::comb_support(nl, root);
    if support.len() > max_support {
        return None;
    }
    Some((support.clone(), cone_function_on(nl, root, &support)))
}

/// The function of a cone over an explicitly provided support ordering.
///
/// # Panics
///
/// Panics if the cone depends on sources outside `support` (other than
/// constants) or `support.len() > 24`.
pub fn cone_function_on(nl: &Netlist, root: NetId, support: &[NetId]) -> TruthTable {
    let k = support.len();
    assert!(k <= 24, "cone support too large to enumerate");
    let gates = topo::cone_gates(nl, root);
    let n_patterns = 1usize << k;
    let words = n_patterns.div_ceil(64);
    let mut bits = synthir_logic::BitVec::zeros(n_patterns);
    let mut vals = vec![0u64; nl.num_nets()];
    for w in 0..words {
        // Pattern p (global index w*64 + bit) assigns support[i] the i-th
        // address bit of the pattern index.
        for (i, &s) in support.iter().enumerate() {
            let mut word = 0u64;
            for b in 0..64 {
                let p = w * 64 + b;
                if p < n_patterns && p >> i & 1 != 0 {
                    word |= 1 << b;
                }
            }
            vals[s.index()] = word;
        }
        // Constants.
        for (_, g) in nl.gates() {
            if g.kind.is_constant() {
                vals[g.output.index()] = g.kind.eval_words(&[]);
            }
        }
        let mut ins: Vec<u64> = Vec::with_capacity(4);
        for &gid in &gates {
            let g = nl.gate(gid);
            ins.clear();
            ins.extend(g.inputs.iter().map(|i| vals[i.index()]));
            vals[g.output.index()] = g.kind.eval_words(&ins);
        }
        let rootw = vals[root.index()];
        for b in 0..64 {
            let p = w * 64 + b;
            if p < n_patterns && rootw >> b & 1 != 0 {
                bits.set(p, true);
            }
        }
    }
    TruthTable::from_bits(k, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::GateKind;

    #[test]
    fn extracts_majority() {
        let mut nl = Netlist::new("maj");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c = nl.add_input("c", 1)[0];
        let ab = nl.add_gate(GateKind::And2, &[a, b]);
        let bc = nl.add_gate(GateKind::And2, &[b, c]);
        let ac = nl.add_gate(GateKind::And2, &[a, c]);
        let t = nl.add_gate(GateKind::Or2, &[ab, bc]);
        let y = nl.add_gate(GateKind::Or2, &[t, ac]);
        nl.add_output("y", &[y]);
        let (support, tt) = cone_function(&nl, y, 8).unwrap();
        assert_eq!(support.len(), 3);
        // Variable order follows support (sorted by NetId = a, b, c).
        let expected = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        assert_eq!(tt, expected);
    }

    #[test]
    fn respects_support_limit() {
        let mut nl = Netlist::new("wide");
        let xs = nl.add_input("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = nl.add_gate(GateKind::And2, &[acc, x]);
        }
        nl.add_output("y", &[acc]);
        assert!(cone_function(&nl, acc, 5).is_none());
        assert!(cone_function(&nl, acc, 6).is_some());
    }

    #[test]
    fn constants_in_cone() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a", 1)[0];
        let c1 = nl.const1();
        let y = nl.add_gate(GateKind::And2, &[a, c1]);
        nl.add_output("y", &[y]);
        let (support, tt) = cone_function(&nl, y, 4).unwrap();
        assert_eq!(support.len(), 1);
        assert_eq!(tt, TruthTable::variable(1, 0));
    }

    #[test]
    fn wide_cone_multiword() {
        // 7 inputs → 128 patterns → 2 words.
        let mut nl = Netlist::new("parity7");
        let xs = nl.add_input("x", 7);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = nl.add_gate(GateKind::Xor2, &[acc, x]);
        }
        nl.add_output("y", &[acc]);
        let (_, tt) = cone_function(&nl, acc, 7).unwrap();
        let expected = TruthTable::from_fn(7, |m| m.count_ones() % 2 == 1);
        assert_eq!(tt, expected);
    }
}
