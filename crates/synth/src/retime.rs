//! Forward retiming.
//!
//! The paper's Fig. 8 experiment enables retiming to see whether the tool
//! can rescue state propagation across flop boundaries: by moving flops
//! forward through the downstream logic, the foldable computation becomes
//! purely combinational and the ordinary optimizations apply. The paper
//! found the effect *inconsistent* and dependent on the flop's reset type.
//!
//! This implementation models that behaviour: a combinational cone whose
//! sources are all flops can absorb them into a single flop at its root,
//! **provided** the flops have no asynchronous reset (the new init value is
//! recomputed by evaluating the cone over the old init values, which is not
//! sound for level-sensitive async-reset behaviour — the same reason
//! commercial tools decline) and the flops fan out only into that cone.

use crate::conefn::cone_function_on;
use synthir_netlist::{topo, GateId, GateKind, NetId, Netlist, ResetKind};

/// Applies backward retiming: a bank of flops whose D pins are computed by
/// a combinational cone from primary inputs only can be replaced by flops
/// *on those inputs*, with the cone recomputed after the flops — exposing
/// it to combinational optimization (the rescue Fig. 8 hopes for).
///
/// The catch is the reset value: the new flops need an init vector whose
/// image under the cone equals the old flops' init vector. For resettable
/// flops (sync or async) the pass searches for such a preimage and
/// *declines* when none exists — e.g. an all-zero reset behind a one-hot
/// decoder, which has no preimage. Reset-less flops have no architectural
/// reset state, so the pass proceeds regardless. This is the mechanism
/// behind the paper's observation that retiming success depends
/// inconsistently on the flop type.
///
/// Returns the number of banks retimed.
pub fn retime_backward(nl: &mut Netlist, max_support: usize) -> usize {
    let mut count = 0;
    while let Some(bank) = find_backward_candidate(nl, max_support) {
        apply_backward(nl, &bank);
        count += 1;
        nl.sweep();
    }
    count
}

struct BackwardBank {
    flops: Vec<GateId>,
    support: Vec<NetId>,
    init_assignment: u64,
}

fn find_backward_candidate(nl: &Netlist, max_support: usize) -> Option<BackwardBank> {
    // Group flops by (reset kind, reset net).
    let mut groups: std::collections::HashMap<(ResetKind, Option<NetId>), Vec<GateId>> =
        std::collections::HashMap::new();
    for (id, g) in nl.gates() {
        if let GateKind::Dff { reset, .. } = g.kind {
            groups
                .entry((reset, g.inputs.get(1).copied()))
                .or_default()
                .push(id);
        }
    }
    'groups: for ((reset, _rst), flops) in groups {
        if flops.len() < 2 {
            continue;
        }
        // Union support of the D cones must be primary inputs only.
        let mut support: std::collections::BTreeSet<NetId> = std::collections::BTreeSet::new();
        for &f in &flops {
            for s in topo::comb_support(nl, nl.gate(f).inputs[0]) {
                if nl.driver(s).is_some() {
                    continue 'groups; // fed by another gate/flop: skip group
                }
                support.insert(s);
            }
        }
        let support: Vec<NetId> = support.into_iter().collect();
        if support.is_empty() || support.len() > max_support || support.len() >= flops.len() {
            continue;
        }
        // The D cones must be consumed only by this bank's D pins.
        let fanout = nl.fanout_map();
        let out_nets: std::collections::HashSet<NetId> = nl.output_nets().into_iter().collect();
        let mut cone_gates: std::collections::HashSet<GateId> = std::collections::HashSet::new();
        for &f in &flops {
            cone_gates.extend(topo::cone_gates(nl, nl.gate(f).inputs[0]));
        }
        let flop_set: std::collections::HashSet<GateId> = flops.iter().copied().collect();
        let escapes = cone_gates.iter().any(|&cg| {
            let out = nl.gate(cg).output;
            out_nets.contains(&out)
                || fanout[out.index()]
                    .iter()
                    .any(|g| !cone_gates.contains(g) && !flop_set.contains(g))
        });
        if escapes {
            continue;
        }
        // Find an init preimage: an assignment of the support whose cone
        // image equals the flop init vector.
        if support.len() > 20 {
            continue;
        }
        let d_tts: Vec<_> = flops
            .iter()
            .map(|&f| cone_function_on(nl, nl.gate(f).inputs[0], &support))
            .collect();
        let inits: Vec<bool> = flops
            .iter()
            .map(|&f| match nl.gate(f).kind {
                GateKind::Dff { init, .. } => init,
                _ => unreachable!(),
            })
            .collect();
        let mut preimage: Option<u64> = None;
        for a in 0..1u64 << support.len() {
            if d_tts
                .iter()
                .zip(&inits)
                .all(|(tt, &want)| tt.eval(a as usize) == want)
            {
                preimage = Some(a);
                break;
            }
        }
        let init_assignment = match (preimage, reset) {
            (Some(a), _) => a,
            // Reset-less flops have no architectural reset state to
            // preserve; any power-up value is as (un)defined as before.
            (None, ResetKind::None) => 0,
            (None, _) => continue, // resettable without a preimage: decline
        };
        return Some(BackwardBank {
            flops,
            support,
            init_assignment,
        });
    }
    None
}

fn apply_backward(nl: &mut Netlist, bank: &BackwardBank) {
    let (reset, rst_net) = match nl.gate(bank.flops[0]).kind {
        GateKind::Dff { reset, .. } => (reset, nl.gate(bank.flops[0]).inputs.get(1).copied()),
        _ => unreachable!(),
    };
    // New flops on the support.
    let mut sub: std::collections::HashMap<NetId, NetId> = std::collections::HashMap::new();
    for (i, &s) in bank.support.iter().enumerate() {
        let kind = GateKind::Dff {
            reset,
            init: bank.init_assignment >> i & 1 != 0,
        };
        let q = match (reset, rst_net) {
            (ResetKind::None, _) => nl.add_gate(kind, &[s]),
            (_, Some(r)) => nl.add_gate(kind, &[s, r]),
            (_, None) => nl.add_gate(kind, &[s]),
        };
        sub.insert(s, q);
    }
    // Recompute each old flop's function combinationally after the new
    // flops, and rewire its consumers.
    for &f in &bank.flops {
        let d = nl.gate(f).inputs[0];
        let q_old = nl.gate(f).output;
        let cone = topo::cone_gates(nl, d);
        let mut local = sub.clone();
        for gid in cone {
            let g = nl.gate(gid).clone();
            let inputs: Vec<NetId> = g
                .inputs
                .iter()
                .map(|i| local.get(i).copied().unwrap_or(*i))
                .collect();
            let new_out = nl.add_gate(g.kind, &inputs);
            local.insert(g.output, new_out);
        }
        let new_q = local[&d];
        nl.replace_net_uses(q_old, new_q);
    }
}

/// Applies forward retiming greedily. Returns the number of cones retimed.
pub fn retime_forward(nl: &mut Netlist, max_cone_support: usize) -> usize {
    let mut count = 0;
    while let Some(root) = find_candidate(nl, max_cone_support) {
        apply(nl, root);
        count += 1;
        nl.sweep();
    }
    count
}

/// A retimable cone root: a comb net whose support consists purely of
/// non-async flops that (a) have no feedback and (b) fan out only into this
/// cone, where absorbing them reduces the flop count.
fn find_candidate(nl: &Netlist, max_cone_support: usize) -> Option<NetId> {
    let fanout = nl.fanout_map();
    for (_, g) in nl.gates() {
        if g.kind.is_sequential() || g.kind.is_constant() {
            continue;
        }
        let root = g.output;
        let support = topo::comb_support(nl, root);
        if support.len() < 2 || support.len() > max_cone_support {
            continue;
        }
        // Every source must be a flop without async reset.
        let mut flops: Vec<GateId> = Vec::new();
        let mut ok = true;
        for &s in &support {
            match nl.driver(s) {
                Some(d) => {
                    let dg = nl.gate(d);
                    match dg.kind {
                        GateKind::Dff { reset, .. } if reset != ResetKind::Async => {
                            flops.push(d);
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Mixed reset kinds are not retimable as a group.
        let kinds: std::collections::HashSet<ResetKind> = flops
            .iter()
            .map(|&f| match nl.gate(f).kind {
                GateKind::Dff { reset, .. } => reset,
                _ => unreachable!(),
            })
            .collect();
        if kinds.len() != 1 {
            continue;
        }
        // No feedback: the flops' D cones must not read any absorbed flop.
        let support_set: std::collections::HashSet<NetId> = support.iter().copied().collect();
        if flops.iter().any(|&f| {
            topo::comb_support(nl, nl.gate(f).inputs[0])
                .iter()
                .any(|s| support_set.contains(s))
        }) {
            continue;
        }
        // The flops must fan out only into this cone (and the cone's root
        // gate set), otherwise duplication would grow the design. Output
        // ports count as external fanout.
        let out_nets: std::collections::HashSet<NetId> = nl.output_nets().into_iter().collect();
        let cone: std::collections::HashSet<GateId> =
            topo::cone_gates(nl, root).into_iter().collect();
        if support
            .iter()
            .any(|s| out_nets.contains(s) || fanout[s.index()].iter().any(|g| !cone.contains(g)))
        {
            continue;
        }
        // Intermediate cone nets must not escape either, or the old cone
        // (and its flops) would survive the rewrite.
        let escapes = cone.iter().any(|&cg| {
            let out = nl.gate(cg).output;
            out != root
                && (out_nets.contains(&out)
                    || fanout[out.index()].iter().any(|g| !cone.contains(g)))
        });
        if escapes {
            continue;
        }
        // Profitable: strictly fewer flops afterwards.
        if flops.len() < 2 {
            continue;
        }
        return Some(root);
    }
    None
}

fn apply(nl: &mut Netlist, root: NetId) {
    let support = topo::comb_support(nl, root);
    let flops: Vec<GateId> = support
        .iter()
        .map(|&s| nl.driver(s).expect("validated"))
        .collect();
    let (reset_kind, rst_net) = match nl.gate(flops[0]).kind {
        GateKind::Dff { reset, .. } => (reset, nl.gate(flops[0]).inputs.get(1).copied()),
        _ => unreachable!(),
    };
    // New init = cone evaluated on the old init vector.
    let tt = cone_function_on(nl, root, &support);
    let mut init_minterm = 0usize;
    for (i, &f) in flops.iter().enumerate() {
        if let GateKind::Dff { init, .. } = nl.gate(f).kind {
            if init {
                init_minterm |= 1 << i;
            }
        }
    }
    let new_init = tt.eval(init_minterm);
    // Clone the cone with flop outputs substituted by flop D inputs.
    let mut sub: std::collections::HashMap<NetId, NetId> = std::collections::HashMap::new();
    for &f in &flops {
        let g = nl.gate(f);
        sub.insert(g.output, g.inputs[0]);
    }
    let cone = topo::cone_gates(nl, root);
    for gid in cone {
        let g = nl.gate(gid).clone();
        let inputs: Vec<NetId> = g
            .inputs
            .iter()
            .map(|i| sub.get(i).copied().unwrap_or(*i))
            .collect();
        let new_out = nl.add_gate(g.kind, &inputs);
        sub.insert(g.output, new_out);
    }
    let new_d = sub[&root];
    let kind = GateKind::Dff {
        reset: reset_kind,
        init: new_init,
    };
    let new_q = match (reset_kind, rst_net) {
        (ResetKind::None, _) => nl.add_gate(kind, &[new_d]),
        (_, Some(r)) => nl.add_gate(kind, &[new_d, r]),
        (_, None) => nl.add_gate(kind, &[new_d]),
    };
    nl.replace_net_uses(root, new_q);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// decoder-ish pipeline: flops feed a reduction whose flops fan out
    /// nowhere else — retimable to a single flop.
    fn reduction_design(reset: ResetKind, n: usize) -> Netlist {
        let mut nl = Netlist::new("t");
        let x = nl.add_input("x", n);
        let rst = if reset == ResetKind::None {
            None
        } else {
            Some(nl.add_input("rst", 1)[0])
        };
        let r: Vec<NetId> = x
            .iter()
            .map(|&b| {
                let kind = GateKind::Dff { reset, init: false };
                match rst {
                    None => nl.add_gate(kind, &[b]),
                    Some(rn) => nl.add_gate(kind, &[b, rn]),
                }
            })
            .collect();
        let mut acc = r[0];
        for &b in &r[1..] {
            acc = nl.add_gate(GateKind::Or2, &[acc, b]);
        }
        nl.add_output("any", &[acc]);
        nl
    }

    #[test]
    fn absorbs_flops_into_one() {
        for reset in [ResetKind::None, ResetKind::Sync] {
            let mut nl = reduction_design(reset, 6);
            assert_eq!(nl.flop_count(), 6);
            let n = retime_forward(&mut nl, 16);
            assert!(n >= 1, "{reset:?}");
            assert_eq!(nl.flop_count(), 1, "{reset:?}");
        }
    }

    #[test]
    fn declines_async_reset() {
        let mut nl = reduction_design(ResetKind::Async, 6);
        let n = retime_forward(&mut nl, 16);
        assert_eq!(n, 0);
        assert_eq!(nl.flop_count(), 6);
    }

    #[test]
    fn preserves_sequential_behaviour() {
        let golden = reduction_design(ResetKind::Sync, 5);
        let mut retimed = golden.clone();
        retime_forward(&mut retimed, 16);
        let res =
            synthir_sim::check_seq_equiv(&golden, &retimed, &synthir_sim::EquivOptions::new())
                .unwrap();
        assert!(res.is_equivalent(), "{res:?}");
    }

    #[test]
    fn respects_external_fanout() {
        // One of the flops also drives an output port: cannot retime.
        let mut nl = reduction_design(ResetKind::Sync, 4);
        let some_flop_q = nl
            .gates()
            .find(|(_, g)| g.kind.is_sequential())
            .map(|(_, g)| g.output)
            .unwrap();
        nl.add_output("peek", &[some_flop_q]);
        let n = retime_forward(&mut nl, 16);
        assert_eq!(n, 0);
    }

    #[test]
    fn skips_feedback_loops() {
        // A toggle flop (q feeds its own D) must never be absorbed.
        let mut nl = Netlist::new("t");
        let q1 = nl.add_net();
        let q2 = nl.add_net();
        let nq1 = nl.add_gate(GateKind::Inv, &[q1]);
        let kind = GateKind::Dff {
            reset: ResetKind::None,
            init: false,
        };
        nl.attach_gate(kind, &[nq1], q1).unwrap();
        let nq2 = nl.add_gate(GateKind::Inv, &[q2]);
        nl.attach_gate(kind, &[nq2], q2).unwrap();
        let y = nl.add_gate(GateKind::And2, &[q1, q2]);
        nl.add_output("y", &[y]);
        let n = retime_forward(&mut nl, 16);
        assert_eq!(n, 0);
        assert_eq!(nl.flop_count(), 2);
    }
}
