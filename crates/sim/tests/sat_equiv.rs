//! Cross-engine oracle tests: the SAT engine against the BDD engine on
//! random netlists narrow enough (≤ 24 input bits) for the BDD engine to
//! prove.
//!
//! Two families per seed:
//!
//! * a *known-equivalent* pair — the same random DAG, with the right side
//!   rewritten gate-by-gate through De Morgan identities (AND → NAND+INV,
//!   OR → NOR+INV, …), so the SAT engine must return UNSAT on the miter;
//! * an *independent* pair — two different random DAGs over the same
//!   interface, where both engines must agree on the verdict (usually
//!   inequivalent, occasionally equivalent by chance on tiny functions).

use synthir_netlist::{GateKind, NetId, Netlist};
use synthir_sim::{check_comb_equiv, EquivEngine, EquivOptions, EquivResult};

struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random combinational DAG over `ninputs` 1-bit ports and `nouts`
/// outputs.
fn random_netlist(name: &str, ninputs: usize, ngates: usize, nouts: usize, seed: u64) -> Netlist {
    let mut rng = SplitMix::new(seed);
    let mut nl = Netlist::new(name);
    let mut pool: Vec<NetId> = (0..ninputs)
        .map(|i| nl.add_input(format!("i{i}"), 1)[0])
        .collect();
    for _ in 0..ngates {
        let pick = |rng: &mut SplitMix, pool: &[NetId]| pool[rng.below(pool.len() as u64) as usize];
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let c = pick(&mut rng, &pool);
        let n = match rng.below(8) {
            0 => nl.add_gate(GateKind::And2, &[a, b]),
            1 => nl.add_gate(GateKind::Or2, &[a, b]),
            2 => nl.add_gate(GateKind::Xor2, &[a, b]),
            3 => nl.add_gate(GateKind::Nand2, &[a, b]),
            4 => nl.add_gate(GateKind::Nor2, &[a, b]),
            5 => nl.add_gate(GateKind::Inv, &[a]),
            6 => nl.add_gate(GateKind::Mux2, &[a, b, c]),
            _ => nl.add_gate(GateKind::Xnor2, &[a, b]),
        };
        pool.push(n);
    }
    for o in 0..nouts {
        let n = pool[pool.len() - 1 - o % pool.len().min(8)];
        nl.add_output(format!("o{o}"), &[n]);
    }
    nl
}

/// Rebuilds `nl` with every gate replaced by a De Morgan-equivalent
/// composition — structurally different, functionally identical.
fn demorgan_twin(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(nl.name());
    let mut map: std::collections::HashMap<NetId, NetId> = std::collections::HashMap::new();
    for p in nl.inputs() {
        let nets = out.add_input(p.name.clone(), p.nets.len());
        for (old, new) in p.nets.iter().zip(nets) {
            map.insert(*old, new);
        }
    }
    // Gates were created in topological creation order for this generator.
    let mut gates: Vec<_> = nl.gates().collect();
    gates.sort_by_key(|(id, _)| *id);
    for (_, g) in gates {
        let ins: Vec<NetId> = g.inputs.iter().map(|i| map[i]).collect();
        let n = match g.kind {
            GateKind::And2 => {
                let t = out.add_gate(GateKind::Nand2, &[ins[0], ins[1]]);
                out.add_gate(GateKind::Inv, &[t])
            }
            GateKind::Or2 => {
                let na = out.add_gate(GateKind::Inv, &[ins[0]]);
                let nb = out.add_gate(GateKind::Inv, &[ins[1]]);
                out.add_gate(GateKind::Nand2, &[na, nb])
            }
            GateKind::Nand2 => {
                let t = out.add_gate(GateKind::And2, &[ins[0], ins[1]]);
                out.add_gate(GateKind::Inv, &[t])
            }
            GateKind::Nor2 => {
                let na = out.add_gate(GateKind::Inv, &[ins[0]]);
                let nb = out.add_gate(GateKind::Inv, &[ins[1]]);
                out.add_gate(GateKind::And2, &[na, nb])
            }
            GateKind::Xor2 => {
                let t = out.add_gate(GateKind::Xnor2, &[ins[0], ins[1]]);
                out.add_gate(GateKind::Inv, &[t])
            }
            GateKind::Xnor2 => {
                let t = out.add_gate(GateKind::Xor2, &[ins[0], ins[1]]);
                out.add_gate(GateKind::Inv, &[t])
            }
            GateKind::Inv => {
                let t = out.add_gate(GateKind::Inv, &[ins[0]]);
                let t2 = out.add_gate(GateKind::Inv, &[t]);
                out.add_gate(GateKind::Inv, &[t2])
            }
            GateKind::Mux2 => {
                // sel ? d1 : d0 == (sel & d1) | (!sel & d0)
                let a = out.add_gate(GateKind::And2, &[ins[0], ins[2]]);
                let ns = out.add_gate(GateKind::Inv, &[ins[0]]);
                let b = out.add_gate(GateKind::And2, &[ns, ins[1]]);
                out.add_gate(GateKind::Or2, &[a, b])
            }
            other => {
                let inv: Vec<NetId> = ins.clone();
                out.add_gate(other, &inv)
            }
        };
        map.insert(g.output, n);
    }
    for p in nl.outputs() {
        let nets: Vec<NetId> = p.nets.iter().map(|n| map[n]).collect();
        out.add_output(p.name.clone(), &nets);
    }
    out
}

#[test]
fn sat_proves_known_equivalent_twins() {
    for seed in 0..40u64 {
        let ninputs = 4 + (seed % 10) as usize; // 4..=13 bits, BDD range
        let l = random_netlist("rand", ninputs, 30, 3, seed * 77 + 1);
        let r = demorgan_twin(&l);
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        let sat = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(sat.is_equivalent(), "seed {seed}: twin must be UNSAT");
        opts.engine = EquivEngine::Bdd;
        let bdd = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(bdd.is_equivalent(), "seed {seed}: BDD disagrees");
    }
}

#[test]
fn sat_and_bdd_agree_on_independent_random_pairs() {
    let mut inequivalent = 0;
    for seed in 0..40u64 {
        let ninputs = 4 + (seed % 8) as usize;
        let l = random_netlist("rand", ninputs, 25, 2, seed * 131 + 3);
        let r = random_netlist("rand", ninputs, 25, 2, seed * 131 + 500_000);
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        let sat = check_comb_equiv(&l, &r, &opts).unwrap();
        opts.engine = EquivEngine::Bdd;
        let bdd = check_comb_equiv(&l, &r, &opts).unwrap();
        assert_eq!(
            sat.is_equivalent(),
            bdd.is_equivalent(),
            "seed {seed}: engines disagree"
        );
        if let EquivResult::Inequivalent(cex) = &sat {
            inequivalent += 1;
            // The SAT counterexample must be concrete and distinguishing.
            assert_ne!(cex.left, cex.right, "seed {seed}");
        }
    }
    assert!(
        inequivalent > 20,
        "random pairs should mostly differ, got {inequivalent}"
    );
}
