//! Tseitin CNF encoding of netlist cones for the SAT equivalence engine.
//!
//! The BDD engine proves combinational equivalence only up to 24 shared
//! input bits; a config write port alone blows past that. This module makes
//! exact checking width-independent: it encodes the combinational cone of a
//! [`Netlist`] into CNF clauses for the [`synthir_sat`] CDCL solver, so the
//! equivalence checker can build *miters* — two designs sharing input
//! variables, with the OR of all output differences asserted — and ask the
//! solver for a distinguishing assignment. UNSAT is a proof of equivalence;
//! SAT hands back a concrete counterexample.
//!
//! [`CnfEncoder::encode_cone`] does not clause-template per [`GateKind`]:
//! the cone is first normalized into a [`synthir_aig::Aig`] (seeded nets
//! become free AIG inputs), whose construction-time hashing and folding
//! shrink the problem, and the surviving AND nodes emit exactly three
//! clauses each. Inverters, buffers, and the NAND/NOR/XNOR/AOI flavours
//! vanish into complemented edges — so the miters the equivalence checker
//! solves are measurably smaller than per-gate templates would produce.
//! Sequential checks unroll the netlist cycle-by-cycle (bounded model
//! checking) in `equiv`, reusing the same cone import with flop outputs
//! seeded as state literals.

use crate::SimError;
use std::collections::HashMap;
use synthir_aig::{import_cone, AigError, AigNode};
use synthir_netlist::{GateKind, NetId, Netlist};
use synthir_sat::{Lit, Solver};

/// A Tseitin encoder: a [`Solver`] plus the constant-literal convention and
/// the gate connectives.
#[derive(Debug)]
pub struct CnfEncoder {
    solver: Solver,
    true_lit: Lit,
}

impl Default for CnfEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl CnfEncoder {
    /// Creates an encoder with an empty solver (plus the constant-true
    /// variable).
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let true_lit = Lit::positive(solver.new_var());
        solver.add_clause(&[true_lit]);
        CnfEncoder { solver, true_lit }
    }

    /// The literal that is constantly `v`.
    pub fn constant(&self, v: bool) -> Lit {
        if v {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// A fresh unconstrained literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::positive(self.solver.new_var())
    }

    /// The underlying solver (for adding the miter clause and solving).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Read-only access to the solver (for model extraction).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// `AND` of `ins` (true for the empty conjunction).
    pub fn and(&mut self, ins: &[Lit]) -> Lit {
        match ins {
            [] => self.constant(true),
            [a] => *a,
            _ => {
                let t = self.fresh();
                let mut long: Vec<Lit> = Vec::with_capacity(ins.len() + 1);
                long.push(t);
                for &a in ins {
                    self.solver.add_clause(&[!t, a]);
                    long.push(!a);
                }
                self.solver.add_clause(&long);
                t
            }
        }
    }

    /// `OR` of `ins` (false for the empty disjunction).
    pub fn or(&mut self, ins: &[Lit]) -> Lit {
        let negated: Vec<Lit> = ins.iter().map(|&l| !l).collect();
        !self.and(&negated)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t = self.fresh();
        self.solver.add_clause(&[!t, a, b]);
        self.solver.add_clause(&[!t, !a, !b]);
        self.solver.add_clause(&[t, !a, b]);
        self.solver.add_clause(&[t, a, !b]);
        t
    }

    /// `sel ? then_ : else_`.
    pub fn ite(&mut self, sel: Lit, then_: Lit, else_: Lit) -> Lit {
        let t = self.fresh();
        self.solver.add_clause(&[!sel, !then_, t]);
        self.solver.add_clause(&[!sel, then_, !t]);
        self.solver.add_clause(&[sel, !else_, t]);
        self.solver.add_clause(&[sel, else_, !t]);
        t
    }

    /// The output literal of one combinational gate applied to input
    /// literals (mirrors `GateKind` semantics).
    ///
    /// # Panics
    ///
    /// Panics on a sequential gate kind; callers must stop the cone walk at
    /// flop outputs.
    pub fn gate(&mut self, kind: GateKind, ins: &[Lit]) -> Lit {
        use GateKind::*;
        match kind {
            Const0 => self.constant(false),
            Const1 => self.constant(true),
            Buf => ins[0],
            Inv => !ins[0],
            And2 | And3 | And4 => self.and(ins),
            Or2 | Or3 | Or4 => self.or(ins),
            Nand2 | Nand3 | Nand4 => !self.and(ins),
            Nor2 | Nor3 | Nor4 => !self.or(ins),
            Xor2 => self.xor(ins[0], ins[1]),
            Xnor2 => !self.xor(ins[0], ins[1]),
            Mux2 => self.ite(ins[0], ins[2], ins[1]),
            Aoi21 => {
                let ab = self.and(&[ins[0], ins[1]]);
                !self.or(&[ab, ins[2]])
            }
            Oai21 => {
                let ab = self.or(&[ins[0], ins[1]]);
                !self.and(&[ab, ins[2]])
            }
            Aoi22 => {
                let ab = self.and(&[ins[0], ins[1]]);
                let cd = self.and(&[ins[2], ins[3]]);
                !self.or(&[ab, cd])
            }
            Oai22 => {
                let ab = self.or(&[ins[0], ins[1]]);
                let cd = self.or(&[ins[2], ins[3]]);
                !self.and(&[ab, cd])
            }
            Dff { .. } => panic!("sequential gate in combinational cone"),
        }
    }

    /// Encodes the combinational cone of `nl` feeding `targets`, extending
    /// `map` (which seeds primary inputs, bound constants and — for BMC —
    /// flop outputs) with a literal for every visited net.
    ///
    /// The cone is normalized into an AIG first (via the shared
    /// [`synthir_netlist::topo::visit_cone`] walk — iterative, so
    /// arbitrarily deep netlists cannot overflow the stack), then each
    /// surviving AND node emits one three-clause Tseitin block. Undriven,
    /// unseeded nets encode as constant zero, matching the simulator and
    /// the BDD engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the cone contains a
    /// sequential gate whose output was not seeded.
    pub fn encode_cone(
        &mut self,
        nl: &Netlist,
        map: &mut HashMap<NetId, Lit>,
        targets: &[NetId],
    ) -> Result<(), SimError> {
        let cone = import_cone(nl, targets, |n| map.contains_key(&n)).map_err(|e| match e {
            AigError::UnseededFlop => SimError::InvalidNetlist(
                "combinational cone reaches an unseeded flop output".into(),
            ),
            AigError::Cyclic(msg) => SimError::InvalidNetlist(msg),
        })?;
        // One solver literal per AIG node: seeds take the caller's
        // literals, each AND takes a fresh variable plus three clauses.
        let mut node_lit: Vec<Option<Lit>> = vec![None; cone.aig.node_count()];
        node_lit[0] = Some(self.constant(false));
        for &(net, lit) in &cone.seeds {
            node_lit[lit.node() as usize] = Some(map[&net]);
        }
        let lit_of = |node_lit: &[Option<Lit>], l: synthir_aig::AigLit| -> Lit {
            let base = node_lit[l.node() as usize].expect("fanins precede");
            if l.is_complemented() {
                !base
            } else {
                base
            }
        };
        for (i, node) in cone.aig.nodes().iter().enumerate() {
            if let AigNode::And(a, b) = *node {
                let la = lit_of(&node_lit, a);
                let lb = lit_of(&node_lit, b);
                let t = self.fresh();
                self.solver.add_clause(&[!t, la]);
                self.solver.add_clause(&[!t, lb]);
                self.solver.add_clause(&[t, !la, !lb]);
                node_lit[i] = Some(t);
            }
        }
        for (net, alit) in cone.lits.iter() {
            map.insert(net, lit_of(&node_lit, alit));
        }
        Ok(())
    }

    /// Reads a port value out of the model after a satisfiable solve.
    pub fn model_word(&self, lits: &[Lit]) -> u128 {
        let mut v = 0u128;
        for (i, &l) in lits.iter().enumerate() {
            if self.solver.model_value(l) {
                v |= 1 << i;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_sat::SatResult;

    type BinConnective = (
        &'static str,
        fn(&mut CnfEncoder, Lit, Lit) -> Lit,
        fn(bool, bool) -> bool,
    );

    #[test]
    fn connectives_have_correct_truth_tables() {
        // For each connective, assert the output and check the solver finds
        // exactly the right input combinations.
        let cases: Vec<BinConnective> = vec![
            ("and", |e, a, b| e.and(&[a, b]), |a, b| a & b),
            ("or", |e, a, b| e.or(&[a, b]), |a, b| a | b),
            ("xor", |e, a, b| e.xor(a, b), |a, b| a ^ b),
        ];
        for (name, enc, semantics) in cases {
            for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
                let mut e = CnfEncoder::new();
                let a = e.fresh();
                let b = e.fresh();
                let y = enc(&mut e, a, b);
                e.solver_mut().add_clause(&[Lit::new(a.var(), !va)]);
                e.solver_mut().add_clause(&[Lit::new(b.var(), !vb)]);
                e.solver_mut().add_clause(&[y]);
                let expect = if semantics(va, vb) {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                };
                assert_eq!(e.solver_mut().solve(), expect, "{name}({va}, {vb})");
            }
        }
    }

    #[test]
    fn ite_selects() {
        for (s, t, el) in [(false, true, false), (true, true, false)] {
            let mut e = CnfEncoder::new();
            let sel = e.constant(s);
            let a = e.constant(t);
            let b = e.constant(el);
            let y = e.ite(sel, a, b);
            e.solver_mut().add_clause(&[y]);
            let expect = if s { t } else { el };
            assert_eq!(
                e.solver_mut().solve(),
                if expect {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                }
            );
        }
    }

    #[test]
    fn cone_walk_is_stack_safe_and_correct() {
        use synthir_netlist::Netlist;
        // A 50_000-gate inverter chain: recursion would overflow here.
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a", 1)[0];
        let mut n = a;
        for _ in 0..50_000 {
            n = nl.add_gate(GateKind::Inv, &[n]);
        }
        nl.add_output("y", &[n]);
        let mut e = CnfEncoder::new();
        let av = e.fresh();
        let mut map = HashMap::new();
        map.insert(a, av);
        e.encode_cone(&nl, &mut map, &[n]).unwrap();
        // Even chain length: y == a, so y != a must be UNSAT.
        let y = map[&n];
        let d = e.xor(av, y);
        e.solver_mut().add_clause(&[d]);
        assert_eq!(e.solver_mut().solve(), SatResult::Unsat);
    }

    #[test]
    fn unseeded_flop_is_an_error() {
        use synthir_netlist::{Netlist, ResetKind};
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[d],
        );
        let y = nl.add_gate(GateKind::Inv, &[q]);
        nl.add_output("y", &[y]);
        let mut e = CnfEncoder::new();
        let mut map = HashMap::new();
        let err = e.encode_cone(&nl, &mut map, &[y]).unwrap_err();
        assert!(matches!(err, SimError::InvalidNetlist(_)));
    }
}
