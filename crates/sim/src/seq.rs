//! Cycle-accurate sequential simulation.

use crate::comb::CombSim;
use crate::SimError;
use std::collections::HashMap;
use synthir_netlist::{GateId, GateKind, NetId, Netlist, ResetKind};

/// A cycle-accurate simulator for a sequential netlist.
///
/// One `step` = one rising clock edge: combinational logic settles from the
/// current state and inputs, then every flop samples its D pin. Reset is
/// modelled through the netlist's explicit `rst` input (present on designs
/// whose registers declared a reset); [`SeqSim::reset`] forces every flop to
/// its declared init value, which also models power-on for reset-less flops.
///
/// Inputs and outputs are addressed by port name with `u128` bus values.
#[derive(Debug)]
pub struct SeqSim<'nl> {
    nl: &'nl Netlist,
    sim: CombSim,
    flops: Vec<(GateId, NetId)>,
    state: HashMap<NetId, bool>,
}

impl<'nl> SeqSim<'nl> {
    /// Prepares a simulator and applies reset.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the combinational part is
    /// cyclic.
    pub fn new(nl: &'nl Netlist) -> Result<Self, SimError> {
        let sim = CombSim::new(nl)?;
        let flops: Vec<(GateId, NetId)> = nl
            .gates()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(id, g)| (id, g.output))
            .collect();
        let mut s = SeqSim {
            nl,
            sim,
            flops,
            state: HashMap::new(),
        };
        s.reset();
        Ok(s)
    }

    /// Forces every flop to its declared init/reset value.
    pub fn reset(&mut self) {
        self.state.clear();
        for &(id, q) in &self.flops {
            if let GateKind::Dff { init, .. } = self.nl.gate(id).kind {
                self.state.insert(q, init);
            }
        }
    }

    /// Current value of a flop output net.
    pub fn flop_state(&self, q: NetId) -> Option<bool> {
        self.state.get(&q).copied()
    }

    /// Advances one clock cycle with the given input-port values and returns
    /// the output-port values observed *before* the edge (Moore-style
    /// sampling of the settled combinational network).
    ///
    /// Missing inputs default to zero; unknown names are ignored.
    pub fn step(&mut self, inputs: &HashMap<String, u128>) -> HashMap<String, u128> {
        let vals = self.settle(inputs);
        let outputs = self.read_outputs(&vals);
        // Clock edge: sample D pins (with reset semantics from the rst pin).
        let mut next: Vec<(NetId, bool)> = Vec::with_capacity(self.flops.len());
        for &(id, q) in &self.flops {
            let g = self.nl.gate(id);
            let GateKind::Dff { reset, init } = g.kind else {
                continue;
            };
            let d = vals[g.inputs[0].index()] & 1 != 0;
            let v = match reset {
                ResetKind::None => d,
                ResetKind::Sync | ResetKind::Async => {
                    let rst = vals[g.inputs[1].index()] & 1 != 0;
                    if rst {
                        init
                    } else {
                        d
                    }
                }
            };
            next.push((q, v));
        }
        for (q, v) in next {
            self.state.insert(q, v);
        }
        outputs
    }

    /// Evaluates the combinational network without clocking (useful for
    /// Mealy-style output inspection).
    pub fn peek(&self, inputs: &HashMap<String, u128>) -> HashMap<String, u128> {
        let vals = self.settle(inputs);
        self.read_outputs(&vals)
    }

    fn settle(&self, inputs: &HashMap<String, u128>) -> Vec<u64> {
        let mut sources: Vec<(NetId, u64)> = Vec::new();
        for p in self.nl.inputs() {
            let v = inputs.get(&p.name).copied().unwrap_or(0);
            for (i, &n) in p.nets.iter().enumerate() {
                sources.push((n, if v >> i & 1 != 0 { u64::MAX } else { 0 }));
            }
        }
        for (&q, &v) in &self.state {
            sources.push((q, if v { u64::MAX } else { 0 }));
        }
        self.sim.eval_with(self.nl, &sources)
    }

    fn read_outputs(&self, vals: &[u64]) -> HashMap<String, u128> {
        let mut out = HashMap::new();
        for p in self.nl.outputs() {
            let mut v = 0u128;
            for (i, &n) in p.nets.iter().enumerate() {
                if vals[n.index()] & 1 != 0 {
                    v |= 1 << i;
                }
            }
            out.insert(p.name.clone(), v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter2() -> Netlist {
        // 2-bit counter with sync reset.
        let mut nl = Netlist::new("counter2");
        let rst = nl.add_input("rst", 1)[0];
        let q0 = nl.add_net();
        let q1 = nl.add_net();
        let d0 = nl.add_gate(GateKind::Inv, &[q0]);
        let d1 = nl.add_gate(GateKind::Xor2, &[q1, q0]);
        nl.attach_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[d0, rst],
            q0,
        )
        .unwrap();
        nl.attach_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[d1, rst],
            q1,
        )
        .unwrap();
        nl.add_output("count", &[q0, q1]);
        nl
    }

    #[test]
    fn counter_counts() {
        let nl = counter2();
        let mut sim = SeqSim::new(&nl).unwrap();
        let idle = HashMap::new();
        let seq: Vec<u128> = (0..6).map(|_| sim.step(&idle)["count"]).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn sync_reset_clears() {
        let nl = counter2();
        let mut sim = SeqSim::new(&nl).unwrap();
        let idle = HashMap::new();
        sim.step(&idle);
        sim.step(&idle);
        assert_eq!(sim.peek(&idle)["count"], 2);
        let mut rst = HashMap::new();
        rst.insert("rst".to_string(), 1u128);
        sim.step(&rst);
        assert_eq!(sim.peek(&idle)["count"], 0);
    }

    #[test]
    fn reset_restores_init_values() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: true,
            },
            &[d],
        );
        nl.add_output("q", &[q]);
        let mut sim = SeqSim::new(&nl).unwrap();
        let idle = HashMap::new();
        assert_eq!(sim.peek(&idle)["q"], 1);
        sim.step(&idle); // d = 0
        assert_eq!(sim.peek(&idle)["q"], 0);
        sim.reset();
        assert_eq!(sim.peek(&idle)["q"], 1);
    }

    #[test]
    fn moore_sampling_is_pre_edge() {
        let nl = counter2();
        let mut sim = SeqSim::new(&nl).unwrap();
        let idle = HashMap::new();
        // The value returned by the first step is the reset state.
        assert_eq!(sim.step(&idle)["count"], 0);
    }
}
