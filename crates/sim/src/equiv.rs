//! Equivalence checking between designs.
//!
//! The central soundness check of the whole methodology: a partially
//! evaluated (specialized) design must be input/output-equivalent to the
//! flexible design it came from, with the flexible design's configuration
//! inputs bound to the programmed values.

use crate::comb::CombSim;
use crate::seq::SeqSim;
use crate::SimError;
use std::collections::HashMap;
use synthir_logic::{Bdd, BddRef};
use synthir_netlist::{NetId, Netlist};

/// Options for equivalence checking.
#[derive(Clone, Debug, Default)]
pub struct EquivOptions {
    /// Constant bindings applied to inputs of either design (by port name).
    /// Ports bound here are excluded from the shared interface.
    pub bind_left: HashMap<String, u128>,
    /// Constant bindings for the right design.
    pub bind_right: HashMap<String, u128>,
    /// Number of random pattern words (64 patterns each) for random checks.
    pub random_words: usize,
    /// Number of clock cycles per sequential run.
    pub cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl EquivOptions {
    /// Reasonable defaults: 64 random words (4096 patterns), 256 cycles.
    pub fn new() -> Self {
        EquivOptions {
            bind_left: HashMap::new(),
            bind_right: HashMap::new(),
            random_words: 64,
            cycles: 256,
            seed: 0x5EED,
        }
    }
}

/// A distinguishing input found by an equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Input values by port name.
    pub inputs: HashMap<String, u128>,
    /// The output port that differs.
    pub output: String,
    /// Value produced by the left design.
    pub left: u128,
    /// Value produced by the right design.
    pub right: u128,
}

/// The verdict of an equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub enum EquivResult {
    /// No difference found (proof for exhaustive/BDD modes, high confidence
    /// for random modes).
    Equivalent,
    /// A concrete counterexample.
    Inequivalent(Box<Counterexample>),
}

impl EquivResult {
    /// Whether the verdict is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

struct Interface {
    /// Shared free inputs: (name, width).
    inputs: Vec<(String, usize)>,
    /// Shared outputs: (name, width).
    outputs: Vec<(String, usize)>,
}

fn shared_interface(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<Interface, SimError> {
    let mut inputs = Vec::new();
    for p in left.inputs() {
        if opts.bind_left.contains_key(&p.name) {
            continue;
        }
        match right.input(&p.name) {
            Ok(rp) if rp.nets.len() == p.nets.len() => {
                inputs.push((p.name.clone(), p.nets.len()));
            }
            Ok(_) => {
                return Err(SimError::PortMismatch {
                    context: format!("input `{}` width differs", p.name),
                })
            }
            Err(_) => {
                return Err(SimError::PortMismatch {
                    context: format!("input `{}` missing on right design", p.name),
                })
            }
        }
    }
    for p in right.inputs() {
        if opts.bind_right.contains_key(&p.name) {
            continue;
        }
        if !inputs.iter().any(|(n, _)| n == &p.name) {
            return Err(SimError::PortMismatch {
                context: format!("input `{}` missing on left design", p.name),
            });
        }
    }
    let mut outputs = Vec::new();
    for p in left.outputs() {
        if let Ok(rp) = right.output(&p.name) {
            if rp.nets.len() != p.nets.len() {
                return Err(SimError::PortMismatch {
                    context: format!("output `{}` width differs", p.name),
                });
            }
            outputs.push((p.name.clone(), p.nets.len()));
        }
    }
    if outputs.is_empty() {
        return Err(SimError::PortMismatch {
            context: "no common outputs".into(),
        });
    }
    Ok(Interface { inputs, outputs })
}

/// Checks combinational equivalence.
///
/// Uses BDD-based exact checking when the shared interface has at most 24
/// input bits, exhaustive simulation up to 16 bits as a cross-check, and
/// random simulation beyond that.
///
/// # Errors
///
/// Returns [`SimError`] for invalid netlists or incompatible interfaces.
pub fn check_comb_equiv(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let iface = shared_interface(left, right, opts)?;
    let total_bits: usize = iface.inputs.iter().map(|(_, w)| w).sum();
    if total_bits <= 24 {
        check_comb_bdd(left, right, &iface, opts)
    } else {
        check_comb_random(left, right, &iface, opts)
    }
}

fn net_bdd(
    nl: &Netlist,
    bdd: &mut Bdd,
    input_vars: &HashMap<NetId, u32>,
    cache: &mut HashMap<NetId, BddRef>,
    net: NetId,
) -> BddRef {
    if let Some(&r) = cache.get(&net) {
        return r;
    }
    let r = if let Some(&v) = input_vars.get(&net) {
        bdd.var(v)
    } else if let Some(g) = nl.driver(net) {
        let gate = nl.gate(g).clone();
        assert!(
            !gate.kind.is_sequential(),
            "combinational equivalence on sequential netlist"
        );
        let ins: Vec<BddRef> = gate
            .inputs
            .iter()
            .map(|&i| net_bdd(nl, bdd, input_vars, cache, i))
            .collect();
        apply_gate(bdd, gate.kind, &ins)
    } else {
        // Undriven non-input net: constant 0.
        BddRef::ZERO
    };
    cache.insert(net, r);
    r
}

fn apply_gate(bdd: &mut Bdd, kind: synthir_netlist::GateKind, ins: &[BddRef]) -> BddRef {
    use synthir_netlist::GateKind::*;
    match kind {
        Const0 => BddRef::ZERO,
        Const1 => BddRef::ONE,
        Buf => ins[0],
        Inv => bdd.not(ins[0]),
        And2 | And3 | And4 => fold(bdd, ins, Bdd::and),
        Or2 | Or3 | Or4 => fold(bdd, ins, Bdd::or),
        Nand2 | Nand3 | Nand4 => {
            let a = fold(bdd, ins, Bdd::and);
            bdd.not(a)
        }
        Nor2 | Nor3 | Nor4 => {
            let a = fold(bdd, ins, Bdd::or);
            bdd.not(a)
        }
        Xor2 => bdd.xor(ins[0], ins[1]),
        Xnor2 => {
            let x = bdd.xor(ins[0], ins[1]);
            bdd.not(x)
        }
        Mux2 => bdd.ite(ins[0], ins[2], ins[1]),
        Aoi21 => {
            let ab = bdd.and(ins[0], ins[1]);
            let o = bdd.or(ab, ins[2]);
            bdd.not(o)
        }
        Oai21 => {
            let ab = bdd.or(ins[0], ins[1]);
            let a = bdd.and(ab, ins[2]);
            bdd.not(a)
        }
        Aoi22 => {
            let ab = bdd.and(ins[0], ins[1]);
            let cd = bdd.and(ins[2], ins[3]);
            let o = bdd.or(ab, cd);
            bdd.not(o)
        }
        Oai22 => {
            let ab = bdd.or(ins[0], ins[1]);
            let cd = bdd.or(ins[2], ins[3]);
            let a = bdd.and(ab, cd);
            bdd.not(a)
        }
        Dff { .. } => unreachable!("checked by caller"),
    }
}

fn fold(bdd: &mut Bdd, ins: &[BddRef], f: fn(&mut Bdd, BddRef, BddRef) -> BddRef) -> BddRef {
    let mut acc = ins[0];
    for &i in &ins[1..] {
        acc = f(bdd, acc, i);
    }
    acc
}

fn assign_vars(
    nl: &Netlist,
    iface: &Interface,
    binds: &HashMap<String, u128>,
    bdd: &mut Bdd,
    var_of: &HashMap<String, u32>,
) -> Result<HashMap<NetId, BddRef>, SimError> {
    let mut seeds: HashMap<NetId, BddRef> = HashMap::new();
    for p in nl.inputs() {
        if let Some(&v) = binds.get(&p.name) {
            for (i, &n) in p.nets.iter().enumerate() {
                seeds.insert(n, bdd.constant(v >> i & 1 != 0));
            }
        } else {
            let base = var_of[&p.name];
            for (i, &n) in p.nets.iter().enumerate() {
                let r = bdd.var(base + i as u32);
                seeds.insert(n, r);
            }
        }
    }
    let _ = iface;
    Ok(seeds)
}

fn check_comb_bdd(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let mut bdd = Bdd::new();
    // Assign shared variable numbers per interface input bit.
    let mut var_of: HashMap<String, u32> = HashMap::new();
    let mut next = 0u32;
    for (name, w) in &iface.inputs {
        var_of.insert(name.clone(), next);
        next += *w as u32;
    }
    let build = |nl: &Netlist,
                 binds: &HashMap<String, u128>,
                 bdd: &mut Bdd|
     -> Result<HashMap<String, Vec<BddRef>>, SimError> {
        let seeds = assign_vars(nl, iface, binds, bdd, &var_of)?;
        let mut cache: HashMap<NetId, BddRef> = seeds;
        // Input nets are cached directly; treat them as "input vars" absent.
        let input_vars: HashMap<NetId, u32> = HashMap::new();
        let mut outs = HashMap::new();
        for p in nl.outputs() {
            let refs: Vec<BddRef> = p
                .nets
                .iter()
                .map(|&n| net_bdd(nl, bdd, &input_vars, &mut cache, n))
                .collect();
            outs.insert(p.name.clone(), refs);
        }
        Ok(outs)
    };
    let louts = build(left, &opts.bind_left, &mut bdd)?;
    let routs = build(right, &opts.bind_right, &mut bdd)?;
    for (name, w) in &iface.outputs {
        let l = &louts[name];
        let r = &routs[name];
        for bit in 0..*w {
            let diff = bdd.xor(l[bit], r[bit]);
            if let Some(m) = bdd.any_sat(diff) {
                // Decode the counterexample.
                let mut inputs = HashMap::new();
                for (iname, iw) in &iface.inputs {
                    let base = var_of[iname];
                    let mut v = 0u128;
                    for i in 0..*iw {
                        if m >> (base + i as u32) & 1 != 0 {
                            v |= 1 << i;
                        }
                    }
                    inputs.insert(iname.clone(), v);
                }
                let eval = |nl: &Netlist, binds: &HashMap<String, u128>| {
                    eval_once(nl, &inputs, binds, name)
                };
                let lv = eval(left, &opts.bind_left);
                let rv = eval(right, &opts.bind_right);
                return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                    inputs,
                    output: name.clone(),
                    left: lv,
                    right: rv,
                })));
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

fn eval_once(
    nl: &Netlist,
    inputs: &HashMap<String, u128>,
    binds: &HashMap<String, u128>,
    output: &str,
) -> u128 {
    let sim = CombSim::new(nl).expect("validated earlier");
    let mut sources: Vec<(NetId, u64)> = Vec::new();
    for p in nl.inputs() {
        let v = binds
            .get(&p.name)
            .or_else(|| inputs.get(&p.name))
            .copied()
            .unwrap_or(0);
        for (i, &n) in p.nets.iter().enumerate() {
            sources.push((n, if v >> i & 1 != 0 { u64::MAX } else { 0 }));
        }
    }
    let vals = sim.eval_with(nl, &sources);
    let port = nl.output(output).expect("output exists");
    let mut v = 0u128;
    for (i, &n) in port.nets.iter().enumerate() {
        if vals[n.index()] & 1 != 0 {
            v |= 1 << i;
        }
    }
    v
}

fn check_comb_random(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let lsim = CombSim::new(left)?;
    let rsim = CombSim::new(right)?;
    let mut rng = SplitMix::new(opts.seed);
    for _ in 0..opts.random_words.max(1) {
        // One random word per interface input bit.
        let mut words: HashMap<(String, usize), u64> = HashMap::new();
        for (name, w) in &iface.inputs {
            for i in 0..*w {
                words.insert((name.clone(), i), rng.next());
            }
        }
        let make_sources = |nl: &Netlist, binds: &HashMap<String, u128>| {
            let mut sources: Vec<(NetId, u64)> = Vec::new();
            for p in nl.inputs() {
                if let Some(&v) = binds.get(&p.name) {
                    for (i, &n) in p.nets.iter().enumerate() {
                        sources.push((n, if v >> i & 1 != 0 { u64::MAX } else { 0 }));
                    }
                } else {
                    for (i, &n) in p.nets.iter().enumerate() {
                        sources.push((n, *words.get(&(p.name.clone(), i)).unwrap_or(&0)));
                    }
                }
            }
            sources
        };
        let lvals = lsim.eval_with(left, &make_sources(left, &opts.bind_left));
        let rvals = rsim.eval_with(right, &make_sources(right, &opts.bind_right));
        for (name, w) in &iface.outputs {
            let lport = left.output(name).expect("exists");
            let rport = right.output(name).expect("exists");
            for bit in 0..*w {
                let lw = lvals[lport.nets[bit].index()];
                let rw = rvals[rport.nets[bit].index()];
                if lw != rw {
                    let k = (lw ^ rw).trailing_zeros() as usize;
                    let mut inputs = HashMap::new();
                    for (iname, iw) in &iface.inputs {
                        let mut v = 0u128;
                        for i in 0..*iw {
                            if words[&(iname.clone(), i)] >> k & 1 != 0 {
                                v |= 1 << i;
                            }
                        }
                        inputs.insert(iname.clone(), v);
                    }
                    let lv = eval_once(left, &inputs, &opts.bind_left, name);
                    let rv = eval_once(right, &inputs, &opts.bind_right, name);
                    return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                        inputs,
                        output: name.clone(),
                        left: lv,
                        right: rv,
                    })));
                }
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// Checks sequential equivalence by resetting both designs and driving them
/// with identical random input sequences, comparing outputs each cycle.
///
/// # Errors
///
/// Returns [`SimError`] for invalid netlists or incompatible interfaces.
pub fn check_seq_equiv(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let iface = shared_interface(left, right, opts)?;
    let mut lsim = SeqSim::new(left)?;
    let mut rsim = SeqSim::new(right)?;
    let mut rng = SplitMix::new(opts.seed);
    for cycle in 0..opts.cycles.max(1) {
        let mut inputs: HashMap<String, u128> = HashMap::new();
        for (name, w) in &iface.inputs {
            if name == "rst" {
                // Keep reset deasserted after the initial state (SeqSim::new
                // already applied reset values).
                inputs.insert(name.clone(), 0);
                continue;
            }
            let mask = if *w >= 128 {
                u128::MAX
            } else {
                (1u128 << w) - 1
            };
            let v = ((rng.next() as u128) << 64 | rng.next() as u128) & mask;
            inputs.insert(name.clone(), v);
        }
        let mut lin = inputs.clone();
        for (k, v) in &opts.bind_left {
            lin.insert(k.clone(), *v);
        }
        let mut rin = inputs.clone();
        for (k, v) in &opts.bind_right {
            rin.insert(k.clone(), *v);
        }
        let lout = lsim.step(&lin);
        let rout = rsim.step(&rin);
        for (name, _) in &iface.outputs {
            if lout[name] != rout[name] {
                let mut cex_inputs = inputs.clone();
                cex_inputs.insert("__cycle".into(), cycle as u128);
                return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                    inputs: cex_inputs,
                    output: name.clone(),
                    left: lout[name],
                    right: rout[name],
                })));
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// Minimal deterministic RNG (SplitMix64).
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::GateKind;

    fn and_module(extra_inv: bool) -> Netlist {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let mut y = nl.add_gate(GateKind::And2, &[a, b]);
        if extra_inv {
            let t = nl.add_gate(GateKind::Inv, &[y]);
            y = nl.add_gate(GateKind::Inv, &[t]);
        }
        nl.add_output("y", &[y]);
        nl
    }

    #[test]
    fn equivalent_designs_pass() {
        let l = and_module(false);
        let r = and_module(true);
        let res = check_comb_equiv(&l, &r, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn inequivalent_designs_yield_counterexample() {
        let l = and_module(false);
        let mut r = Netlist::new("m");
        let a = r.add_input("a", 1)[0];
        let b = r.add_input("b", 1)[0];
        let y = r.add_gate(GateKind::Or2, &[a, b]);
        r.add_output("y", &[y]);
        let res = check_comb_equiv(&l, &r, &EquivOptions::new()).unwrap();
        match res {
            EquivResult::Inequivalent(cex) => {
                assert_ne!(cex.left, cex.right);
                // The counterexample must actually distinguish AND from OR.
                let a = cex.inputs["a"];
                let b = cex.inputs["b"];
                assert_ne!(a & b, a | b);
            }
            EquivResult::Equivalent => panic!("missed inequivalence"),
        }
    }

    #[test]
    fn binding_removes_ports_from_interface() {
        // Left: y = a & cfg. Right: y = a (cfg bound to 1).
        let mut l = Netlist::new("l");
        let a = l.add_input("a", 1)[0];
        let cfg = l.add_input("cfg", 1)[0];
        let y = l.add_gate(GateKind::And2, &[a, cfg]);
        l.add_output("y", &[y]);
        let mut r = Netlist::new("r");
        let a = r.add_input("a", 1)[0];
        let y = r.add_gate(GateKind::Buf, &[a]);
        r.add_output("y", &[y]);

        let mut opts = EquivOptions::new();
        opts.bind_left.insert("cfg".into(), 1);
        let res = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(res.is_equivalent());

        // Bound to 0 the designs differ.
        opts.bind_left.insert("cfg".into(), 0);
        let res = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(!res.is_equivalent());
    }

    #[test]
    fn port_mismatch_detected() {
        let l = and_module(false);
        let mut r = Netlist::new("r");
        let a = r.add_input("a", 1)[0];
        let y = r.add_gate(GateKind::Buf, &[a]);
        r.add_output("y", &[y]);
        assert!(matches!(
            check_comb_equiv(&l, &r, &EquivOptions::new()),
            Err(SimError::PortMismatch { .. })
        ));
    }

    #[test]
    fn sequential_equivalence() {
        use synthir_netlist::ResetKind;
        let build = |invert_twice: bool| {
            let mut nl = Netlist::new("t");
            let rst = nl.add_input("rst", 1)[0];
            let d = nl.add_input("d", 1)[0];
            let mut din = d;
            if invert_twice {
                let t = nl.add_gate(GateKind::Inv, &[din]);
                din = nl.add_gate(GateKind::Inv, &[t]);
            }
            let q = nl.add_gate(
                GateKind::Dff {
                    reset: ResetKind::Sync,
                    init: false,
                },
                &[din, rst],
            );
            nl.add_output("q", &[q]);
            nl
        };
        let res = check_seq_equiv(&build(false), &build(true), &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn sequential_inequivalence_found() {
        use synthir_netlist::ResetKind;
        let build = |init: bool| {
            let mut nl = Netlist::new("t");
            let rst = nl.add_input("rst", 1)[0];
            let d = nl.add_input("d", 1)[0];
            let q = nl.add_gate(
                GateKind::Dff {
                    reset: ResetKind::Sync,
                    init,
                },
                &[d, rst],
            );
            nl.add_output("q", &[q]);
            nl
        };
        let res = check_seq_equiv(&build(false), &build(true), &EquivOptions::new()).unwrap();
        assert!(!res.is_equivalent());
    }
}
