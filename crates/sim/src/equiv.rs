//! Equivalence checking between designs.
//!
//! The central soundness check of the whole methodology: a partially
//! evaluated (specialized) design must be input/output-equivalent to the
//! flexible design it came from, with the flexible design's configuration
//! inputs bound to the programmed values.

use crate::cnf::CnfEncoder;
use crate::comb::CombSim;
use crate::seq::SeqSim;
use crate::SimError;
use std::collections::HashMap;
use synthir_logic::{Bdd, BddRef};
use synthir_netlist::{NetId, Netlist};
use synthir_sat::{Lit, SatResult};

/// The widest shared interface (in input bits) the BDD engine accepts.
pub const BDD_MAX_INPUT_BITS: usize = 24;

/// Which engine performs an equivalence check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EquivEngine {
    /// Pick automatically: BDD up to [`BDD_MAX_INPUT_BITS`] shared input
    /// bits, SAT beyond (combinational); for sequential checks, random
    /// lockstep up to the limit, SAT-based bounded model checking plus
    /// random lockstep beyond.
    #[default]
    Auto,
    /// BDD-based exact checking. Refuses interfaces wider than
    /// [`BDD_MAX_INPUT_BITS`] input bits and sequential checks.
    Bdd,
    /// Random simulation. Finds counterexamples but proves nothing.
    Random,
    /// CDCL SAT on a miter (combinational) or a `k`-cycle unrolling
    /// (sequential bounded model checking). Exact at any width.
    Sat,
}

impl EquivEngine {
    /// Parses an engine name (`auto`, `bdd`, `random`, `sat`).
    pub fn parse(s: &str) -> Option<EquivEngine> {
        match s {
            "auto" => Some(EquivEngine::Auto),
            "bdd" => Some(EquivEngine::Bdd),
            "random" => Some(EquivEngine::Random),
            "sat" => Some(EquivEngine::Sat),
            _ => None,
        }
    }

    /// The canonical engine name.
    pub fn as_str(self) -> &'static str {
        match self {
            EquivEngine::Auto => "auto",
            EquivEngine::Bdd => "bdd",
            EquivEngine::Random => "random",
            EquivEngine::Sat => "sat",
        }
    }
}

impl std::fmt::Display for EquivEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Options for equivalence checking.
#[derive(Clone, Debug)]
pub struct EquivOptions {
    /// Constant bindings applied to inputs of either design (by port name).
    /// Ports bound here are excluded from the shared interface.
    pub bind_left: HashMap<String, u128>,
    /// Constant bindings for the right design.
    pub bind_right: HashMap<String, u128>,
    /// Number of random pattern words (64 patterns each) for random checks.
    pub random_words: usize,
    /// Number of clock cycles per sequential run.
    pub cycles: usize,
    /// RNG seed.
    pub seed: u64,
    /// Engine selection.
    pub engine: EquivEngine,
    /// Unrolling depth for SAT-based sequential checks (bounded model
    /// checking): outputs are compared exactly for this many cycles from
    /// reset.
    pub bmc_depth: usize,
}

impl EquivOptions {
    /// Reasonable defaults: 64 random words (4096 patterns), 256 cycles,
    /// automatic engine selection, 8-cycle BMC unrolling.
    pub fn new() -> Self {
        EquivOptions {
            bind_left: HashMap::new(),
            bind_right: HashMap::new(),
            random_words: 64,
            cycles: 256,
            seed: 0x5EED,
            engine: EquivEngine::Auto,
            bmc_depth: 8,
        }
    }
}

impl Default for EquivOptions {
    /// Identical to [`EquivOptions::new`] — a zero-filled struct would
    /// silently mean "0 random patterns, 1-cycle BMC", which reads as a
    /// much stronger check than it is.
    fn default() -> Self {
        Self::new()
    }
}

/// A distinguishing input found by an equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Input values by port name.
    pub inputs: HashMap<String, u128>,
    /// The output port that differs.
    pub output: String,
    /// Value produced by the left design.
    pub left: u128,
    /// Value produced by the right design.
    pub right: u128,
}

/// The verdict of an equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub enum EquivResult {
    /// No difference found (proof for exhaustive/BDD modes, high confidence
    /// for random modes).
    Equivalent,
    /// A concrete counterexample.
    Inequivalent(Box<Counterexample>),
}

impl EquivResult {
    /// Whether the verdict is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

struct Interface {
    /// Shared free inputs: (name, width).
    inputs: Vec<(String, usize)>,
    /// Shared outputs: (name, width).
    outputs: Vec<(String, usize)>,
}

fn shared_interface(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<Interface, SimError> {
    // Bindings must name real input ports: a typo'd binding would otherwise
    // silently widen the shared interface (the port it meant to tie off
    // stays free), which is a soundness hole for program-then-compare
    // checks. Ports wider than a binding value (128 bits) would silently
    // truncate; reject those too.
    for (binds, nl, side) in [
        (&opts.bind_left, left, "left"),
        (&opts.bind_right, right, "right"),
    ] {
        for name in binds.keys() {
            let port = nl.input(name).map_err(|_| SimError::PortMismatch {
                context: format!("binding names unknown input `{name}` on the {side} design"),
            })?;
            if port.nets.len() > 128 {
                return Err(SimError::BadBinding { name: name.clone() });
            }
        }
    }
    let mut inputs = Vec::new();
    for p in left.inputs() {
        if opts.bind_left.contains_key(&p.name) {
            continue;
        }
        match right.input(&p.name) {
            Ok(rp) if rp.nets.len() == p.nets.len() => {
                inputs.push((p.name.clone(), p.nets.len()));
            }
            Ok(_) => {
                return Err(SimError::PortMismatch {
                    context: format!("input `{}` width differs", p.name),
                })
            }
            Err(_) => {
                return Err(SimError::PortMismatch {
                    context: format!("input `{}` missing on right design", p.name),
                })
            }
        }
    }
    for p in right.inputs() {
        if opts.bind_right.contains_key(&p.name) {
            continue;
        }
        if !inputs.iter().any(|(n, _)| n == &p.name) {
            return Err(SimError::PortMismatch {
                context: format!("input `{}` missing on left design", p.name),
            });
        }
    }
    let mut outputs = Vec::new();
    for p in left.outputs() {
        if let Ok(rp) = right.output(&p.name) {
            if rp.nets.len() != p.nets.len() {
                return Err(SimError::PortMismatch {
                    context: format!("output `{}` width differs", p.name),
                });
            }
            outputs.push((p.name.clone(), p.nets.len()));
        }
    }
    if outputs.is_empty() {
        return Err(SimError::PortMismatch {
            context: "no common outputs".into(),
        });
    }
    Ok(Interface { inputs, outputs })
}

/// Checks combinational equivalence.
///
/// Engine selection follows [`EquivOptions::engine`]:
///
/// * [`EquivEngine::Auto`] — BDD up to [`BDD_MAX_INPUT_BITS`] shared input
///   bits, SAT beyond, so the verdict is a *proof* at any width;
/// * [`EquivEngine::Bdd`] — BDD only; wider interfaces are an
///   [`SimError::EngineLimit`] error rather than a silent downgrade;
/// * [`EquivEngine::Random`] — random simulation (finds bugs, proves
///   nothing);
/// * [`EquivEngine::Sat`] — CDCL SAT on the Tseitin-encoded miter.
///
/// # Errors
///
/// Returns [`SimError`] for invalid netlists, incompatible interfaces,
/// bindings naming unknown or over-wide ports, or an engine that cannot
/// handle the interface.
pub fn check_comb_equiv(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let iface = shared_interface(left, right, opts)?;
    let total_bits: usize = iface.inputs.iter().map(|(_, w)| w).sum();
    match opts.engine {
        EquivEngine::Auto => {
            if total_bits <= BDD_MAX_INPUT_BITS {
                check_comb_bdd(left, right, &iface, opts)
            } else {
                check_comb_sat(left, right, &iface, opts)
            }
        }
        EquivEngine::Bdd => {
            if total_bits <= BDD_MAX_INPUT_BITS {
                check_comb_bdd(left, right, &iface, opts)
            } else {
                Err(SimError::EngineLimit {
                    context: format!(
                        "BDD engine is limited to {BDD_MAX_INPUT_BITS} shared input bits, \
                         interface has {total_bits} (use the sat engine)"
                    ),
                })
            }
        }
        EquivEngine::Random => check_comb_random(left, right, &iface, opts),
        EquivEngine::Sat => check_comb_sat(left, right, &iface, opts),
    }
}

/// Builds the BDD of a net's combinational cone.
///
/// The traversal is the shared [`synthir_netlist::topo::visit_cone`]
/// worklist walk (also behind the CNF/AIG cone imports), not recursion:
/// deep netlists (e.g. a 10k-gate inverter chain) would overflow the call
/// stack with a per-gate recursive descent.
fn net_bdd(
    nl: &Netlist,
    bdd: &mut Bdd,
    input_vars: &HashMap<NetId, u32>,
    cache: &mut HashMap<NetId, BddRef>,
    net: NetId,
) -> BddRef {
    // The cache doubles as the seeded-set (it memoizes across the per-bit
    // calls), so both closures need it: share it through a RefCell.
    let cell = std::cell::RefCell::new(std::mem::take(cache));
    let result: Result<(), std::convert::Infallible> = synthir_netlist::topo::visit_cone(
        nl,
        &[net],
        |n| cell.borrow().contains_key(&n),
        |nl, n, driver| {
            let mut cache = cell.borrow_mut();
            if let Some(&v) = input_vars.get(&n) {
                let r = bdd.var(v);
                cache.insert(n, r);
                return Ok(());
            }
            let Some(g) = driver else {
                // Undriven non-input net: constant 0.
                cache.insert(n, BddRef::ZERO);
                return Ok(());
            };
            let gate = nl.gate(g);
            assert!(
                !gate.kind.is_sequential(),
                "combinational equivalence on sequential netlist"
            );
            let ins: Vec<BddRef> = gate.inputs.iter().map(|i| cache[i]).collect();
            let r = apply_gate(bdd, gate.kind, &ins);
            cache.insert(n, r);
            Ok(())
        },
    );
    let Ok(()) = result;
    *cache = cell.into_inner();
    cache[&net]
}

fn apply_gate(bdd: &mut Bdd, kind: synthir_netlist::GateKind, ins: &[BddRef]) -> BddRef {
    use synthir_netlist::GateKind::*;
    match kind {
        Const0 => BddRef::ZERO,
        Const1 => BddRef::ONE,
        Buf => ins[0],
        Inv => bdd.not(ins[0]),
        And2 | And3 | And4 => fold(bdd, ins, Bdd::and),
        Or2 | Or3 | Or4 => fold(bdd, ins, Bdd::or),
        Nand2 | Nand3 | Nand4 => {
            let a = fold(bdd, ins, Bdd::and);
            bdd.not(a)
        }
        Nor2 | Nor3 | Nor4 => {
            let a = fold(bdd, ins, Bdd::or);
            bdd.not(a)
        }
        Xor2 => bdd.xor(ins[0], ins[1]),
        Xnor2 => {
            let x = bdd.xor(ins[0], ins[1]);
            bdd.not(x)
        }
        Mux2 => bdd.ite(ins[0], ins[2], ins[1]),
        Aoi21 => {
            let ab = bdd.and(ins[0], ins[1]);
            let o = bdd.or(ab, ins[2]);
            bdd.not(o)
        }
        Oai21 => {
            let ab = bdd.or(ins[0], ins[1]);
            let a = bdd.and(ab, ins[2]);
            bdd.not(a)
        }
        Aoi22 => {
            let ab = bdd.and(ins[0], ins[1]);
            let cd = bdd.and(ins[2], ins[3]);
            let o = bdd.or(ab, cd);
            bdd.not(o)
        }
        Oai22 => {
            let ab = bdd.or(ins[0], ins[1]);
            let cd = bdd.or(ins[2], ins[3]);
            let a = bdd.and(ab, cd);
            bdd.not(a)
        }
        Dff { .. } => unreachable!("checked by caller"),
    }
}

fn fold(bdd: &mut Bdd, ins: &[BddRef], f: fn(&mut Bdd, BddRef, BddRef) -> BddRef) -> BddRef {
    let mut acc = ins[0];
    for &i in &ins[1..] {
        acc = f(bdd, acc, i);
    }
    acc
}

fn assign_vars(
    nl: &Netlist,
    iface: &Interface,
    binds: &HashMap<String, u128>,
    bdd: &mut Bdd,
    var_of: &HashMap<String, u32>,
) -> Result<HashMap<NetId, BddRef>, SimError> {
    let mut seeds: HashMap<NetId, BddRef> = HashMap::new();
    for p in nl.inputs() {
        if let Some(&v) = binds.get(&p.name) {
            for (i, &n) in p.nets.iter().enumerate() {
                seeds.insert(n, bdd.constant(v >> i & 1 != 0));
            }
        } else {
            let base = var_of[&p.name];
            for (i, &n) in p.nets.iter().enumerate() {
                let r = bdd.var(base + i as u32);
                seeds.insert(n, r);
            }
        }
    }
    let _ = iface;
    Ok(seeds)
}

fn check_comb_bdd(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let mut bdd = Bdd::new();
    // Assign shared variable numbers per interface input bit.
    let mut var_of: HashMap<String, u32> = HashMap::new();
    let mut next = 0u32;
    for (name, w) in &iface.inputs {
        var_of.insert(name.clone(), next);
        next += *w as u32;
    }
    let build = |nl: &Netlist,
                 binds: &HashMap<String, u128>,
                 bdd: &mut Bdd|
     -> Result<HashMap<String, Vec<BddRef>>, SimError> {
        let seeds = assign_vars(nl, iface, binds, bdd, &var_of)?;
        let mut cache: HashMap<NetId, BddRef> = seeds;
        // Input nets are cached directly; treat them as "input vars" absent.
        let input_vars: HashMap<NetId, u32> = HashMap::new();
        let mut outs = HashMap::new();
        for p in nl.outputs() {
            let refs: Vec<BddRef> = p
                .nets
                .iter()
                .map(|&n| net_bdd(nl, bdd, &input_vars, &mut cache, n))
                .collect();
            outs.insert(p.name.clone(), refs);
        }
        Ok(outs)
    };
    let louts = build(left, &opts.bind_left, &mut bdd)?;
    let routs = build(right, &opts.bind_right, &mut bdd)?;
    for (name, w) in &iface.outputs {
        let l = &louts[name];
        let r = &routs[name];
        for bit in 0..*w {
            let diff = bdd.xor(l[bit], r[bit]);
            if let Some(m) = bdd.any_sat(diff) {
                // Decode the counterexample.
                let mut inputs = HashMap::new();
                for (iname, iw) in &iface.inputs {
                    let base = var_of[iname];
                    let mut v = 0u128;
                    for i in 0..*iw {
                        if m >> (base + i as u32) & 1 != 0 {
                            v |= 1 << i;
                        }
                    }
                    inputs.insert(iname.clone(), v);
                }
                let eval = |nl: &Netlist, binds: &HashMap<String, u128>| {
                    eval_once(nl, &inputs, binds, name)
                };
                let lv = eval(left, &opts.bind_left);
                let rv = eval(right, &opts.bind_right);
                return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                    inputs,
                    output: name.clone(),
                    left: lv,
                    right: rv,
                })));
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

fn eval_once(
    nl: &Netlist,
    inputs: &HashMap<String, u128>,
    binds: &HashMap<String, u128>,
    output: &str,
) -> u128 {
    let sim = CombSim::new(nl).expect("validated earlier");
    let mut sources: Vec<(NetId, u64)> = Vec::new();
    for p in nl.inputs() {
        let v = binds
            .get(&p.name)
            .or_else(|| inputs.get(&p.name))
            .copied()
            .unwrap_or(0);
        for (i, &n) in p.nets.iter().enumerate() {
            sources.push((n, if v >> i & 1 != 0 { u64::MAX } else { 0 }));
        }
    }
    let vals = sim.eval_with(nl, &sources);
    let port = nl.output(output).expect("output exists");
    let mut v = 0u128;
    for (i, &n) in port.nets.iter().enumerate() {
        if vals[n.index()] & 1 != 0 {
            v |= 1 << i;
        }
    }
    v
}

fn check_comb_random(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let lsim = CombSim::new(left)?;
    let rsim = CombSim::new(right)?;
    let mut rng = SplitMix::new(opts.seed);
    for _ in 0..opts.random_words.max(1) {
        // One random word per interface input bit.
        let mut words: HashMap<(String, usize), u64> = HashMap::new();
        for (name, w) in &iface.inputs {
            for i in 0..*w {
                words.insert((name.clone(), i), rng.next());
            }
        }
        let make_sources = |nl: &Netlist, binds: &HashMap<String, u128>| {
            let mut sources: Vec<(NetId, u64)> = Vec::new();
            for p in nl.inputs() {
                if let Some(&v) = binds.get(&p.name) {
                    for (i, &n) in p.nets.iter().enumerate() {
                        sources.push((n, if v >> i & 1 != 0 { u64::MAX } else { 0 }));
                    }
                } else {
                    for (i, &n) in p.nets.iter().enumerate() {
                        sources.push((n, *words.get(&(p.name.clone(), i)).unwrap_or(&0)));
                    }
                }
            }
            sources
        };
        let lvals = lsim.eval_with(left, &make_sources(left, &opts.bind_left));
        let rvals = rsim.eval_with(right, &make_sources(right, &opts.bind_right));
        for (name, w) in &iface.outputs {
            let lport = left.output(name).expect("exists");
            let rport = right.output(name).expect("exists");
            for bit in 0..*w {
                let lw = lvals[lport.nets[bit].index()];
                let rw = rvals[rport.nets[bit].index()];
                if lw != rw {
                    let k = (lw ^ rw).trailing_zeros() as usize;
                    let mut inputs = HashMap::new();
                    for (iname, iw) in &iface.inputs {
                        let mut v = 0u128;
                        for i in 0..*iw {
                            if words[&(iname.clone(), i)] >> k & 1 != 0 {
                                v |= 1 << i;
                            }
                        }
                        inputs.insert(iname.clone(), v);
                    }
                    let lv = eval_once(left, &inputs, &opts.bind_left, name);
                    let rv = eval_once(right, &inputs, &opts.bind_right, name);
                    return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                        inputs,
                        output: name.clone(),
                        left: lv,
                        right: rv,
                    })));
                }
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// Seeds a CNF literal map for a design's primary inputs: bound ports get
/// constant literals, shared ports get the interface literals.
fn seed_inputs(
    nl: &Netlist,
    binds: &HashMap<String, u128>,
    shared: &HashMap<String, Vec<Lit>>,
    enc: &CnfEncoder,
) -> HashMap<NetId, Lit> {
    let mut seeds: HashMap<NetId, Lit> = HashMap::new();
    for p in nl.inputs() {
        if let Some(&v) = binds.get(&p.name) {
            for (i, &n) in p.nets.iter().enumerate() {
                seeds.insert(n, enc.constant(v >> i & 1 != 0));
            }
        } else if let Some(lits) = shared.get(&p.name) {
            for (i, &n) in p.nets.iter().enumerate() {
                seeds.insert(n, lits[i]);
            }
        }
    }
    seeds
}

/// SAT-based exact combinational check: Tseitin-encode both cones over
/// shared input variables, assert the OR of all output differences (the
/// miter), and solve. UNSAT proves equivalence at any interface width.
fn check_comb_sat(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let mut enc = CnfEncoder::new();
    let mut shared: HashMap<String, Vec<Lit>> = HashMap::new();
    for (name, w) in &iface.inputs {
        let lits: Vec<Lit> = (0..*w).map(|_| enc.fresh()).collect();
        shared.insert(name.clone(), lits);
    }
    let encode = |nl: &Netlist,
                  binds: &HashMap<String, u128>,
                  enc: &mut CnfEncoder|
     -> Result<HashMap<String, Vec<Lit>>, SimError> {
        let mut map = seed_inputs(nl, binds, &shared, enc);
        let mut outs = HashMap::new();
        for (name, _) in &iface.outputs {
            let port = nl.output(name).expect("interface output exists");
            enc.encode_cone(nl, &mut map, &port.nets)?;
            let lits: Vec<Lit> = port.nets.iter().map(|n| map[n]).collect();
            outs.insert(name.clone(), lits);
        }
        Ok(outs)
    };
    let louts = encode(left, &opts.bind_left, &mut enc)?;
    let routs = encode(right, &opts.bind_right, &mut enc)?;
    let mut diffs: Vec<Lit> = Vec::new();
    for (name, w) in &iface.outputs {
        for bit in 0..*w {
            let d = enc.xor(louts[name][bit], routs[name][bit]);
            diffs.push(d);
        }
    }
    // The miter: at least one output bit differs.
    enc.solver_mut().add_clause(&diffs);
    match enc.solver_mut().solve() {
        SatResult::Unsat => Ok(EquivResult::Equivalent),
        SatResult::Sat => {
            let mut inputs = HashMap::new();
            for (name, _) in &iface.inputs {
                inputs.insert(name.clone(), enc.model_word(&shared[name]));
            }
            // Replay through the simulator: validates the encoding and
            // pins down which output differs.
            for (name, _) in &iface.outputs {
                let lv = eval_once(left, &inputs, &opts.bind_left, name);
                let rv = eval_once(right, &inputs, &opts.bind_right, name);
                if lv != rv {
                    return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                        inputs,
                        output: name.clone(),
                        left: lv,
                        right: rv,
                    })));
                }
            }
            Err(SimError::InvalidNetlist(
                "internal: SAT counterexample failed simulation replay".into(),
            ))
        }
    }
}

/// SAT-based bounded model check: unroll both designs `depth` cycles from
/// reset over shared per-cycle input variables and assert that some output
/// differs in some cycle. UNSAT proves the designs agree on every input
/// sequence of that length.
fn check_seq_bmc(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
    depth: usize,
) -> Result<EquivResult, SimError> {
    struct Unrolled {
        /// Flop output net -> literal holding the state for the current
        /// cycle.
        state: HashMap<NetId, Lit>,
    }
    let init_state = |nl: &Netlist, enc: &CnfEncoder| -> Unrolled {
        let mut state = HashMap::new();
        for (_, g) in nl.gates() {
            if let synthir_netlist::GateKind::Dff { init, .. } = g.kind {
                state.insert(g.output, enc.constant(init));
            }
        }
        Unrolled { state }
    };
    let mut enc = CnfEncoder::new();
    let mut lstate = init_state(left, &enc);
    let mut rstate = init_state(right, &enc);
    let mut diffs: Vec<Lit> = Vec::new();
    let mut cycle_inputs: Vec<HashMap<String, Vec<Lit>>> = Vec::new();
    for _cycle in 0..depth.max(1) {
        let mut shared: HashMap<String, Vec<Lit>> = HashMap::new();
        for (name, w) in &iface.inputs {
            // Keep reset deasserted after the initial state, matching the
            // random lockstep check and `SeqSim::new`'s applied reset.
            let lits: Vec<Lit> = if name == "rst" {
                (0..*w).map(|_| enc.constant(false)).collect()
            } else {
                (0..*w).map(|_| enc.fresh()).collect()
            };
            shared.insert(name.clone(), lits);
        }
        let step = |nl: &Netlist,
                    binds: &HashMap<String, u128>,
                    st: &mut Unrolled,
                    enc: &mut CnfEncoder|
         -> Result<HashMap<String, Vec<Lit>>, SimError> {
            let mut map = seed_inputs(nl, binds, &shared, enc);
            for (&q, &l) in &st.state {
                map.insert(q, l);
            }
            // Encode everything the cycle needs: the observed outputs plus
            // every flop's data (and reset) cone.
            let mut targets: Vec<NetId> = Vec::new();
            for (name, _) in &iface.outputs {
                targets.extend(nl.output(name).expect("interface output").nets.iter());
            }
            for (_, g) in nl.gates() {
                if g.kind.is_sequential() {
                    targets.extend(g.inputs.iter());
                }
            }
            enc.encode_cone(nl, &mut map, &targets)?;
            let mut outs = HashMap::new();
            for (name, _) in &iface.outputs {
                let port = nl.output(name).expect("interface output");
                outs.insert(
                    name.clone(),
                    port.nets.iter().map(|n| map[n]).collect::<Vec<Lit>>(),
                );
            }
            // Clock edge: next state per flop, with reset semantics.
            let mut next = HashMap::new();
            for (_, g) in nl.gates() {
                if let synthir_netlist::GateKind::Dff { reset, init } = g.kind {
                    let d = map[&g.inputs[0]];
                    let v = match reset {
                        synthir_netlist::ResetKind::None => d,
                        _ => {
                            let rst = map[&g.inputs[1]];
                            let iv = enc.constant(init);
                            enc.ite(rst, iv, d)
                        }
                    };
                    next.insert(g.output, v);
                }
            }
            st.state = next;
            Ok(outs)
        };
        let louts = step(left, &opts.bind_left, &mut lstate, &mut enc)?;
        let routs = step(right, &opts.bind_right, &mut rstate, &mut enc)?;
        for (name, w) in &iface.outputs {
            for bit in 0..*w {
                let d = enc.xor(louts[name][bit], routs[name][bit]);
                diffs.push(d);
            }
        }
        cycle_inputs.push(shared);
    }
    enc.solver_mut().add_clause(&diffs);
    match enc.solver_mut().solve() {
        SatResult::Unsat => Ok(EquivResult::Equivalent),
        SatResult::Sat => {
            // Decode the input sequence and replay it cycle-accurately to
            // find the first differing cycle.
            let sequence: Vec<HashMap<String, u128>> = cycle_inputs
                .iter()
                .map(|shared| {
                    let mut m = HashMap::new();
                    for (name, lits) in shared {
                        m.insert(name.clone(), enc.model_word(lits));
                    }
                    m
                })
                .collect();
            let mut lsim = SeqSim::new(left)?;
            let mut rsim = SeqSim::new(right)?;
            for (cycle, inputs) in sequence.iter().enumerate() {
                let overlay = |binds: &HashMap<String, u128>| {
                    let mut m = inputs.clone();
                    for (k, v) in binds {
                        m.insert(k.clone(), *v);
                    }
                    m
                };
                let lout = lsim.step(&overlay(&opts.bind_left));
                let rout = rsim.step(&overlay(&opts.bind_right));
                for (name, _) in &iface.outputs {
                    if lout[name] != rout[name] {
                        // The failing cycle's inputs under their plain
                        // names (the lockstep checker's convention), plus
                        // the full solver-chosen prefix as `name@cycle` —
                        // without it the mismatch is not reproducible,
                        // since the divergence may need state built up
                        // over earlier cycles.
                        let mut cex_inputs = inputs.clone();
                        cex_inputs.insert("__cycle".into(), cycle as u128);
                        for (t, cyc) in sequence.iter().enumerate().take(cycle + 1) {
                            for (name, v) in cyc {
                                cex_inputs.insert(format!("{name}@{t}"), *v);
                            }
                        }
                        return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                            inputs: cex_inputs,
                            output: name.clone(),
                            left: lout[name],
                            right: rout[name],
                        })));
                    }
                }
            }
            Err(SimError::InvalidNetlist(
                "internal: BMC counterexample failed simulation replay".into(),
            ))
        }
    }
}

/// Checks sequential equivalence by resetting both designs and driving them
/// with identical random input sequences, comparing outputs each cycle.
///
/// Engine selection follows [`EquivOptions::engine`]:
///
/// * [`EquivEngine::Auto`] — random lockstep for narrow interfaces; beyond
///   [`BDD_MAX_INPUT_BITS`] shared input bits (where random stimulus stops
///   covering the space) an exact [`EquivOptions::bmc_depth`]-cycle bounded
///   model check runs first, then random lockstep probes deeper cycles;
/// * [`EquivEngine::Random`] — random lockstep only;
/// * [`EquivEngine::Sat`] — bounded model checking only (exact up to
///   [`EquivOptions::bmc_depth`] cycles);
/// * [`EquivEngine::Bdd`] — unsupported for sequential checks
///   ([`SimError::EngineLimit`]).
///
/// # Errors
///
/// Returns [`SimError`] for invalid netlists or incompatible interfaces.
pub fn check_seq_equiv(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let iface = shared_interface(left, right, opts)?;
    let total_bits: usize = iface.inputs.iter().map(|(_, w)| w).sum();
    match opts.engine {
        EquivEngine::Bdd => {
            return Err(SimError::EngineLimit {
                context: "BDD engine does not support sequential equivalence \
                          (use sat, random or auto)"
                    .into(),
            })
        }
        EquivEngine::Sat => {
            return check_seq_bmc(left, right, &iface, opts, opts.bmc_depth);
        }
        EquivEngine::Auto => {
            if total_bits > BDD_MAX_INPUT_BITS {
                let res = check_seq_bmc(left, right, &iface, opts, opts.bmc_depth)?;
                if !res.is_equivalent() {
                    return Ok(res);
                }
                // Fall through: random lockstep probes beyond the bound.
            }
        }
        EquivEngine::Random => {}
    }
    check_seq_random(left, right, &iface, opts)
}

/// Random lockstep comparison over [`EquivOptions::cycles`] cycles.
fn check_seq_random(
    left: &Netlist,
    right: &Netlist,
    iface: &Interface,
    opts: &EquivOptions,
) -> Result<EquivResult, SimError> {
    let mut lsim = SeqSim::new(left)?;
    let mut rsim = SeqSim::new(right)?;
    let mut rng = SplitMix::new(opts.seed);
    for cycle in 0..opts.cycles.max(1) {
        let mut inputs: HashMap<String, u128> = HashMap::new();
        for (name, w) in &iface.inputs {
            if name == "rst" {
                // Keep reset deasserted after the initial state (SeqSim::new
                // already applied reset values).
                inputs.insert(name.clone(), 0);
                continue;
            }
            let mask = if *w >= 128 {
                u128::MAX
            } else {
                (1u128 << w) - 1
            };
            let v = ((rng.next() as u128) << 64 | rng.next() as u128) & mask;
            inputs.insert(name.clone(), v);
        }
        let mut lin = inputs.clone();
        for (k, v) in &opts.bind_left {
            lin.insert(k.clone(), *v);
        }
        let mut rin = inputs.clone();
        for (k, v) in &opts.bind_right {
            rin.insert(k.clone(), *v);
        }
        let lout = lsim.step(&lin);
        let rout = rsim.step(&rin);
        for (name, _) in &iface.outputs {
            if lout[name] != rout[name] {
                let mut cex_inputs = inputs.clone();
                cex_inputs.insert("__cycle".into(), cycle as u128);
                return Ok(EquivResult::Inequivalent(Box::new(Counterexample {
                    inputs: cex_inputs,
                    output: name.clone(),
                    left: lout[name],
                    right: rout[name],
                })));
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// Minimal deterministic RNG (SplitMix64).
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::GateKind;

    fn and_module(extra_inv: bool) -> Netlist {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let mut y = nl.add_gate(GateKind::And2, &[a, b]);
        if extra_inv {
            let t = nl.add_gate(GateKind::Inv, &[y]);
            y = nl.add_gate(GateKind::Inv, &[t]);
        }
        nl.add_output("y", &[y]);
        nl
    }

    #[test]
    fn equivalent_designs_pass() {
        let l = and_module(false);
        let r = and_module(true);
        let res = check_comb_equiv(&l, &r, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn inequivalent_designs_yield_counterexample() {
        let l = and_module(false);
        let mut r = Netlist::new("m");
        let a = r.add_input("a", 1)[0];
        let b = r.add_input("b", 1)[0];
        let y = r.add_gate(GateKind::Or2, &[a, b]);
        r.add_output("y", &[y]);
        let res = check_comb_equiv(&l, &r, &EquivOptions::new()).unwrap();
        match res {
            EquivResult::Inequivalent(cex) => {
                assert_ne!(cex.left, cex.right);
                // The counterexample must actually distinguish AND from OR.
                let a = cex.inputs["a"];
                let b = cex.inputs["b"];
                assert_ne!(a & b, a | b);
            }
            EquivResult::Equivalent => panic!("missed inequivalence"),
        }
    }

    #[test]
    fn binding_removes_ports_from_interface() {
        // Left: y = a & cfg. Right: y = a (cfg bound to 1).
        let mut l = Netlist::new("l");
        let a = l.add_input("a", 1)[0];
        let cfg = l.add_input("cfg", 1)[0];
        let y = l.add_gate(GateKind::And2, &[a, cfg]);
        l.add_output("y", &[y]);
        let mut r = Netlist::new("r");
        let a = r.add_input("a", 1)[0];
        let y = r.add_gate(GateKind::Buf, &[a]);
        r.add_output("y", &[y]);

        let mut opts = EquivOptions::new();
        opts.bind_left.insert("cfg".into(), 1);
        let res = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(res.is_equivalent());

        // Bound to 0 the designs differ.
        opts.bind_left.insert("cfg".into(), 0);
        let res = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(!res.is_equivalent());
    }

    #[test]
    fn port_mismatch_detected() {
        let l = and_module(false);
        let mut r = Netlist::new("r");
        let a = r.add_input("a", 1)[0];
        let y = r.add_gate(GateKind::Buf, &[a]);
        r.add_output("y", &[y]);
        assert!(matches!(
            check_comb_equiv(&l, &r, &EquivOptions::new()),
            Err(SimError::PortMismatch { .. })
        ));
    }

    #[test]
    fn sequential_equivalence() {
        use synthir_netlist::ResetKind;
        let build = |invert_twice: bool| {
            let mut nl = Netlist::new("t");
            let rst = nl.add_input("rst", 1)[0];
            let d = nl.add_input("d", 1)[0];
            let mut din = d;
            if invert_twice {
                let t = nl.add_gate(GateKind::Inv, &[din]);
                din = nl.add_gate(GateKind::Inv, &[t]);
            }
            let q = nl.add_gate(
                GateKind::Dff {
                    reset: ResetKind::Sync,
                    init: false,
                },
                &[din, rst],
            );
            nl.add_output("q", &[q]);
            nl
        };
        let res = check_seq_equiv(&build(false), &build(true), &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
    }

    #[test]
    fn unknown_bind_name_is_rejected() {
        let l = and_module(false);
        let r = and_module(true);
        let mut opts = EquivOptions::new();
        opts.bind_left.insert("cfg_typo".into(), 1);
        let err = check_comb_equiv(&l, &r, &opts).unwrap_err();
        assert!(
            matches!(&err, SimError::PortMismatch { context } if context.contains("cfg_typo")),
            "{err:?}"
        );
        // Same validation on the right side and for sequential checks.
        let mut opts = EquivOptions::new();
        opts.bind_right.insert("nope".into(), 0);
        assert!(check_comb_equiv(&l, &r, &opts).is_err());
        assert!(check_seq_equiv(&l, &r, &opts).is_err());
    }

    #[test]
    fn over_wide_binding_is_rejected() {
        let build = || {
            let mut nl = Netlist::new("w");
            let a = nl.add_input("a", 1)[0];
            let wide = nl.add_input("wide", 130);
            let y = nl.add_gate(GateKind::And2, &[a, wide[129]]);
            nl.add_output("y", &[y]);
            nl
        };
        let l = build();
        let r = build();
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        opts.bind_left.insert("wide".into(), 1);
        opts.bind_right.insert("wide".into(), 1);
        let err = check_comb_equiv(&l, &r, &opts).unwrap_err();
        assert!(
            matches!(&err, SimError::BadBinding { name } if name == "wide"),
            "{err:?}"
        );
    }

    #[test]
    fn sat_engine_matches_bdd_on_small_designs() {
        let l = and_module(false);
        let r = and_module(true);
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        assert!(check_comb_equiv(&l, &r, &opts).unwrap().is_equivalent());

        let mut r2 = Netlist::new("m");
        let a = r2.add_input("a", 1)[0];
        let b = r2.add_input("b", 1)[0];
        let y = r2.add_gate(GateKind::Or2, &[a, b]);
        r2.add_output("y", &[y]);
        match check_comb_equiv(&l, &r2, &opts).unwrap() {
            EquivResult::Inequivalent(cex) => {
                let a = cex.inputs["a"];
                let b = cex.inputs["b"];
                assert_ne!(a & b, a | b, "cex must distinguish AND from OR");
                assert_ne!(cex.left, cex.right);
            }
            EquivResult::Equivalent => panic!("missed inequivalence"),
        }
    }

    /// A wide (>24-bit) interface: Auto and Sat prove it, Bdd refuses.
    #[test]
    fn wide_interfaces_use_sat_and_bdd_refuses() {
        let wide = |extra_inv: bool| {
            // y = parity-ish AND/OR tree over 32 inputs, 1 bit each.
            let mut nl = Netlist::new("wide");
            let mut nets = Vec::new();
            for i in 0..32 {
                nets.push(nl.add_input(format!("i{i}"), 1)[0]);
            }
            let mut acc = nets[0];
            for (i, &n) in nets.iter().enumerate().skip(1) {
                acc = if i % 3 == 0 {
                    nl.add_gate(GateKind::Xor2, &[acc, n])
                } else if i % 3 == 1 {
                    nl.add_gate(GateKind::And2, &[acc, n])
                } else {
                    nl.add_gate(GateKind::Or2, &[acc, n])
                };
            }
            if extra_inv {
                let t = nl.add_gate(GateKind::Inv, &[acc]);
                acc = nl.add_gate(GateKind::Inv, &[t]);
            }
            nl.add_output("y", &[acc]);
            nl
        };
        let l = wide(false);
        let r = wide(true);
        // Auto routes to SAT and proves it.
        let res = check_comb_equiv(&l, &r, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
        // So does asking for SAT explicitly.
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        let res = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(res.is_equivalent());
        // Bdd refuses instead of silently downgrading.
        opts.engine = EquivEngine::Bdd;
        let err = check_comb_equiv(&l, &r, &opts).unwrap_err();
        assert!(matches!(err, SimError::EngineLimit { .. }), "{err:?}");
    }

    /// SAT finds a concrete counterexample on a wide inequivalent pair.
    #[test]
    fn wide_inequivalence_is_found() {
        let build = |flip_last: bool| {
            let mut nl = Netlist::new("wide");
            let x = nl.add_input("x", 30);
            let mut acc = x[0];
            for &n in &x[1..] {
                acc = nl.add_gate(GateKind::Xor2, &[acc, n]);
            }
            if flip_last {
                acc = nl.add_gate(GateKind::Inv, &[acc]);
            }
            nl.add_output("y", &[acc]);
            nl
        };
        let l = build(false);
        let r = build(true);
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        match check_comb_equiv(&l, &r, &opts).unwrap() {
            EquivResult::Inequivalent(cex) => {
                assert_eq!(cex.output, "y");
                assert_ne!(cex.left, cex.right);
            }
            EquivResult::Equivalent => panic!("missed wide inequivalence"),
        }
    }

    /// Regression: a ~10k-gate inverter chain must not overflow the stack
    /// in either the BDD or the SAT cone walk.
    #[test]
    fn deep_netlists_do_not_overflow_the_stack() {
        let chain = |n: usize| {
            let mut nl = Netlist::new("chain");
            let a = nl.add_input("a", 1)[0];
            let mut net = a;
            for _ in 0..n {
                net = nl.add_gate(GateKind::Inv, &[net]);
            }
            nl.add_output("y", &[net]);
            nl
        };
        let l = chain(10_000);
        let r = chain(10_002);
        // BDD path (1-bit interface).
        let res = check_comb_equiv(&l, &r, &EquivOptions::new()).unwrap();
        assert!(res.is_equivalent());
        // SAT path.
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        let res = check_comb_equiv(&l, &r, &opts).unwrap();
        assert!(res.is_equivalent());
        // Odd-length chain differs.
        let odd = chain(10_001);
        let res = check_comb_equiv(&l, &odd, &opts).unwrap();
        assert!(!res.is_equivalent());
    }

    #[test]
    fn bmc_proves_and_refutes_sequential_designs() {
        use synthir_netlist::ResetKind;
        let build = |init: bool, double_inv: bool| {
            let mut nl = Netlist::new("t");
            let rst = nl.add_input("rst", 1)[0];
            let d = nl.add_input("d", 1)[0];
            let mut din = d;
            if double_inv {
                let t = nl.add_gate(GateKind::Inv, &[din]);
                din = nl.add_gate(GateKind::Inv, &[t]);
            }
            let q = nl.add_gate(
                GateKind::Dff {
                    reset: ResetKind::Sync,
                    init,
                },
                &[din, rst],
            );
            nl.add_output("q", &[q]);
            nl
        };
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Sat;
        let res = check_seq_equiv(&build(false, false), &build(false, true), &opts).unwrap();
        assert!(res.is_equivalent());
        // Different init values show up at cycle 0 (Moore sampling).
        match check_seq_equiv(&build(false, false), &build(true, false), &opts).unwrap() {
            EquivResult::Inequivalent(cex) => {
                assert_eq!(cex.inputs["__cycle"], 0);
                assert_eq!(cex.output, "q");
            }
            EquivResult::Equivalent => panic!("missed init difference"),
        }
        // A difference that needs one transition: same init, inverted D.
        let mut inv_d = Netlist::new("t");
        let rst = inv_d.add_input("rst", 1)[0];
        let d = inv_d.add_input("d", 1)[0];
        let din = inv_d.add_gate(GateKind::Inv, &[d]);
        let q = inv_d.add_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[din, rst],
        );
        inv_d.add_output("q", &[q]);
        match check_seq_equiv(&build(false, false), &inv_d, &opts).unwrap() {
            EquivResult::Inequivalent(cex) => {
                assert!(cex.inputs["__cycle"] >= 1, "{cex:?}");
                // The full input prefix must be reported (`name@cycle`),
                // otherwise the mismatch is not reproducible.
                assert!(cex.inputs.contains_key("d@0"), "{cex:?}");
            }
            EquivResult::Equivalent => panic!("missed D inversion"),
        }
    }

    #[test]
    fn bdd_engine_refuses_sequential() {
        use synthir_netlist::ResetKind;
        let mut nl = Netlist::new("t");
        let rst = nl.add_input("rst", 1)[0];
        let d = nl.add_input("d", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[d, rst],
        );
        nl.add_output("q", &[q]);
        let mut opts = EquivOptions::new();
        opts.engine = EquivEngine::Bdd;
        let err = check_seq_equiv(&nl, &nl.clone(), &opts).unwrap_err();
        assert!(matches!(err, SimError::EngineLimit { .. }));
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [
            EquivEngine::Auto,
            EquivEngine::Bdd,
            EquivEngine::Random,
            EquivEngine::Sat,
        ] {
            assert_eq!(EquivEngine::parse(e.as_str()), Some(e));
        }
        assert_eq!(EquivEngine::parse("bogus"), None);
        assert_eq!(EquivEngine::default(), EquivEngine::Auto);
    }

    #[test]
    fn sequential_inequivalence_found() {
        use synthir_netlist::ResetKind;
        let build = |init: bool| {
            let mut nl = Netlist::new("t");
            let rst = nl.add_input("rst", 1)[0];
            let d = nl.add_input("d", 1)[0];
            let q = nl.add_gate(
                GateKind::Dff {
                    reset: ResetKind::Sync,
                    init,
                },
                &[d, rst],
            );
            nl.add_output("q", &[q]);
            nl
        };
        let res = check_seq_equiv(&build(false), &build(true), &EquivOptions::new()).unwrap();
        assert!(!res.is_equivalent());
    }
}
