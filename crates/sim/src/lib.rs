//! # synthir-sim
//!
//! Netlist simulation and equivalence checking.
//!
//! The paper's methodology silently assumes that partial evaluation is
//! *sound*: the specialized controller must behave identically to the
//! flexible controller programmed with the same table. This crate makes that
//! check explicit:
//!
//! * [`CombSim`] — bit-parallel (64 patterns/word) combinational evaluation,
//! * [`SeqSim`] — cycle-accurate sequential simulation with reset handling,
//! * [`equiv`] — random, BDD- and SAT-based combinational equivalence, plus
//!   sequential equivalence (random lockstep and SAT-based bounded model
//!   checking) under input bindings (used to check a specialized design
//!   against its flexible parent with the configuration port tied to the
//!   table being specialized),
//! * [`cnf`] — the Tseitin netlist-to-CNF encoder behind the SAT engine.
//!
//! ## Example
//!
//! ```
//! use synthir_netlist::{GateKind, Netlist};
//! use synthir_sim::CombSim;
//!
//! let mut nl = Netlist::new("andg");
//! let a = nl.add_input("a", 1)[0];
//! let b = nl.add_input("b", 1)[0];
//! let y = nl.add_gate(GateKind::And2, &[a, b]);
//! nl.add_output("y", &[y]);
//!
//! let sim = CombSim::new(&nl).unwrap();
//! let vals = sim.eval_with(&nl, &[(a, 0b1100), (b, 0b1010)]);
//! assert_eq!(vals[y.index()] & 0b1111, 0b1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod comb;
pub mod equiv;
pub mod seq;
pub mod vcd;

pub use comb::{CombSim, CombSimBound};
pub use equiv::{
    check_comb_equiv, check_seq_equiv, Counterexample, EquivEngine, EquivOptions, EquivResult,
    BDD_MAX_INPUT_BITS,
};
pub use seq::SeqSim;

/// Errors produced by simulation and equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The netlist failed validation (e.g. a combinational cycle).
    InvalidNetlist(String),
    /// The two designs' port interfaces are incompatible.
    PortMismatch {
        /// Explanation of the incompatibility.
        context: String,
    },
    /// A bound input was not found or has the wrong width.
    BadBinding {
        /// The offending binding's signal name.
        name: String,
    },
    /// The selected equivalence engine cannot handle the problem.
    EngineLimit {
        /// What the engine cannot do.
        context: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidNetlist(e) => write!(f, "invalid netlist: {e}"),
            SimError::PortMismatch { context } => write!(f, "port mismatch: {context}"),
            SimError::BadBinding { name } => write!(f, "bad binding for `{name}`"),
            SimError::EngineLimit { context } => write!(f, "engine limit: {context}"),
        }
    }
}

impl std::error::Error for SimError {}
