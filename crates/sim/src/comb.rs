//! Bit-parallel combinational simulation.

use crate::SimError;
use synthir_netlist::{topo, GateId, NetId, Netlist};

/// A prepared combinational simulator over a netlist.
///
/// Evaluates all combinational gates in topological order with 64 patterns
/// packed per word. Sequential gate outputs (flop Q pins) are treated as
/// *sources*: their values must be supplied alongside the primary inputs
/// (or default to 0).
#[derive(Debug, Clone)]
pub struct CombSim {
    order: Vec<GateId>,
    num_nets: usize,
}

impl CombSim {
    /// Prepares a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the combinational part is
    /// cyclic.
    pub fn new(nl: &Netlist) -> Result<Self, SimError> {
        let order =
            topo::topological_order(nl).map_err(|e| SimError::InvalidNetlist(e.to_string()))?;
        Ok(CombSim {
            order,
            num_nets: nl.num_nets(),
        })
    }

    /// Evaluates every net for 64 packed patterns given source values.
    ///
    /// `sources` assigns pattern words to source nets (primary inputs and
    /// flop outputs); unassigned sources evaluate to all-zero. The caller
    /// must pass the same netlist the simulator was built from.
    pub fn eval_with(&self, nl: &Netlist, sources: &[(NetId, u64)]) -> Vec<u64> {
        let mut vals = vec![0u64; self.num_nets];
        for &(n, v) in sources {
            vals[n.index()] = v;
        }
        let mut ins: Vec<u64> = Vec::with_capacity(4);
        for &g in &self.order {
            let gate = nl.gate(g);
            if gate.kind.is_sequential() {
                continue;
            }
            ins.clear();
            ins.extend(gate.inputs.iter().map(|i| vals[i.index()]));
            vals[gate.output.index()] = gate.kind.eval_words(&ins);
        }
        vals
    }
}

/// A simulator bound to a borrowed netlist, offering the ergonomic
/// [`CombSimBound::eval`].
#[derive(Debug)]
pub struct CombSimBound<'nl> {
    sim: CombSim,
    nl: &'nl Netlist,
}

impl<'nl> CombSimBound<'nl> {
    /// Prepares a bound simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the combinational part is
    /// cyclic.
    pub fn new(nl: &'nl Netlist) -> Result<Self, SimError> {
        Ok(CombSimBound {
            sim: CombSim::new(nl)?,
            nl,
        })
    }

    /// Evaluates every net for 64 packed patterns given source values.
    pub fn eval(&self, sources: &[(NetId, u64)]) -> Vec<u64> {
        self.sim.eval_with(self.nl, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::GateKind;

    #[test]
    fn evaluates_patterns_in_parallel() {
        let mut nl = Netlist::new("maj");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let c = nl.add_input("c", 1)[0];
        let ab = nl.add_gate(GateKind::And2, &[a, b]);
        let bc = nl.add_gate(GateKind::And2, &[b, c]);
        let ac = nl.add_gate(GateKind::And2, &[a, c]);
        let t = nl.add_gate(GateKind::Or2, &[ab, bc]);
        let y = nl.add_gate(GateKind::Or2, &[t, ac]);
        nl.add_output("y", &[y]);

        let sim = CombSimBound::new(&nl).unwrap();
        // All 8 minterms in one word: bit k of each input word = minterm k.
        let aw = 0b10101010u64;
        let bw = 0b11001100u64;
        let cw = 0b11110000u64;
        let vals = sim.eval(&[(a, aw), (b, bw), (c, cw)]);
        let y = vals[y.index()] & 0xFF;
        // Majority: minterms 3,5,6,7.
        assert_eq!(y, 0b11101000);
    }

    #[test]
    fn unassigned_sources_default_to_zero() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 1)[0];
        let b = nl.add_input("b", 1)[0];
        let y = nl.add_gate(GateKind::Or2, &[a, b]);
        nl.add_output("y", &[y]);
        let sim = CombSimBound::new(&nl).unwrap();
        let vals = sim.eval(&[(a, u64::MAX)]);
        assert_eq!(vals[y.index()], u64::MAX);
        let vals = sim.eval(&[]);
        assert_eq!(vals[y.index()], 0);
    }

    #[test]
    fn flop_outputs_are_sources() {
        use synthir_netlist::ResetKind;
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 1)[0];
        let q = nl.add_gate(
            GateKind::Dff {
                reset: ResetKind::None,
                init: false,
            },
            &[d],
        );
        let y = nl.add_gate(GateKind::Inv, &[q]);
        nl.add_output("y", &[y]);
        let sim = CombSimBound::new(&nl).unwrap();
        let vals = sim.eval(&[(q, 0b01)]);
        assert_eq!(vals[y.index()] & 0b11, 0b10);
    }
}
