//! VCD (value change dump) waveform export.
//!
//! Records the port activity of a [`crate::SeqSim`] run into the standard
//! IEEE 1364 VCD text format, viewable with GTKWave and friends — the
//! debugging loop a real controller bring-up needs.

use crate::seq::SeqSim;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A VCD recorder over a sequential simulation.
///
/// # Examples
///
/// ```
/// use synthir_netlist::{GateKind, Netlist};
/// use synthir_sim::{SeqSim, vcd::VcdRecorder};
/// use std::collections::HashMap;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a", 1)[0];
/// let y = nl.add_gate(GateKind::Inv, &[a]);
/// nl.add_output("y", &[y]);
/// let mut sim = SeqSim::new(&nl)?;
/// let mut rec = VcdRecorder::new(&nl, "1ns");
/// for v in [0u128, 1, 1, 0] {
///     let mut inputs = HashMap::new();
///     inputs.insert("a".to_string(), v);
///     let outputs = sim.step(&inputs);
///     rec.sample(&inputs, &outputs);
/// }
/// let text = rec.finish();
/// assert!(text.contains("$var"));
/// assert!(text.contains("#3"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VcdRecorder {
    header: String,
    body: String,
    ids: Vec<(String, usize, String)>,
    last: HashMap<String, u128>,
    time: u64,
}

impl VcdRecorder {
    /// Creates a recorder for the netlist's ports with the given timescale.
    pub fn new(nl: &synthir_netlist::Netlist, timescale: &str) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$timescale {timescale} $end");
        let _ = writeln!(header, "$scope module {} $end", nl.name());
        let mut ids = Vec::new();
        let mut code = 33u8; // '!'
        for p in nl.inputs().iter().chain(nl.outputs()) {
            let id = (code as char).to_string();
            code = code.wrapping_add(1).clamp(33, 126);
            let _ = writeln!(header, "$var wire {} {} {} $end", p.nets.len(), id, p.name);
            ids.push((p.name.clone(), p.nets.len(), id));
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        VcdRecorder {
            header,
            body: String::new(),
            ids,
            last: HashMap::new(),
            time: 0,
        }
    }

    /// Records one cycle of port values (missing names hold their previous
    /// value; unknown names are ignored).
    pub fn sample(&mut self, inputs: &HashMap<String, u128>, outputs: &HashMap<String, u128>) {
        let mut emitted_time = false;
        for (name, width, id) in &self.ids {
            let v = inputs
                .get(name)
                .or_else(|| outputs.get(name))
                .copied()
                .or_else(|| self.last.get(name).copied())
                .unwrap_or(0);
            if self.last.get(name) == Some(&v) {
                continue;
            }
            if !emitted_time {
                let _ = writeln!(self.body, "#{}", self.time);
                emitted_time = true;
            }
            if *width == 1 {
                let _ = writeln!(self.body, "{}{}", v & 1, id);
            } else {
                let mut bits = String::new();
                for b in (0..*width).rev() {
                    bits.push(if v >> b & 1 != 0 { '1' } else { '0' });
                }
                let _ = writeln!(self.body, "b{bits} {id}");
            }
            self.last.insert(name.clone(), v);
        }
        self.time += 1;
    }

    /// Finalizes and returns the VCD text.
    pub fn finish(mut self) -> String {
        let _ = writeln!(self.body, "#{}", self.time);
        format!("{}{}", self.header, self.body)
    }
}

/// Convenience: runs `cycles` steps with the provided input function and
/// returns the VCD text.
pub fn record_run(
    nl: &synthir_netlist::Netlist,
    cycles: usize,
    mut inputs_at: impl FnMut(usize) -> HashMap<String, u128>,
) -> Result<String, crate::SimError> {
    let mut sim = SeqSim::new(nl)?;
    let mut rec = VcdRecorder::new(nl, "1ns");
    for cycle in 0..cycles {
        let inputs = inputs_at(cycle);
        let outputs = sim.step(&inputs);
        rec.sample(&inputs, &outputs);
    }
    Ok(rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_netlist::{GateKind, Netlist, ResetKind};

    fn counter() -> Netlist {
        let mut nl = Netlist::new("cnt");
        let rst = nl.add_input("rst", 1)[0];
        let q0 = nl.add_net();
        let d0 = nl.add_gate(GateKind::Inv, &[q0]);
        nl.attach_gate(
            GateKind::Dff {
                reset: ResetKind::Sync,
                init: false,
            },
            &[d0, rst],
            q0,
        )
        .unwrap();
        nl.add_output("q", &[q0]);
        nl
    }

    #[test]
    fn header_declares_ports() {
        let nl = counter();
        let text = record_run(&nl, 4, |_| HashMap::new()).unwrap();
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains(" rst "));
        assert!(text.contains(" q "));
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn records_toggles() {
        let nl = counter();
        let text = record_run(&nl, 4, |_| HashMap::new()).unwrap();
        // The counter output toggles each cycle, so every timestamp appears.
        for t in 0..4 {
            assert!(text.contains(&format!("#{t}")), "missing #{t} in:\n{text}");
        }
    }

    #[test]
    fn unchanged_values_are_not_re_emitted() {
        let nl = counter();
        // Hold reset: q stays 0 after the first sample.
        let text = record_run(&nl, 5, |_| {
            let mut m = HashMap::new();
            m.insert("rst".to_string(), 1u128);
            m
        })
        .unwrap();
        let q_changes = text.lines().filter(|l| l.ends_with('"')).count();
        let _ = q_changes; // identifier may not be '"'; count changes instead:
        let value_lines = text
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .count();
        // rst 1 once, q 0 once => 2 single-bit change lines.
        assert_eq!(value_lines, 2, "{text}");
    }

    #[test]
    fn multibit_buses_use_binary_format() {
        let mut nl = Netlist::new("bus");
        let a = nl.add_input("a", 3);
        nl.add_output("y", &a);
        let text = record_run(&nl, 2, |c| {
            let mut m = HashMap::new();
            m.insert("a".to_string(), if c == 0 { 0b101 } else { 0b010 });
            m
        })
        .unwrap();
        assert!(text.contains("b101 "), "{text}");
        assert!(text.contains("b010 "), "{text}");
    }
}
