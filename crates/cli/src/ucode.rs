//! `synthir ucode` — textual microcode to a synthesized sequencer.
//!
//! A `.uasm` file declares its microinstruction format inline and then
//! holds the program in the [`synthir_core::asm`] assembler syntax:
//!
//! ```text
//! .field engine onehot 4   ; one-hot field with 4 lanes
//! .field burst 3           ; 3-bit binary field
//! .field irq 1
//! .cond start              ; condition input 0
//! .cond more               ; condition input 1
//!
//! idle:  nop | jnz start, copy
//!        jmp idle
//! copy:  set engine=0b0001, burst=7 | jnz more, copy
//!        set irq=1 | jmp idle
//! ```
//!
//! The program is assembled, lowered to a microcode-sequencer module
//! (bound or flexible store), synthesized, and emitted as Verilog — the
//! "design flows continue using existing microprogramming tools" workflow
//! the paper argues for, as one command.

use crate::args::Args;
use crate::report::{render, ReportOptions};
use crate::{design_name, CliError, CmdResult};
use synthir_core::asm::{assemble, disassemble};
use synthir_core::sequencer::{generate, SequencerOptions};
use synthir_core::{Field, MicroProgram, MicrocodeFormat};
use synthir_netlist::{verilog, Library};
use synthir_rtl::elaborate;
use synthir_synth::{flow::compile, SynthOptions};

/// Usage text for `synthir ucode`.
pub const USAGE: &str = "\
usage: synthir ucode <prog.uasm> [options]

Assembles a textual microcode program (with inline .field/.cond format
directives) into a microcode sequencer and synthesizes it.

options:
  -o <file>          write structural Verilog to <file> ('-' for stdout)
  --report           print the area/timing/power report
  --clock <ns>       clock period for the slack line (default 2.0)
  --flexible         runtime-writable microcode store (the paper's 'Full')
  --register-outputs add a pipeline flop per field output
  --annotate         attach generator-derived FSM + value-set annotations
                     (bound store only)
  --disasm           print the assembled program as a disassembly listing
";

/// Boolean flags `synthir ucode` accepts (each documented in [`USAGE`]).
pub const FLAGS: &[&str] = &[
    "report",
    "flexible",
    "register-outputs",
    "annotate",
    "disasm",
];

/// Valued options `synthir ucode` accepts (each documented in [`USAGE`]).
pub const OPTIONS: &[&str] = &["o", "clock"];

/// A parsed `.uasm` file: the format, condition names, and program body.
#[derive(Debug)]
pub struct UcodeSource {
    /// The declared microinstruction format.
    pub format: MicrocodeFormat,
    /// Condition input names, in declaration (index) order.
    pub conds: Vec<String>,
    /// The assembler body with directive lines blanked (so assembler
    /// errors keep the original line numbers).
    pub body: String,
}

/// Splits a `.uasm` file into format directives and assembler body.
///
/// # Errors
///
/// Returns [`CliError`] with a line-numbered message for malformed
/// directives or a missing format.
pub fn parse_source(text: &str) -> Result<UcodeSource, CliError> {
    let mut fields: Vec<Field> = Vec::new();
    let mut conds: Vec<String> = Vec::new();
    let mut body_lines: Vec<&str> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let stripped = raw.split(';').next().unwrap_or("").trim();
        if !stripped.starts_with('.') {
            body_lines.push(raw);
            continue;
        }
        body_lines.push(""); // keep assembler line numbers aligned
        let err = |msg: String| CliError(format!("line {}: {msg}", lineno + 1));
        let mut parts = stripped.split_whitespace();
        let dir = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match dir {
            ".field" => {
                let dup = |name: &str, fields: &[Field]| fields.iter().any(|f| f.name == name);
                match rest.as_slice() {
                    [name, "onehot", lanes] => {
                        let lanes: usize = lanes
                            .parse()
                            .ok()
                            .filter(|&l| l > 0)
                            .ok_or_else(|| err(format!("bad lane count `{lanes}`")))?;
                        if dup(name, &fields) {
                            return Err(err(format!("duplicate field `{name}`")));
                        }
                        fields.push(Field::one_hot(*name, lanes));
                    }
                    [name, width] => {
                        let width: usize = width
                            .parse()
                            .ok()
                            .filter(|&w| w > 0)
                            .ok_or_else(|| err(format!("bad width `{width}`")))?;
                        if dup(name, &fields) {
                            return Err(err(format!("duplicate field `{name}`")));
                        }
                        fields.push(Field::binary(*name, width));
                    }
                    _ => {
                        return Err(err(
                            "expected `.field <name> <width>` or `.field <name> onehot <lanes>`"
                                .into(),
                        ))
                    }
                }
            }
            ".cond" => match rest.as_slice() {
                [name] => {
                    if conds.iter().any(|c| c == name) {
                        return Err(err(format!("duplicate condition `{name}`")));
                    }
                    conds.push(name.to_string());
                }
                _ => return Err(err("expected `.cond <name>`".into())),
            },
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if fields.is_empty() {
        return Err(CliError(
            "no `.field` directives — a microcode format is required".into(),
        ));
    }
    let format = MicrocodeFormat::new(fields);
    // Catches over-wide formats (the packed control word is a u128) before
    // table lowering would overflow a shift.
    format.validate()?;
    Ok(UcodeSource {
        format,
        conds,
        body: body_lines.join("\n"),
    })
}

/// Assembles a `.uasm` text into a [`MicroProgram`] named `name`.
///
/// # Errors
///
/// Returns [`CliError`] for directive or assembler failures.
pub fn assemble_source(name: &str, text: &str) -> Result<(MicroProgram, Vec<String>), CliError> {
    let src = parse_source(text)?;
    let cond_refs: Vec<&str> = src.conds.iter().map(String::as_str).collect();
    let program = assemble(name, src.format, &cond_refs, &src.body)?;
    Ok((program, src.conds))
}

/// Runs the subcommand; returns the text for stdout.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, assembly failures, or
/// elaboration/synthesis failures.
pub fn run(args: &Args) -> CmdResult {
    let [path] = args.expect_positionals(1, "one <prog.uasm> operand")? else {
        unreachable!()
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let (program, conds) = assemble_source(&design_name(path), &text)?;

    let mut out = String::new();
    out.push_str(&format!(
        "{}: {} instructions, {}-bit control word fields, {} condition(s)\n",
        program.name(),
        program.instrs().len(),
        program.format().width(),
        program.num_conds(),
    ));
    if args.flag("disasm") {
        let cond_refs: Vec<&str> = conds.iter().map(String::as_str).collect();
        out.push_str(&disassemble(&program, &cond_refs));
    }

    let flexible = args.flag("flexible");
    let annotate = args.flag("annotate");
    if annotate && flexible {
        return Err(CliError(
            "--annotate requires a bound store (drop --flexible)".into(),
        ));
    }
    let sopts = SequencerOptions {
        flexible,
        register_outputs: args.flag("register-outputs"),
        annotate_fsm: annotate,
        annotate_fields: annotate && args.flag("register-outputs"),
    };
    let module = generate(&program, sopts)?;
    let elab = elaborate(&module)?;
    let lib = Library::vt90();
    let r = compile(&elab, &lib, &SynthOptions::default())?;
    let report_opts = ReportOptions {
        clock_ns: args.option_parsed("clock", ReportOptions::default().clock_ns)?,
        ..Default::default()
    };
    if args.flag("report") {
        out.push_str(&render(module.name(), &r, &lib, &report_opts));
    } else {
        out.push_str(&format!(
            "synthesized {}: {} gates ({} flops), area {:.1} µm²\n",
            module.name(),
            r.netlist.num_gates(),
            r.netlist.flop_count(),
            r.area.total()
        ));
    }

    if let Some(vpath) = args.option("o") {
        let v = verilog::to_verilog(&r.netlist);
        if vpath == "-" {
            out.push_str(&v);
        } else {
            std::fs::write(vpath, &v)
                .map_err(|e| CliError(format!("cannot write `{vpath}`: {e}")))?;
            out.push_str(&format!("wrote {vpath} ({} lines)\n", v.lines().count()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DMA: &str = "\
.field engine onehot 4
.field burst 3
.field irq 1
.cond start
.cond more

idle:  nop | jnz start, copy
       jmp idle
copy:  set engine=0b0001, burst=7
       set engine=0b0010, burst=7 | jnz more, copy
       set irq=1 | jmp idle
";

    fn write_temp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn directives_build_the_format() {
        let src = parse_source(DMA).unwrap();
        assert_eq!(src.format.fields().len(), 3);
        assert_eq!(src.format.fields()[0].width, 4);
        assert_eq!(src.conds, ["start", "more"]);
    }

    #[test]
    fn assembler_line_numbers_survive_directive_stripping() {
        let bad = ".field x 1\n.cond c\nnop\nbogus\n";
        let e = assemble_source("t", bad).unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
    }

    #[test]
    fn full_pipeline_synthesizes() {
        let path = write_temp("cli_ucode_dma.uasm", DMA);
        let args = Args::parse(
            &[path.as_str(), "--report", "--disasm"],
            &[
                "report",
                "flexible",
                "register-outputs",
                "annotate",
                "disasm",
            ],
            &["o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("5 instructions"), "{out}");
        assert!(out.contains("area"), "{out}");
        assert!(out.contains("jnz start"), "{out}");
    }

    #[test]
    fn flexible_store_is_larger_than_bound() {
        let path = write_temp("cli_ucode_flex.uasm", DMA);
        let base = Args::parse(&[path.as_str()], &["flexible"], &["o", "clock"]).unwrap();
        let flex = Args::parse(
            &[path.as_str(), "--flexible"],
            &["flexible"],
            &["o", "clock"],
        )
        .unwrap();
        let area = |out: &str| -> f64 {
            let tail = out.split("area ").nth(1).unwrap();
            tail.split(' ').next().unwrap().parse().unwrap()
        };
        let a_bound = area(&run(&base).unwrap());
        let a_flex = area(&run(&flex).unwrap());
        assert!(
            a_flex > 2.0 * a_bound,
            "flexible {a_flex} vs bound {a_bound}"
        );
    }

    #[test]
    fn annotate_conflicts_with_flexible() {
        let path = write_temp("cli_ucode_conflict.uasm", DMA);
        let args = Args::parse(
            &[path.as_str(), "--flexible", "--annotate"],
            &["flexible", "annotate"],
            &["o", "clock"],
        )
        .unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn missing_format_is_an_error() {
        let e = parse_source("nop\n").unwrap_err();
        assert!(e.to_string().contains(".field"), "{e}");
    }

    /// Regression: bad `.uasm` input must produce diagnostics, never a
    /// panic — unknown fields, duplicate directives, zero widths and
    /// over-wide formats all come back as errors.
    #[test]
    fn bad_uasm_input_yields_diagnostics_not_panics() {
        let e = assemble_source("t", ".field x 1\nset bogus=1\nhalt\n").unwrap_err();
        assert!(e.to_string().contains("unknown field"), "{e}");
        let e = parse_source(".field x 1\n.field x 2\nnop\n").unwrap_err();
        assert!(e.to_string().contains("duplicate field"), "{e}");
        let e = parse_source(".field x 0\nnop\n").unwrap_err();
        assert!(e.to_string().contains("bad width"), "{e}");
        let e = parse_source(".field x onehot 0\nnop\n").unwrap_err();
        assert!(e.to_string().contains("bad lane count"), "{e}");
        let e = parse_source(".cond c\n.cond c\n.field x 1\nnop\n").unwrap_err();
        assert!(e.to_string().contains("duplicate condition"), "{e}");
        let e = parse_source(".field a 100\n.field b 100\nnop\n").unwrap_err();
        assert!(e.to_string().contains("128"), "{e}");
    }
}
