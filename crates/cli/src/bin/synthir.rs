//! The `synthir` command-line tool: controller IRs in, Verilog and reports
//! out. See each subcommand module in `synthir_cli` for the pipelines.

use synthir_cli::{args::Args, equiv, fsm, pla, ucode, CliError};

const USAGE: &str = "\
synthir — controller IRs for chip generators (DATE 2011 reproduction)

usage: synthir <command> [args]

commands:
  fsm    <spec.kiss2>   lower + synthesize a KISS2 FSM, emit Verilog/report
  pla    <in.pla>       minimize an espresso-format PLA with the URP kernel
  ucode  <prog.uasm>    assemble microcode, synthesize its sequencer
  equiv  <spec.kiss2>   equivalence-check two lowerings (program-then-
                        compare against the programmable baseline), or two
                        .pla files combinationally; --engine picks the
                        prover (auto/bdd/random/sat)
  help   [command]      show usage

Run `synthir help <command>` for per-command options.
";

fn dispatch(cmd: &str, raw: &[String]) -> Result<String, CliError> {
    match cmd {
        "fsm" => fsm::run(&Args::parse(raw, fsm::FLAGS, fsm::OPTIONS)?),
        "pla" => pla::run(&Args::parse(raw, pla::FLAGS, pla::OPTIONS)?),
        "ucode" => ucode::run(&Args::parse(raw, ucode::FLAGS, ucode::OPTIONS)?),
        "equiv" => equiv::run(&Args::parse(raw, equiv::FLAGS, equiv::OPTIONS)?),
        "help" | "--help" | "-h" => Ok(match raw.first().map(String::as_str) {
            Some("fsm") => fsm::USAGE.to_string(),
            Some("pla") => pla::USAGE.to_string(),
            Some("ucode") => ucode::USAGE.to_string(),
            Some("equiv") => equiv::USAGE.to_string(),
            _ => USAGE.to_string(),
        }),
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    match dispatch(cmd, &argv[1..]) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("synthir {cmd}: {e}");
            std::process::exit(1);
        }
    }
}
