//! `synthir fsm` — KISS2 state machine to synthesized Verilog.
//!
//! The full paper pipeline as one command: read a `.kiss2` FSM spec, lower
//! it in one of the coding styles the paper compares, run the
//! partial-evaluating synthesis flow, and emit structural Verilog plus an
//! area/timing/power report.

use crate::args::Args;
use crate::report::{render, ReportOptions};
use crate::{design_name, CliError, CmdResult};
use synthir_core::format_conv::from_kiss2;
use synthir_core::FsmSpec;
use synthir_netlist::{verilog, Library};
use synthir_rtl::{elaborate, Module};
use synthir_synth::{flow::compile, Mapper, SynthOptions};

/// Usage text for `synthir fsm`.
pub const USAGE: &str = "\
usage: synthir fsm <spec.kiss2> [options]

Reads a KISS2 FSM specification, lowers it in a coding style, synthesizes
it with the partial-evaluating flow, and writes structural Verilog.

options:
  --style <s>     coding style: table (default), table-annotated, case,
                  programmable
  -o <file>       write structural Verilog to <file> ('-' for stdout)
  --report        print the area/timing/power report
  --json          print the synthesis result (cells, area, timing, pass
                  statistics) as JSON instead of prose
  --clock <ns>    clock period for the slack line (default 2.0)
  --mapper <m>    technology mapper: rules (default; greedy peephole
                  NAND/NOR/AOI rewrites) or cuts (k-feasible cuts on the
                  AIG, NPN-matched against the cell library, with
                  depth-oriented and area-recovery cover selection)
  --no-synth      elaborate only; skip the synthesis flow
  --sat-sweep     enable SAT sweeping inside the AIG cleanup pass
  --no-aig        use the original (pre-AIG) pass order
  --verify-passes SAT-check the netlist after every synthesis pass against
                  its predecessor (slow; debug aid)
";

/// Boolean flags `synthir fsm` accepts (each documented in [`USAGE`]).
pub const FLAGS: &[&str] = &[
    "report",
    "json",
    "no-synth",
    "verify-passes",
    "sat-sweep",
    "no-aig",
];

/// Valued options `synthir fsm` accepts (each documented in [`USAGE`]).
pub const OPTIONS: &[&str] = &["style", "o", "clock", "mapper"];

/// The FSM coding styles the CLI can lower to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// Bound lookup tables (next-state + output memories), no annotation.
    Table,
    /// Bound lookup tables with the `fsm_state_vector` annotation attached.
    TableAnnotated,
    /// Minimized sum-of-products ("direct" / case-statement) style.
    Case,
    /// Runtime-programmable tables behind a config write port.
    Programmable,
}

impl Style {
    /// Parses a `--style` value.
    pub fn parse(s: &str) -> Result<Style, CliError> {
        match s {
            "table" => Ok(Style::Table),
            "table-annotated" | "annotated" => Ok(Style::TableAnnotated),
            "case" | "direct" => Ok(Style::Case),
            "programmable" | "flexible" | "full" => Ok(Style::Programmable),
            other => Err(CliError(format!(
                "unknown style `{other}` (expected table, table-annotated, case, programmable)"
            ))),
        }
    }

    /// Lowers a spec in this style.
    pub fn lower(self, spec: &FsmSpec) -> Module {
        match self {
            Style::Table => spec.to_table_module(false),
            Style::TableAnnotated => spec.to_table_module(true),
            Style::Case => spec.to_case_module(),
            Style::Programmable => spec.to_programmable_module(),
        }
    }
}

/// Runs the subcommand; returns the text for stdout.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, unreadable/unparsable input, or
/// elaboration/synthesis failures.
pub fn run(args: &Args) -> CmdResult {
    let [path] = args.expect_positionals(1, "one <spec.kiss2> operand")? else {
        unreachable!()
    };
    let style = Style::parse(args.option("style").unwrap_or("table"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let spec = from_kiss2(design_name(path), &text)?;
    let module = style.lower(&spec);

    let json = args.flag("json");
    if json && args.flag("no-synth") {
        return Err(CliError(
            "--json reports the synthesis result; drop --no-synth".into(),
        ));
    }
    let mut out = String::new();
    if !json {
        out.push_str(&format!(
            "{}: {} states ({} reachable), {} inputs, {} outputs → {}\n",
            spec.name(),
            spec.state_count(),
            spec.reachable_states().len(),
            spec.num_inputs(),
            spec.num_outputs(),
            module.name(),
        ));
    }

    let elab = elaborate(&module)?;
    let lib = Library::vt90();
    let report_opts = ReportOptions {
        clock_ns: args.option_parsed("clock", ReportOptions::default().clock_ns)?,
        ..Default::default()
    };

    let netlist = if args.flag("no-synth") {
        out.push_str(&format!(
            "elaborated: {} gates ({} flops), synthesis skipped\n",
            elab.netlist.num_gates(),
            elab.netlist.flop_count()
        ));
        if args.flag("report") {
            out.push_str(&crate::report::render_netlist_stats(
                &elab.netlist,
                &lib,
                &report_opts,
            ));
        }
        elab.netlist
    } else {
        let mut sopts = SynthOptions::default();
        if args.flag("verify-passes") {
            sopts.verify_each_pass = true;
        }
        if args.flag("sat-sweep") {
            sopts.sat_sweep = true;
        }
        if args.flag("no-aig") {
            sopts.aig = false;
        }
        if let Some(m) = args.option("mapper") {
            sopts.mapper = Mapper::parse(m).map_err(|bad| {
                CliError(format!("unknown mapper `{bad}` (expected rules or cuts)"))
            })?;
        }
        let r = compile(&elab, &lib, &sopts)?;
        if json {
            out.push_str(&format!(
                "{{\n  \"design\": \"{}\",\n  \"states\": {},\n  \"reachable_states\": {},\n  \
                 \"mapper\": \"{}\",\n  \
                 \"gates\": {},\n  \"flops\": {},\n  \"area_um2\": {:.2},\n  \
                 \"area_sequential_um2\": {:.2},\n  \"critical_ns\": {:.4},\n  \"passes\": {}\n}}\n",
                crate::report::json_escape(module.name()),
                spec.state_count(),
                spec.reachable_states().len(),
                sopts.mapper.name(),
                r.netlist.num_gates(),
                r.netlist.flop_count(),
                r.area.total(),
                r.area.sequential,
                r.timing.critical_delay,
                crate::report::pass_stats_json(&r.stats),
            ));
        } else if args.flag("report") {
            out.push_str(&render(module.name(), &r, &lib, &report_opts));
        } else {
            out.push_str(&format!(
                "synthesized: {} gates ({} flops), area {:.1} µm², critical {:.3} ns\n",
                r.netlist.num_gates(),
                r.netlist.flop_count(),
                r.area.total(),
                r.timing.critical_delay
            ));
        }
        r.netlist
    };

    if let Some(vpath) = args.option("o") {
        let v = verilog::to_verilog(&netlist);
        if vpath == "-" {
            out.push_str(&v);
        } else {
            std::fs::write(vpath, &v)
                .map_err(|e| CliError(format!("cannot write `{vpath}`: {e}")))?;
            out.push_str(&format!("wrote {vpath} ({} lines)\n", v.lines().count()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = ".i 1\n.o 1\n.r off\n1 off on 1\n- off off 0\n1 on off 0\n- on on 1\n.e\n";

    fn write_temp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn fsm_pipeline_runs_and_reports() {
        let path = write_temp("cli_fsm_toggle.kiss2", TOGGLE);
        let args = Args::parse(
            &[path.as_str(), "--style", "table", "--report", "-o", "-"],
            &["report", "no-synth"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("2 states"), "{out}");
        assert!(out.contains("area"), "{out}");
        assert!(out.contains("module cli_fsm_toggle_table"), "{out}");
    }

    #[test]
    fn all_styles_lower() {
        let path = write_temp("cli_fsm_styles.kiss2", TOGGLE);
        for style in ["table", "table-annotated", "case", "programmable"] {
            let args = Args::parse(
                &[path.as_str(), "--style", style],
                &["report", "no-synth"],
                &["style", "o", "clock"],
            )
            .unwrap();
            let out = run(&args).unwrap();
            assert!(out.contains("synthesized"), "style {style}: {out}");
        }
    }

    #[test]
    fn no_synth_skips_the_flow() {
        let path = write_temp("cli_fsm_nosynth.kiss2", TOGGLE);
        let args = Args::parse(
            &[path.as_str(), "--no-synth"],
            &["report", "no-synth"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("synthesis skipped"), "{out}");
        // --report still works without the synthesis flow: it renders the
        // netlist-only statistics.
        let args = Args::parse(
            &[path.as_str(), "--no-synth", "--report"],
            &["report", "no-synth"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("area"), "{out}");
        assert!(out.contains("power"), "{out}");
    }

    #[test]
    fn verify_passes_flag_runs_the_checked_flow() {
        let path = write_temp("cli_fsm_verify.kiss2", TOGGLE);
        let args = Args::parse(
            &[path.as_str(), "--verify-passes"],
            &["report", "no-synth", "verify-passes"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("synthesized"), "{out}");
    }

    #[test]
    fn json_output_carries_pass_stats() {
        let path = write_temp("cli_fsm_json.kiss2", TOGGLE);
        let args = Args::parse(
            &[path.as_str(), "--json"],
            &["report", "json", "no-synth", "sat-sweep", "no-aig"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        for needle in [
            "\"design\"",
            "\"gates\"",
            "\"area_um2\"",
            "\"passes\"",
            "\"aig_opt\"",
            "\"rewrites\"",
        ] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
        // The sweep + seed-pipeline flags parse and run too.
        let args = Args::parse(
            &[path.as_str(), "--json", "--sat-sweep"],
            &["report", "json", "no-synth", "sat-sweep", "no-aig"],
            &["style", "o", "clock"],
        )
        .unwrap();
        assert!(run(&args).unwrap().contains("\"passes\""));
        let args = Args::parse(
            &[path.as_str(), "--json", "--no-aig"],
            &["report", "json", "no-synth", "sat-sweep", "no-aig"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("\"const_fold\""), "{out}");
    }

    #[test]
    fn missing_file_and_bad_style_error() {
        let args = Args::parse(&["/nonexistent.kiss2"], &[], &["style", "o"]).unwrap();
        assert!(run(&args).is_err());
        assert!(Style::parse("bogus").is_err());
    }
}
