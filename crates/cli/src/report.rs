//! Plain-text synthesis report rendering.
//!
//! One human-readable block per compiled design: cell statistics, the
//! area split of [`synthir_netlist::AreaReport`], the static timing of
//! [`synthir_synth::timing::TimingReport`], a first-order power estimate,
//! and the pass log of the synthesis flow — the textual equivalent of the
//! area/timing tables the paper's figures are built from.

use std::fmt::Write as _;
use synthir_netlist::{estimate_power, Library, Netlist};
use synthir_synth::flow::CompileResult;

/// Options for report rendering.
#[derive(Clone, Copy, Debug)]
pub struct ReportOptions {
    /// Target clock period in ns for the slack line.
    pub clock_ns: f64,
    /// Uniform switching activity for the power estimate.
    pub activity: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            clock_ns: 2.0,
            activity: 0.15,
        }
    }
}

/// Renders a full report for a compiled design.
pub fn render(title: &str, r: &CompileResult, lib: &Library, opts: &ReportOptions) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "=== {title} ===");
    s.push_str(&render_netlist_stats(&r.netlist, lib, opts));
    let _ = writeln!(
        s,
        "timing   : critical {:.3} ns | slack @ {:.1} ns clock: {:+.3} ns ({})",
        r.timing.critical_delay,
        opts.clock_ns,
        r.timing.slack(opts.clock_ns),
        if r.timing.meets(opts.clock_ns) {
            "met"
        } else {
            "VIOLATED"
        }
    );
    for (i, p) in r.stats.iter().enumerate() {
        let head = if i == 0 { "passes   :" } else { "          " };
        let _ = writeln!(
            s,
            "{head} {:<16} {:>4} rewrites  {:>5} → {:<5} gates  {:>8.3} ms",
            p.name,
            p.rewrites,
            p.gates_before,
            p.gates_after,
            p.elapsed.as_secs_f64() * 1e3
        );
    }
    s
}

/// Escapes a string for embedding in a JSON string literal (names derive
/// from user-supplied file paths, which may contain quotes or backslashes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders pass statistics as a JSON array (for `synthir fsm --json`).
pub fn pass_stats_json(stats: &[synthir_synth::PassStat]) -> String {
    let rows: Vec<String> = stats
        .iter()
        .map(|p| {
            format!(
                "    {{\"name\": \"{}\", \"rewrites\": {}, \"gates_before\": {}, \
                 \"gates_after\": {}, \"ms\": {:.3}}}",
                p.name,
                p.rewrites,
                p.gates_before,
                p.gates_after,
                p.elapsed.as_secs_f64() * 1e3
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Renders the netlist-only statistics (gates, flops, area, power) — the
/// subset of [`render`] that needs no synthesis run.
pub fn render_netlist_stats(nl: &Netlist, lib: &Library, opts: &ReportOptions) -> String {
    let mut s = String::new();
    let area = nl.area_report(lib);
    let power = estimate_power(nl, lib, opts.activity);
    let _ = writeln!(
        s,
        "cells    : {} gates ({} flops)",
        nl.num_gates(),
        nl.flop_count()
    );
    let _ = writeln!(s, "area     : {area}");
    let _ = writeln!(s, "power    : {power} (activity {:.2})", opts.activity);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthir_rtl::{elaborate, styles};
    use synthir_synth::{flow::compile, SynthOptions};

    #[test]
    fn report_contains_every_section() {
        let words: Vec<u128> = (0..8).map(|m| m as u128 & 1).collect();
        let m = styles::table_module("t", 3, 1, &words);
        let lib = Library::vt90();
        let r = compile(&elaborate(&m).unwrap(), &lib, &SynthOptions::default()).unwrap();
        let text = render("t", &r, &lib, &ReportOptions::default());
        for needle in [
            "=== t ===",
            "cells",
            "area",
            "power",
            "timing",
            "passes",
            "µm²",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn violated_timing_is_called_out() {
        let words: Vec<u128> = (0..256).map(|m| (m as u128 * 0x9E) & 0xFF).collect();
        let m = styles::table_module("big", 8, 8, &words);
        let lib = Library::vt90();
        let r = compile(&elaborate(&m).unwrap(), &lib, &SynthOptions::default()).unwrap();
        let text = render(
            "big",
            &r,
            &lib,
            &ReportOptions {
                clock_ns: 1e-6,
                ..Default::default()
            },
        );
        assert!(text.contains("VIOLATED"), "{text}");
    }
}
