//! # synthir-cli
//!
//! The command-line driver that turns the `synthir` workspace into a
//! files-in / files-out tool, in the lineage of the classic two-level and
//! FSM tool chains (espresso's `.pla`, SIS/MCNC's KISS2):
//!
//! * [`fsm`] — `synthir fsm spec.kiss2 --style table -o out.v --report`:
//!   KISS2 state machine → coding style → partial-evaluating synthesis →
//!   structural Verilog + area/timing/power report;
//! * [`pla`] — `synthir pla in.pla -o min.pla`: espresso-format two-level
//!   minimization with the URP kernel (all four `.type` semantics);
//! * [`ucode`] — `synthir ucode prog.uasm -o out.v`: textual microcode →
//!   assembler → microcode sequencer → synthesis;
//! * [`equiv`] — `synthir equiv spec.kiss2 --left table --right
//!   programmable`: the methodology's soundness check, program-then-compare
//!   co-simulation included, with optional VCD waveform dump.
//!
//! Each subcommand is a library function taking parsed [`args::Args`], so
//! the whole pipeline is testable without spawning the binary; the
//! `synthir` binary is a thin dispatcher over these modules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod equiv;
pub mod fsm;
pub mod pla;
pub mod report;
pub mod ucode;

/// A CLI-level failure: a message for stderr and a nonzero exit.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io error: {e}"))
    }
}

impl From<synthir_core::CoreError> for CliError {
    fn from(e: synthir_core::CoreError) -> Self {
        CliError(e.to_string())
    }
}

impl From<synthir_logic::LogicError> for CliError {
    fn from(e: synthir_logic::LogicError) -> Self {
        CliError(e.to_string())
    }
}

impl From<synthir_rtl::RtlError> for CliError {
    fn from(e: synthir_rtl::RtlError) -> Self {
        CliError(e.to_string())
    }
}

impl From<synthir_synth::SynthError> for CliError {
    fn from(e: synthir_synth::SynthError) -> Self {
        CliError(e.to_string())
    }
}

impl From<synthir_sim::SimError> for CliError {
    fn from(e: synthir_sim::SimError) -> Self {
        CliError(e.to_string())
    }
}

/// The result type of every subcommand: rendered stdout text on success.
pub type CmdResult = Result<String, CliError>;

/// Derives a design name from a file path (the stem, sanitized to an
/// identifier: non-alphanumerics become `_`, leading digits are prefixed).
pub fn design_name(path: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    let mut name: String = stem
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if name.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        name.insert(0, 'd');
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_names_are_identifiers() {
        assert_eq!(
            design_name("benchmarks/traffic-light.kiss2"),
            "traffic_light"
        );
        assert_eq!(design_name("3way.pla"), "d3way");
        assert_eq!(design_name("x"), "x");
    }
}
