//! A small dependency-free argument parser.
//!
//! The build environment is offline, so instead of `clap` the subcommands
//! share this parser: positional operands, `--flag` booleans, and
//! `--key value` / `-k value` options, with `--` ending option parsing.

use crate::CliError;

/// Parsed arguments: positionals in order, plus flags and valued options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positionals: Vec<String>,
    flags: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    /// Parses raw arguments given the sets of known boolean flags and
    /// valued options (spelled without leading dashes).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on unknown options or a valued option missing
    /// its value.
    pub fn parse<S: AsRef<str>>(
        raw: &[S],
        known_flags: &[&str],
        known_options: &[&str],
    ) -> Result<Args, CliError> {
        let mut a = Args::default();
        let mut no_more_options = false;
        let mut it = raw.iter().map(AsRef::as_ref);
        while let Some(arg) = it.next() {
            if no_more_options || !arg.starts_with('-') || arg == "-" {
                a.positionals.push(arg.to_string());
                continue;
            }
            if arg == "--" {
                no_more_options = true;
                continue;
            }
            let name = arg.trim_start_matches('-');
            // `--key=value` spelling.
            if let Some((k, v)) = name.split_once('=') {
                if known_options.contains(&k) {
                    a.options.push((k.to_string(), v.to_string()));
                    continue;
                }
                return Err(CliError(format!("unknown option `--{k}`")));
            }
            if known_flags.contains(&name) {
                a.flags.push(name.to_string());
            } else if known_options.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| CliError(format!("option `--{name}` needs a value")))?;
                a.options.push((name.to_string(), v.to_string()));
            } else {
                return Err(CliError(format!("unknown option `{arg}`")));
            }
        }
        Ok(a)
    }

    /// The positional operands, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Exactly `n` positionals, or an error naming what was expected.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when the count differs.
    pub fn expect_positionals(&self, n: usize, what: &str) -> Result<&[String], CliError> {
        if self.positionals.len() != n {
            return Err(CliError(format!(
                "expected {what}, got {} operand(s)",
                self.positionals.len()
            )));
        }
        Ok(&self.positionals)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The last value of a valued option, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A valued option parsed to a type, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when the value does not parse.
    pub fn option_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad value `{v}` for `--{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_arguments() {
        let a = Args::parse(
            &["in.kiss2", "--style", "table", "-o", "out.v", "--report"],
            &["report"],
            &["style", "o"],
        )
        .unwrap();
        assert_eq!(a.positionals(), ["in.kiss2"]);
        assert!(a.flag("report"));
        assert_eq!(a.option("style"), Some("table"));
        assert_eq!(a.option("o"), Some("out.v"));
        assert_eq!(a.option("missing"), None);
    }

    #[test]
    fn equals_spelling_and_double_dash() {
        let a = Args::parse(&["--style=case", "--", "--weird-file"], &[], &["style"]).unwrap();
        assert_eq!(a.option("style"), Some("case"));
        assert_eq!(a.positionals(), ["--weird-file"]);
    }

    #[test]
    fn unknown_and_missing_values_error() {
        assert!(Args::parse(&["--bogus"], &[], &[]).is_err());
        assert!(Args::parse(&["--style"], &[], &["style"]).is_err());
        let e = Args::parse(&["x", "y"], &[], &[])
            .unwrap()
            .expect_positionals(1, "one input file")
            .unwrap_err();
        assert!(e.to_string().contains("one input file"));
    }

    #[test]
    fn parsed_options_with_defaults() {
        let a = Args::parse(&["--cycles", "99"], &[], &["cycles"]).unwrap();
        assert_eq!(a.option_parsed("cycles", 7usize).unwrap(), 99);
        assert_eq!(a.option_parsed("other", 7usize).unwrap(), 7);
        let bad = Args::parse(&["--cycles", "zz"], &[], &["cycles"]).unwrap();
        assert!(bad.option_parsed("cycles", 0usize).is_err());
    }
}
